//! Worker demographics and the population marginals of the paper's crawl
//! (Figures 7–8: 3,311 taskers, ≈ 72 % male, ≈ 66 % white).

use fbox_core::model::{Schema, ValueId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gender of a worker (the paper's AMT labeling used these two
/// categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    /// Male.
    Male,
    /// Female.
    Female,
}

/// Ethnicity of a worker (the paper's three AMT labeling categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ethnicity {
    /// Asian.
    Asian,
    /// Black.
    Black,
    /// White.
    White,
}

impl Gender {
    /// All genders, in the [`Schema::gender_ethnicity`] value order.
    pub const ALL: [Gender; 2] = [Gender::Male, Gender::Female];

    /// The value id in the canonical schema.
    pub fn value_id(self) -> ValueId {
        match self {
            Gender::Male => ValueId(0),
            Gender::Female => ValueId(1),
        }
    }

    /// Display name matching the schema's value names.
    pub fn name(self) -> &'static str {
        match self {
            Gender::Male => "Male",
            Gender::Female => "Female",
        }
    }
}

impl Ethnicity {
    /// All ethnicities, in the [`Schema::gender_ethnicity`] value order.
    pub const ALL: [Ethnicity; 3] = [Ethnicity::Asian, Ethnicity::Black, Ethnicity::White];

    /// The value id in the canonical schema.
    pub fn value_id(self) -> ValueId {
        match self {
            Ethnicity::Asian => ValueId(0),
            Ethnicity::Black => ValueId(1),
            Ethnicity::White => ValueId(2),
        }
    }

    /// Display name matching the schema's value names.
    pub fn name(self) -> &'static str {
        match self {
            Ethnicity::Asian => "Asian",
            Ethnicity::Black => "Black",
            Ethnicity::White => "White",
        }
    }
}

/// A full demographic profile: the `[gender, ethnicity]` assignment the
/// F-Box consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Demographic {
    /// Gender.
    pub gender: Gender,
    /// Ethnicity.
    pub ethnicity: Ethnicity,
}

impl Demographic {
    /// The assignment vector in [`Schema::gender_ethnicity`] attribute
    /// order.
    pub fn assignment(self) -> Vec<ValueId> {
        vec![self.gender.value_id(), self.ethnicity.value_id()]
    }

    /// Human-readable name, e.g. `"Asian Female"` (paper narrative order:
    /// ethnicity first).
    pub fn name(self) -> String {
        format!("{} {}", self.ethnicity.name(), self.gender.name())
    }
}

/// Population marginals used when sampling workers.
///
/// Defaults reproduce the paper's Figures 7–8: 72 % male; 66 % white,
/// with the remainder split between Black (20 %) and Asian (14 %) — the
/// paper reports only the white share, so the split is our estimate from
/// its bar chart.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationMarginals {
    /// P(male).
    pub male: f64,
    /// P(asian).
    pub asian: f64,
    /// P(black).
    pub black: f64,
    /// P(white) — the remainder; stored for clarity and validated.
    pub white: f64,
}

impl Default for PopulationMarginals {
    fn default() -> Self {
        Self { male: 0.72, asian: 0.14, black: 0.20, white: 0.66 }
    }
}

impl PopulationMarginals {
    /// Validates that the probabilities are sane.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or the ethnicity
    /// shares do not sum to 1 (±1e-9).
    pub fn validate(&self) {
        for (name, p) in [
            ("male", self.male),
            ("asian", self.asian),
            ("black", self.black),
            ("white", self.white),
        ] {
            assert!((0.0..=1.0).contains(&p), "marginal {name} = {p} out of [0,1]");
        }
        let sum = self.asian + self.black + self.white;
        assert!((sum - 1.0).abs() < 1e-9, "ethnicity marginals must sum to 1, got {sum}");
    }

    /// Samples one demographic profile.
    pub fn sample(&self, rng: &mut impl Rng) -> Demographic {
        let gender = if rng.random_bool(self.male) { Gender::Male } else { Gender::Female };
        let r: f64 = rng.random_range(0.0..1.0);
        let ethnicity = if r < self.asian {
            Ethnicity::Asian
        } else if r < self.asian + self.black {
            Ethnicity::Black
        } else {
            Ethnicity::White
        };
        Demographic { gender, ethnicity }
    }
}

/// Sanity check: the canonical schema's value names match the enums, so
/// `value_id` stays correct if the schema ever changes.
pub fn assert_schema_alignment(schema: &Schema) {
    for g in Gender::ALL {
        let (aid, vid) = schema
            .resolve("gender", g.name())
            .expect("schema must declare gender values matching the enums");
        assert_eq!(aid.0, 0);
        assert_eq!(vid, g.value_id());
    }
    for e in Ethnicity::ALL {
        let (aid, vid) = schema
            .resolve("ethnicity", e.name())
            .expect("schema must declare ethnicity values matching the enums");
        assert_eq!(aid.0, 1);
        assert_eq!(vid, e.value_id());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schema_alignment_holds() {
        assert_schema_alignment(&Schema::gender_ethnicity());
    }

    #[test]
    fn assignment_roundtrips_through_group_labels() {
        let schema = Schema::gender_ethnicity();
        let d = Demographic { gender: Gender::Female, ethnicity: Ethnicity::Black };
        let label = fbox_core::model::GroupLabel::parse(&schema, "gender=Female & ethnicity=Black")
            .unwrap();
        assert!(label.matches(&d.assignment()));
        let other = Demographic { gender: Gender::Male, ethnicity: Ethnicity::Black };
        assert!(!label.matches(&other.assignment()));
    }

    #[test]
    fn default_marginals_validate() {
        PopulationMarginals::default().validate();
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_marginals_rejected() {
        PopulationMarginals { male: 0.5, asian: 0.5, black: 0.5, white: 0.5 }.validate();
    }

    #[test]
    fn sampling_matches_marginals() {
        let m = PopulationMarginals::default();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut males = 0;
        let mut whites = 0;
        for _ in 0..n {
            let d = m.sample(&mut rng);
            if d.gender == Gender::Male {
                males += 1;
            }
            if d.ethnicity == Ethnicity::White {
                whites += 1;
            }
        }
        let male_share = males as f64 / n as f64;
        let white_share = whites as f64 / n as f64;
        assert!((male_share - 0.72).abs() < 0.02, "male share {male_share}");
        assert!((white_share - 0.66).abs() < 0.02, "white share {white_share}");
    }

    #[test]
    fn demographic_names() {
        let d = Demographic { gender: Gender::Female, ethnicity: Ethnicity::Asian };
        assert_eq!(d.name(), "Asian Female");
    }
}
