//! # fbox-marketplace — a TaskRabbit-style online job marketplace simulator
//!
//! The substrate behind the paper's TaskRabbit case study (§5.1.1). The
//! real study crawled 5,361 live queries over 56 cities; this crate
//! reproduces that input *shape* with a seeded simulator:
//!
//! - a [`Population`](population::Population) of 3,311 workers matching
//!   the crawl's demographic marginals (Figures 7–8);
//! - the [56 cities](city::CITIES) and the [8-category job
//!   taxonomy](jobs::CATEGORIES) with 96 sub-queries, covering exactly
//!   5,361 offered (sub-query, city) pairs;
//! - a [`ScoringModel`](scoring::ScoringModel) ranking workers by merit
//!   signals, minus a configurable [`BiasProfile`](bias::BiasProfile) —
//!   the *only* place unfair treatment enters; every downstream number
//!   emerges from ranked pages through the F-Box;
//! - a [`Marketplace`](engine::Marketplace) engine producing crawler-eye
//!   result pages (ranks and demographics, no scores), and
//!   [`crawl`](crawl::crawl) to run the full grid.

pub mod bias;
pub mod city;
pub mod crawl;
pub mod demographics;
pub mod engine;
pub mod jobs;
pub mod population;
pub mod scoring;

pub use bias::{BiasOverride, BiasProfile, OverrideAction};
pub use crawl::{
    attach_platform_scores, crawl, crawl_resilient, crawl_with_sink, taskrabbit_universe,
    CellOutcome, CellRecord, CrawlJournal, CrawlRun, CrawlStats,
};
pub use demographics::{Demographic, Ethnicity, Gender, PopulationMarginals};
pub use engine::{Marketplace, PAGE_SIZE};
pub use population::{Population, Worker};
pub use scoring::ScoringModel;
