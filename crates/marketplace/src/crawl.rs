//! The crawl of Figure 6: run every offered (sub-query, city) pair, record
//! the ranked pages, and assemble the F-Box inputs.
//!
//! # Resilience
//!
//! A live crawl of 5,361 queries does not complete unscathed, so the crawl
//! is built over [`fbox_resilience`]: a seeded [`FaultPlan`] injects
//! transient errors, rate-limit bursts, truncated pages, and corrupted
//! rank sequences; a [`RetryPolicy`] retries transport failures with
//! capped exponential backoff over a *virtual* clock; a per-city
//! [`CircuitBreaker`] stops hammering a city that keeps failing; and every
//! cell's final disposition lands in a [`CrawlJournal`], from which an
//! interrupted crawl resumes without re-running completed cells.
//!
//! Determinism is preserved end to end. Faults are *plan-injected* — a
//! pure function of `(seed, cell, attempt)` — so each cell's whole
//! trajectory is computable before its query runs. The breaker, the only
//! order-sensitive piece, is driven in canonical grid order during a
//! sequential planning pass; only then do the admitted cells fan out
//! across `FBOX_THREADS` workers. The result: byte-identical universe,
//! observations, statistics, and cube at any thread count, any fault
//! seed, and any interrupt/resume point (`tests/chaos.rs`).
//!
//! [`FaultPlan`]: fbox_resilience::FaultPlan
//! [`RetryPolicy`]: fbox_resilience::RetryPolicy
//! [`CircuitBreaker`]: fbox_resilience::CircuitBreaker

use crate::engine::Marketplace;
use crate::{city, jobs};
use fbox_core::model::{Schema, Universe};
use fbox_core::observations::{MarketObservations, MarketRanking, RankingError};
use fbox_resilience::{hash, CircuitBreaker, Disposition, Journal, PayloadFault, Resilience};
use serde::{Deserialize, Serialize};

/// Summary statistics of a crawl — the data behind the paper's setup
/// figures (Figures 7–8), the 5,361-query count of §5.1.1, and the
/// degradation accounting of a faulted run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Number of (sub-query, city) result pages retrieved (clean or
    /// truncated).
    pub n_queries: usize,
    /// Number of workers in the population.
    pub n_workers: usize,
    /// Share of male workers (Figure 7).
    pub male_share: f64,
    /// Shares per ethnicity in `[Asian, Black, White]` order (Figure 8).
    pub ethnicity_shares: [f64; 3],
    /// Cells whose retry budget was exhausted by transport failures.
    pub n_failed: usize,
    /// Cells whose page failed rank validation and was quarantined.
    pub n_quarantined: usize,
    /// Retrieved pages that arrived truncated (counted in `n_queries`
    /// too — their valid prefix is used).
    pub n_truncated: usize,
    /// Cells skipped because the city's circuit breaker was open.
    pub n_skipped_breaker: usize,
    /// Total retries across all cells.
    pub n_retries: u64,
    /// Times any city's circuit breaker tripped open.
    pub n_breaker_trips: u64,
    /// Total virtual backoff time spent in retries, in milliseconds.
    pub backoff_virtual_ms: u64,
    /// Fraction of degradable cells that produced a page:
    /// `n_queries / (n_queries + n_failed + n_quarantined +
    /// n_skipped_breaker)`. Not-offered cells are structurally missing,
    /// not degraded, so they count in neither side; a fault-free crawl
    /// has coverage exactly 1.0.
    pub coverage: f64,
}

/// The final disposition of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// A full page was retrieved.
    Clean(MarketRanking),
    /// A page was retrieved but only its top half rendered; the valid
    /// prefix is kept as a degraded observation.
    Truncated(MarketRanking),
    /// The query is not offered in the city (structural, not a fault).
    NotOffered,
    /// Every attempt failed at the transport level; the cell is a missing
    /// observation.
    Exhausted,
    /// The page arrived with a mangled rank sequence and was quarantined.
    Quarantined(RankingError),
    /// The city's circuit breaker was open; the cell was never attempted.
    SkippedByBreaker,
}

/// One journal entry: how a cell resolved and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Retries consumed before resolution.
    pub retries: u32,
    /// Virtual backoff accumulated across those retries, in milliseconds.
    pub backoff_ms: u64,
    /// How the cell resolved.
    pub outcome: CellOutcome,
}

/// The crawl's write-ahead journal, keyed by flat grid index
/// (`query-major × 56 cities`). Feed the journal of an interrupted run
/// back into [`crawl_resilient`] to resume it; the finished journal folds
/// into byte-identical observations regardless of how many runs it took.
pub type CrawlJournal = Journal<CellRecord>;

/// Everything a (possibly degraded, possibly partial) crawl produced.
#[derive(Debug, Clone)]
pub struct CrawlRun {
    /// The TaskRabbit universe ([`taskrabbit_universe`]).
    pub universe: Universe,
    /// Observations for every retrieved page journaled so far.
    pub observations: MarketObservations,
    /// Statistics folded over the journal.
    pub stats: CrawlStats,
    /// Whether every grid cell has been resolved. `false` after an
    /// interrupted run — resume by calling [`crawl_resilient`] again with
    /// the same journal.
    pub complete: bool,
}

/// The universe of a TaskRabbit study: the 11-group lattice over
/// gender × ethnicity, all 96 sub-queries (tagged with their categories),
/// and all 56 cities (tagged with regions).
pub fn taskrabbit_universe() -> Universe {
    let mut u = Universe::with_all_groups(Schema::gender_ethnicity());
    for (_, _, name) in jobs::all_queries() {
        u.add_query(
            name,
            Some(
                jobs::category_of(
                    jobs::query_index(name).expect("all_queries() names resolve to an index"),
                )
                .name,
            ),
        );
    }
    for c in city::CITIES.iter() {
        u.add_location(c.name, Some(c.region));
    }
    u
}

/// Crawls the whole grid: every offered (sub-query, city) pair once,
/// under the resilience configuration from the environment
/// ([`Resilience::from_env`]; inert unless `FBOX_FAULTS` is set).
///
/// The (sub-query, city) pairs are fanned out across `FBOX_THREADS`
/// workers ([`fbox_par::par_map`]); results are merged back in grid order,
/// so the observations are identical to a serial crawl at any thread
/// count.
///
/// Returns the universe, the observations keyed by the universe's ids, and
/// summary statistics.
pub fn crawl(marketplace: &Marketplace) -> (Universe, MarketObservations, CrawlStats) {
    let mut journal = CrawlJournal::new();
    let run = crawl_resilient(marketplace, &Resilience::from_env(), &mut journal);
    (run.universe, run.observations, run.stats)
}

/// The **platform's** view of a finished crawl: the same observation
/// cells with the internal scores `f_q^l` attached to every ranked
/// worker.
///
/// A crawler never sees these ([`Marketplace::run_query`] hides them, as
/// live marketplaces do), but a platform re-ranking its *own* results
/// does — mitigation experiments use this view so the F-Box measures can
/// judge an intervened ranking against true relevance instead of
/// re-deriving relevance from the very positions the intervention chose.
///
/// Truncated pages keep their surviving prefix; the scores re-run is
/// fault-free by construction (scoring is a pure function of the seed),
/// so every observed worker gets her score back.
///
/// # Panics
///
/// Panics if a cell of `observations` names a query or city the
/// marketplace does not offer, or holds more workers than the platform's
/// own page — both impossible for observations crawled from the same
/// marketplace.
pub fn attach_platform_scores(
    marketplace: &Marketplace,
    universe: &Universe,
    observations: &MarketObservations,
) -> MarketObservations {
    let _span = fbox_telemetry::span!("marketplace.attach_scores");
    let _trace = fbox_trace::span("marketplace.attach_scores");
    let mut cells: Vec<(
        (fbox_core::model::QueryId, fbox_core::model::LocationId),
        &MarketRanking,
    )> = observations.cells().collect();
    cells.sort_unstable_by_key(|&((q, l), _)| (q.0, l.0));

    let rescored = fbox_par::par_map(&cells, |&((q, l), ranking)| {
        let query_name = &universe.query(q).name;
        let city_name = &universe.location(l).name;
        let flat_q = jobs::query_index(query_name).expect("crawled query exists in the catalog");
        let ci = city::CITIES
            .iter()
            .position(|c| c.name == city_name)
            .expect("crawled city exists in the catalog");
        let scored =
            marketplace.run_query_with_scores(flat_q, ci).expect("crawled cells are offered cells");
        assert!(
            ranking.len() <= scored.len(),
            "a crawled page cannot outgrow the platform's own page"
        );
        MarketRanking::new(
            ranking
                .workers()
                .iter()
                .zip(&scored)
                .map(|(w, &(_, score))| fbox_core::observations::RankedWorker {
                    assignment: w.assignment.clone(),
                    rank: w.rank,
                    score: Some(score),
                })
                .collect(),
        )
    });

    let mut out = MarketObservations::new();
    for (&((q, l), _), ranking) in cells.iter().zip(rescored) {
        let displaced = out.insert_new(q, l, ranking);
        assert!(displaced.is_none(), "source observations hold one ranking per cell");
    }
    out
}

/// One planned grid cell: its coordinates and its precomputed trajectory.
struct PlannedCell {
    flat_q: usize,
    ci: usize,
    admitted: bool,
    plan: fbox_resilience::CellPlan,
}

/// Crawls the grid under an explicit [`Resilience`] configuration,
/// recording every resolved cell in `journal`.
///
/// Cells already present in `journal` are **replayed**, not re-run — pass
/// the journal of an interrupted crawl to resume it. The finished product
/// is byte-identical however the work was split across runs, threads, or
/// interrupts, because every cell's outcome is a pure function of the
/// marketplace seed and the resilience plan.
pub fn crawl_resilient(
    marketplace: &Marketplace,
    resilience: &Resilience,
    journal: &mut CrawlJournal,
) -> CrawlRun {
    crawl_with_sink(marketplace, resilience, journal, &mut |_, _| {})
}

/// [`crawl_resilient`] with a durable sink: `sink(grid_index, record)` is
/// invoked for every *newly resolved* cell, immediately after its record
/// is journaled, in the sequential merge pass — so sink calls arrive in
/// grid order regardless of `FBOX_THREADS`, and a sink that persists
/// records (the `fbox-store` segment log) assigns every record the same
/// on-disk index at any thread count. Replayed journal entries are not
/// re-emitted: they are already durable.
pub fn crawl_with_sink(
    marketplace: &Marketplace,
    resilience: &Resilience,
    journal: &mut CrawlJournal,
    sink: &mut dyn FnMut(u64, &CellRecord),
) -> CrawlRun {
    let _span = fbox_telemetry::span!("marketplace.crawl");
    let _trace = fbox_trace::span("marketplace.crawl");
    let universe = taskrabbit_universe();

    // Canonical grid: sub-query-major over the 56 cities.
    let queries: Vec<&str> = jobs::all_queries().map(|(_, _, name)| name).collect();
    let n_cities = city::CITIES.len();

    // Planning pass, sequential and in grid order: compute each cell's
    // fault trajectory and drive the per-city breakers. No query runs
    // here — every decision is plan-determined, which is what makes the
    // breaker's order-sensitivity compatible with the parallel fan-out
    // below.
    let plan_trace = fbox_trace::span("crawl.plan");
    let mut breakers: Vec<CircuitBreaker> = city::CITIES
        .iter()
        .map(|c| CircuitBreaker::with_label(resilience.breaker, c.name))
        .collect();
    let mut planned = Vec::with_capacity(queries.len() * n_cities);
    for (flat_q, query_name) in queries.iter().enumerate() {
        for (ci, c) in city::CITIES.iter().enumerate() {
            let key = hash::cell_key("marketplace.crawl", query_name, c.name);
            let admitted = breakers[ci].admit();
            let plan = resilience.plan_cell(key);
            if admitted {
                breakers[ci].record(!plan.is_failure());
            }
            planned.push(PlannedCell { flat_q, ci, admitted, plan });
        }
    }
    drop(plan_trace);

    // Work list: unresolved cells in grid order, truncated at the
    // configured interrupt point (counting only cells that execute a
    // query — replays, skips, and exhausted budgets are free).
    let mut work: Vec<(usize, &PlannedCell)> = Vec::new();
    let mut executed = 0usize;
    let mut interrupted = false;
    for (gi, cell) in planned.iter().enumerate() {
        if journal.contains(gi as u64) {
            continue;
        }
        let executes = cell.admitted && matches!(cell.plan.disposition, Disposition::Run(_));
        if executes {
            if let Some(cap) = resilience.interrupt_after {
                if executed >= cap {
                    interrupted = true;
                    break;
                }
            }
            executed += 1;
        }
        work.push((gi, cell));
    }

    // Execution pass: fan the query-running cells out across FBOX_THREADS
    // workers. Results merge back by work-list index, so completion order
    // cannot matter.
    let pages: Vec<Option<MarketRanking>> = fbox_par::par_map(&work, |&(_, cell)| {
        let _cell_trace = fbox_trace::span_args("crawl.cell", |a| {
            a.str("query", queries[cell.flat_q]);
            a.str("city", city::CITIES[cell.ci].name);
        });
        // Narrate the cell's planned fault episode (retries, backoff,
        // exhaustion) under its own span. The plan is a pure function of
        // the key, so replaying it here changes nothing downstream.
        if fbox_trace::enabled() && cell.admitted {
            let key = hash::cell_key(
                "marketplace.crawl",
                queries[cell.flat_q],
                city::CITIES[cell.ci].name,
            );
            let _ = resilience.plan_cell_traced(key);
        }
        if cell.admitted && matches!(cell.plan.disposition, Disposition::Run(_)) {
            marketplace.run_query(cell.flat_q, cell.ci)
        } else {
            None
        }
    });

    // Merge pass, sequential in grid order: apply payload faults, validate,
    // and journal each cell's final disposition.
    let mut new_retries = 0u64;
    let mut new_backoff_ms = 0u64;
    for (&(gi, cell), page) in work.iter().zip(pages) {
        let outcome = if !cell.admitted {
            CellOutcome::SkippedByBreaker
        } else {
            match cell.plan.disposition {
                Disposition::Exhausted => CellOutcome::Exhausted,
                Disposition::Run(payload) => match page {
                    None => CellOutcome::NotOffered,
                    Some(ranking) => apply_payload_fault(ranking, payload),
                },
            }
        };
        if matches!(outcome, CellOutcome::Quarantined(_)) {
            fbox_trace::instant_args("crawl.quarantine", |a| {
                a.str("query", queries[cell.flat_q]);
                a.str("city", city::CITIES[cell.ci].name);
            });
        }
        let (retries, backoff_ms) =
            if cell.admitted { (cell.plan.retries, cell.plan.backoff_ms) } else { (0, 0) };
        new_retries += u64::from(retries);
        new_backoff_ms += backoff_ms;
        let record = CellRecord { retries, backoff_ms, outcome };
        let rejected = journal.append(gi as u64, record);
        assert!(rejected.is_none(), "work list never contains journaled cells (grid index {gi})");
        sink(gi as u64, journal.get(gi as u64).expect("record was just appended"));
    }

    // Fold pass: rebuild observations and statistics from the *whole*
    // journal (replayed and new cells alike), in grid order — the reason
    // an interrupted-and-resumed crawl is byte-identical to an
    // uninterrupted one.
    let mut observations = MarketObservations::new();
    let mut n_queries = 0usize;
    let mut n_not_offered = 0usize;
    let mut n_failed = 0usize;
    let mut n_quarantined = 0usize;
    let mut n_truncated = 0usize;
    let mut n_skipped_breaker = 0usize;
    let mut n_retries = 0u64;
    let mut backoff_virtual_ms = 0u64;
    for (gi, cell) in planned.iter().enumerate() {
        let Some(record) = journal.get(gi as u64) else { continue };
        n_retries += u64::from(record.retries);
        backoff_virtual_ms += record.backoff_ms;
        let q =
            universe.query_id(queries[cell.flat_q]).expect("universe registered all sub-queries");
        let l = universe
            .location_id(city::CITIES[cell.ci].name)
            .expect("universe registered all cities");
        match &record.outcome {
            CellOutcome::Clean(ranking) => {
                let displaced = observations.insert_new(q, l, ranking.clone());
                assert!(
                    displaced.is_none(),
                    "journal holds one record per grid cell ({q:?}, {l:?})"
                );
                n_queries += 1;
            }
            CellOutcome::Truncated(ranking) => {
                let displaced = observations.insert_new(q, l, ranking.clone());
                assert!(
                    displaced.is_none(),
                    "journal holds one record per grid cell ({q:?}, {l:?})"
                );
                n_queries += 1;
                n_truncated += 1;
            }
            CellOutcome::NotOffered => n_not_offered += 1,
            CellOutcome::Exhausted => n_failed += 1,
            CellOutcome::Quarantined(_) => n_quarantined += 1,
            CellOutcome::SkippedByBreaker => n_skipped_breaker += 1,
        }
    }
    let n_breaker_trips: u64 = breakers.iter().map(|b| u64::from(b.trips())).sum();
    let degradable = n_queries + n_failed + n_quarantined + n_skipped_breaker;
    let coverage = if degradable == 0 { 0.0 } else { n_queries as f64 / degradable as f64 };

    let t = fbox_telemetry::global();
    if t.enabled() {
        t.counter("crawl.queries_run").add(n_queries as u64);
        t.counter("crawl.queries_not_offered").add(n_not_offered as u64);
        t.counter("crawl.retries").add(new_retries);
        t.counter("crawl.cells_failed").add(n_failed as u64);
        t.counter("crawl.cells_quarantined").add(n_quarantined as u64);
        t.counter("crawl.cells_truncated").add(n_truncated as u64);
        t.counter("crawl.cells_skipped_breaker").add(n_skipped_breaker as u64);
        t.counter("crawl.breaker_trips").add(n_breaker_trips);
        // Population size is a property of the crawl, not an accumulating
        // event stream: a gauge, set once per crawl.
        t.gauge("crawl.workers_observed").set(marketplace.population().len() as i64);
        t.gauge("crawl.breaker_open_cities")
            .set(breakers.iter().filter(|b| b.is_open()).count() as i64);
        if new_backoff_ms > 0 {
            t.histogram("crawl.backoff_virtual_ms")
                .record(std::time::Duration::from_millis(new_backoff_ms));
        }
    }

    let (male_share, ethnicity_shares) = marketplace.population().breakdown();
    let stats = CrawlStats {
        n_queries,
        n_workers: marketplace.population().len(),
        male_share,
        ethnicity_shares,
        n_failed,
        n_quarantined,
        n_truncated,
        n_skipped_breaker,
        n_retries,
        n_breaker_trips,
        backoff_virtual_ms,
        coverage,
    };
    let complete = !interrupted && journal.len() == planned.len();
    CrawlRun { universe, observations, stats, complete }
}

/// Applies a planned payload fault to a fetched page.
///
/// - `Truncate` keeps the top half (rounded up, so a one-result page
///   survives); the prefix is still a contiguous `1..=k` ranking and is
///   used as a degraded observation.
/// - `Corrupt` mangles the rank sequence the way broken scrapes do
///   (a duplicated rank) and runs it through [`MarketRanking::try_new`] —
///   validation must reject it, and the cell is quarantined with the
///   typed [`RankingError`].
fn apply_payload_fault(ranking: MarketRanking, payload: Option<PayloadFault>) -> CellOutcome {
    match payload {
        None => CellOutcome::Clean(ranking),
        Some(PayloadFault::Truncate) => {
            let mut workers = ranking.into_workers();
            let keep = workers.len().div_ceil(2);
            workers.truncate(keep);
            match MarketRanking::try_new(workers) {
                Ok(r) => CellOutcome::Truncated(r),
                Err(e) => CellOutcome::Quarantined(e),
            }
        }
        Some(PayloadFault::Corrupt) => {
            let mut workers = ranking.into_workers();
            let n = workers.len();
            if n == 0 {
                // Nothing to mangle on an empty page; it reads back clean.
                return CellOutcome::Clean(MarketRanking::default());
            }
            let last = n - 1;
            workers[last].rank = if last > 0 { workers[last - 1].rank } else { 2 };
            match MarketRanking::try_new(workers) {
                Ok(_) => unreachable!("a mangled rank sequence cannot validate"),
                Err(e) => CellOutcome::Quarantined(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::BiasProfile;
    use crate::population::Population;
    use crate::scoring::ScoringModel;
    use fbox_resilience::{FaultPlan, FaultProfile};

    fn market() -> Marketplace {
        Marketplace::new(Population::paper(5), ScoringModel::default(), BiasProfile::neutral(), 5)
    }

    #[test]
    fn universe_dimensions() {
        let u = taskrabbit_universe();
        assert_eq!(u.n_groups(), 11);
        assert_eq!(u.n_queries(), 96);
        assert_eq!(u.n_locations(), 56);
        // Category tags flow through.
        let q = u.query_id("Lawn Mowing").unwrap();
        assert_eq!(u.query(q).category.as_deref(), Some("Yard Work"));
        assert_eq!(u.queries_in_category("General Cleaning").len(), 12);
        // Region tags flow through.
        assert!(!u.locations_in_region("UK").is_empty());
    }

    #[test]
    fn crawl_covers_the_paper_grid() {
        let (_, obs, stats) = crawl(&market());
        assert_eq!(stats.n_queries, 5361, "paper §5.1.1 query count");
        assert_eq!(obs.n_cells(), 5361);
        assert_eq!(stats.n_workers, 3311);
        assert!((stats.male_share - 0.72).abs() < 0.03);
        assert!((stats.ethnicity_shares[2] - 0.66).abs() < 0.03);
        // Fault-free run: nothing degraded, full coverage.
        assert_eq!(stats.n_failed, 0);
        assert_eq!(stats.n_quarantined, 0);
        assert_eq!(stats.n_truncated, 0);
        assert_eq!(stats.n_skipped_breaker, 0);
        assert_eq!(stats.n_retries, 0);
        assert_eq!(stats.backoff_virtual_ms, 0);
        assert_eq!(stats.coverage, 1.0);
    }

    #[test]
    fn faulted_crawl_degrades_gracefully() {
        let m = market();
        let r = Resilience::with_plan(FaultPlan::new(42, FaultProfile::heavy()));
        let mut journal = CrawlJournal::new();
        let run = crawl_resilient(&m, &r, &mut journal);
        assert!(run.complete);
        let s = &run.stats;
        // Heavy faults lose cells in every failure mode…
        assert!(s.n_failed > 0, "some retry budgets must exhaust");
        assert!(s.n_quarantined > 0, "some pages must be quarantined");
        assert!(s.n_truncated > 0, "some pages must truncate");
        assert!(s.n_retries > 0);
        assert!(s.backoff_virtual_ms > 0);
        // …but the crawl still recovers most of the grid.
        assert!(s.coverage > 0.5 && s.coverage < 1.0, "coverage {}", s.coverage);
        assert_eq!(run.observations.n_cells(), s.n_queries);
        assert!(s.n_queries < 5361);
    }

    #[test]
    fn corrupted_pages_are_quarantined_not_panicking() {
        // All-corrupt plan: every offered cell's page mangles its rank
        // sequence; every one must land in quarantine via try_new.
        let profile = FaultProfile {
            transient_pm: 0,
            rate_limited_pm: 0,
            truncated_pm: 0,
            corrupted_pm: 1000,
        };
        let m = market();
        let r = Resilience::with_plan(FaultPlan::new(7, profile));
        let mut journal = CrawlJournal::new();
        let run = crawl_resilient(&m, &r, &mut journal);
        assert_eq!(run.stats.n_queries, 0, "no page may survive validation");
        assert_eq!(run.stats.coverage, 0.0);
        // Corruption counts as failure, so city breakers trip and skip
        // most of the grid; every *attempted* offered page quarantines.
        assert!(run.stats.n_quarantined > 0);
        assert!(run.stats.n_skipped_breaker > 0);
        let quarantined_errors = journal
            .iter()
            .filter(|(_, rec)| matches!(rec.outcome, CellOutcome::Quarantined(_)))
            .count();
        assert_eq!(quarantined_errors, run.stats.n_quarantined);
    }

    #[test]
    fn breaker_trips_under_sustained_failure() {
        // Transport failure on every attempt: every admitted cell
        // exhausts, so each city's breaker trips after `threshold`
        // consecutive cells and then alternates cooldown skips with
        // failed half-open probes.
        let profile = FaultProfile {
            transient_pm: 1000,
            rate_limited_pm: 0,
            truncated_pm: 0,
            corrupted_pm: 0,
        };
        let m = market();
        let r = Resilience::with_plan(FaultPlan::new(3, profile));
        let mut journal = CrawlJournal::new();
        let run = crawl_resilient(&m, &r, &mut journal);
        assert_eq!(run.stats.n_queries, 0);
        assert!(run.stats.n_breaker_trips >= 56, "every city should trip at least once");
        assert!(run.stats.n_skipped_breaker > 0, "open breakers must skip cells");
        // Skipped cells never spent retries.
        assert!(journal
            .iter()
            .all(|(_, rec)| !matches!(rec.outcome, CellOutcome::SkippedByBreaker)
                || rec.retries == 0));
    }

    #[test]
    fn resumed_fold_never_double_inserts() {
        // Regression for the resumed-crawl double-write case: the fold
        // pass rebuilds observations from the *whole* journal on every
        // run, so a resumed (and even a fully-replayed) journal feeds
        // each cell through `insert_new` again. That call now returns
        // the displaced page and the fold hard-asserts it is `None` —
        // in the old code a double-ingested cell would panic only in
        // debug builds and silently keep the last write in release.
        let m = market();
        let plan = FaultPlan::new(11, FaultProfile::mild());
        let mut journal = CrawlJournal::new();
        let first = crawl_resilient(
            &m,
            &Resilience { interrupt_after: Some(1000), ..Resilience::with_plan(plan) },
            &mut journal,
        );
        assert!(!first.complete);
        let resumed = crawl_resilient(&m, &Resilience::with_plan(plan), &mut journal);
        assert!(resumed.complete);
        // Replay the finished journal once more: every cell is folded a
        // second time from the same records, and each must still insert
        // exactly once into the fresh observation set.
        let replayed = crawl_resilient(&m, &Resilience::with_plan(plan), &mut journal);
        assert!(replayed.complete);
        assert_eq!(replayed.observations.n_cells(), resumed.observations.n_cells());
    }

    #[test]
    fn interrupted_crawl_resumes_byte_identically() {
        let m = market();
        let plan = FaultPlan::new(11, FaultProfile::mild());

        // Uninterrupted reference run.
        let mut ref_journal = CrawlJournal::new();
        let reference = crawl_resilient(&m, &Resilience::with_plan(plan), &mut ref_journal);
        assert!(reference.complete);

        // Interrupt after 1000 executed cells, then resume.
        let mut journal = CrawlJournal::new();
        let first = crawl_resilient(
            &m,
            &Resilience { interrupt_after: Some(1000), ..Resilience::with_plan(plan) },
            &mut journal,
        );
        assert!(!first.complete);
        assert!(first.observations.n_cells() < reference.observations.n_cells());
        let resumed = crawl_resilient(&m, &Resilience::with_plan(plan), &mut journal);
        assert!(resumed.complete);

        assert_eq!(resumed.stats, reference.stats);
        assert_eq!(resumed.observations.n_cells(), reference.observations.n_cells());
        for ((q, l), ranking) in reference.observations.cells() {
            assert_eq!(resumed.observations.get(q, l), Some(ranking), "cell ({q:?}, {l:?})");
        }
    }
}
