//! The crawl of Figure 6: run every offered (sub-query, city) pair, record
//! the ranked pages, and assemble the F-Box inputs.

use crate::engine::Marketplace;
use crate::{city, jobs};
use fbox_core::model::{Schema, Universe};
use fbox_core::observations::MarketObservations;
use serde::{Deserialize, Serialize};

/// Summary statistics of a crawl — the data behind the paper's setup
/// figures (Figures 7–8) and the 5,361-query count of §5.1.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Number of (sub-query, city) result pages retrieved.
    pub n_queries: usize,
    /// Number of workers in the population.
    pub n_workers: usize,
    /// Share of male workers (Figure 7).
    pub male_share: f64,
    /// Shares per ethnicity in `[Asian, Black, White]` order (Figure 8).
    pub ethnicity_shares: [f64; 3],
}

/// The universe of a TaskRabbit study: the 11-group lattice over
/// gender × ethnicity, all 96 sub-queries (tagged with their categories),
/// and all 56 cities (tagged with regions).
pub fn taskrabbit_universe() -> Universe {
    let mut u = Universe::with_all_groups(Schema::gender_ethnicity());
    for (_, _, name) in jobs::all_queries() {
        u.add_query(
            name,
            Some(
                jobs::category_of(
                    jobs::query_index(name).expect("all_queries() names resolve to an index"),
                )
                .name,
            ),
        );
    }
    for c in city::CITIES.iter() {
        u.add_location(c.name, Some(c.region));
    }
    u
}

/// Crawls the whole grid: every offered (sub-query, city) pair once.
///
/// The (sub-query, city) pairs are fanned out across `FBOX_THREADS`
/// workers ([`fbox_par::par_map`]); results are merged back in grid order,
/// so the observations are identical to a serial crawl at any thread
/// count.
///
/// Returns the universe, the observations keyed by the universe's ids, and
/// summary statistics.
pub fn crawl(marketplace: &Marketplace) -> (Universe, MarketObservations, CrawlStats) {
    let _span = fbox_telemetry::span!("marketplace.crawl");
    let universe = taskrabbit_universe();

    let mut grid = Vec::new();
    for (flat_q, (_, _, name)) in jobs::all_queries().enumerate() {
        let q = universe.query_id(name).expect("universe registered all sub-queries");
        for (ci, c) in city::CITIES.iter().enumerate() {
            let l = universe.location_id(c.name).expect("universe registered all cities");
            grid.push((flat_q, q, ci, l));
        }
    }
    let rankings =
        fbox_par::par_map(&grid, |&(flat_q, _, ci, _)| marketplace.run_query(flat_q, ci));

    let mut observations = MarketObservations::new();
    let mut n_queries = 0usize;
    let mut n_skipped = 0usize;
    for (&(_, q, _, l), ranking) in grid.iter().zip(rankings) {
        match ranking {
            Some(ranking) => {
                observations.insert(q, l, ranking);
                n_queries += 1;
            }
            None => n_skipped += 1,
        }
    }
    let t = fbox_telemetry::global();
    if t.enabled() {
        t.counter("crawl.queries_run").add(n_queries as u64);
        t.counter("crawl.queries_not_offered").add(n_skipped as u64);
        t.counter("crawl.workers_observed").add(marketplace.population().len() as u64);
    }
    let (male_share, ethnicity_shares) = marketplace.population().breakdown();
    let stats = CrawlStats {
        n_queries,
        n_workers: marketplace.population().len(),
        male_share,
        ethnicity_shares,
    };
    (universe, observations, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::BiasProfile;
    use crate::population::Population;
    use crate::scoring::ScoringModel;

    #[test]
    fn universe_dimensions() {
        let u = taskrabbit_universe();
        assert_eq!(u.n_groups(), 11);
        assert_eq!(u.n_queries(), 96);
        assert_eq!(u.n_locations(), 56);
        // Category tags flow through.
        let q = u.query_id("Lawn Mowing").unwrap();
        assert_eq!(u.query(q).category.as_deref(), Some("Yard Work"));
        assert_eq!(u.queries_in_category("General Cleaning").len(), 12);
        // Region tags flow through.
        assert!(!u.locations_in_region("UK").is_empty());
    }

    #[test]
    fn crawl_covers_the_paper_grid() {
        let m = Marketplace::new(
            Population::paper(5),
            ScoringModel::default(),
            BiasProfile::neutral(),
            5,
        );
        let (_, obs, stats) = crawl(&m);
        assert_eq!(stats.n_queries, 5361, "paper §5.1.1 query count");
        assert_eq!(obs.n_cells(), 5361);
        assert_eq!(stats.n_workers, 3311);
        assert!((stats.male_share - 0.72).abs() < 0.03);
        assert!((stats.ethnicity_shares[2] - 0.66).abs() < 0.03);
    }
}
