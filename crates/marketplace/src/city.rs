//! The 56 metro areas TaskRabbit served at crawl time (paper §5.1.1:
//! "TaskRabbit is supported in 56 different cities mostly in the US").
//!
//! The list below contains every city the paper names in its result tables
//! (Tables 10–12, 15 and the §5.2.1 narrative) padded to 56 with other
//! real TaskRabbit metros. Each city carries a region tag used for
//! region-restricted questions ("the West Coast", §4.1).

use serde::{Deserialize, Serialize};

/// A TaskRabbit metro area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct City {
    /// Display name, e.g. `"San Francisco, CA"`.
    pub name: &'static str,
    /// Region tag: `"West Coast"`, `"East Coast"`, `"Midwest"`,
    /// `"South"`, `"Mountain"`, or `"UK"`.
    pub region: &'static str,
}

/// All 56 cities. Order is stable; repro code relies on it only through
/// name lookups.
pub const CITIES: [City; 56] = [
    // Cities named in the paper's tables and narrative.
    City { name: "Birmingham, UK", region: "UK" },
    City { name: "Oklahoma City, OK", region: "South" },
    City { name: "Bristol, UK", region: "UK" },
    City { name: "Manchester, UK", region: "UK" },
    City { name: "New Haven, CT", region: "East Coast" },
    City { name: "Milwaukee, WI", region: "Midwest" },
    City { name: "Memphis, TN", region: "South" },
    City { name: "Indianapolis, IN", region: "Midwest" },
    City { name: "Nashville, TN", region: "South" },
    City { name: "Detroit, MI", region: "Midwest" },
    City { name: "Chicago, IL", region: "Midwest" },
    City { name: "San Francisco, CA", region: "West Coast" },
    City { name: "San Francisco Bay Area, CA", region: "West Coast" },
    City { name: "Washington, DC", region: "East Coast" },
    City { name: "Los Angeles, CA", region: "West Coast" },
    City { name: "Boston, MA", region: "East Coast" },
    City { name: "Atlanta, GA", region: "South" },
    City { name: "Houston, TX", region: "South" },
    City { name: "Orlando, FL", region: "South" },
    City { name: "Philadelphia, PA", region: "East Coast" },
    City { name: "San Diego, CA", region: "West Coast" },
    City { name: "Charlotte, NC", region: "South" },
    City { name: "Norfolk, VA", region: "East Coast" },
    City { name: "St. Louis, MO", region: "Midwest" },
    City { name: "Salt Lake City, UT", region: "Mountain" },
    City { name: "New York City, NY", region: "East Coast" },
    City { name: "London, UK", region: "UK" },
    // Remaining real TaskRabbit metros to reach 56.
    City { name: "Austin, TX", region: "South" },
    City { name: "Baltimore, MD", region: "East Coast" },
    City { name: "Dallas, TX", region: "South" },
    City { name: "Denver, CO", region: "Mountain" },
    City { name: "Miami, FL", region: "South" },
    City { name: "Minneapolis, MN", region: "Midwest" },
    City { name: "Phoenix, AZ", region: "Mountain" },
    City { name: "Portland, OR", region: "West Coast" },
    City { name: "Seattle, WA", region: "West Coast" },
    City { name: "San Antonio, TX", region: "South" },
    City { name: "San Jose, CA", region: "West Coast" },
    City { name: "Tampa, FL", region: "South" },
    City { name: "Tucson, AZ", region: "Mountain" },
    City { name: "Sacramento, CA", region: "West Coast" },
    City { name: "Raleigh, NC", region: "South" },
    City { name: "Pittsburgh, PA", region: "East Coast" },
    City { name: "Cleveland, OH", region: "Midwest" },
    City { name: "Columbus, OH", region: "Midwest" },
    City { name: "Cincinnati, OH", region: "Midwest" },
    City { name: "Kansas City, MO", region: "Midwest" },
    City { name: "Las Vegas, NV", region: "Mountain" },
    City { name: "Louisville, KY", region: "South" },
    City { name: "Jacksonville, FL", region: "South" },
    City { name: "Richmond, VA", region: "East Coast" },
    City { name: "Providence, RI", region: "East Coast" },
    City { name: "Hartford, CT", region: "East Coast" },
    City { name: "Buffalo, NY", region: "East Coast" },
    City { name: "New Orleans, LA", region: "South" },
    City { name: "Baton Rouge, LA", region: "South" },
];

/// Looks up a city by name.
pub fn city(name: &str) -> Option<&'static City> {
    CITIES.iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_56_cities() {
        assert_eq!(CITIES.len(), 56);
    }

    #[test]
    fn names_are_unique() {
        for (i, c) in CITIES.iter().enumerate() {
            assert!(!CITIES[..i].iter().any(|o| o.name == c.name), "duplicate city {:?}", c.name);
        }
    }

    #[test]
    fn every_paper_city_is_present() {
        for name in [
            "Birmingham, UK",
            "Oklahoma City, OK",
            "Bristol, UK",
            "Manchester, UK",
            "New Haven, CT",
            "Milwaukee, WI",
            "Memphis, TN",
            "Indianapolis, IN",
            "Nashville, TN",
            "Detroit, MI",
            "Chicago, IL",
            "San Francisco, CA",
            "San Francisco Bay Area, CA",
            "Washington, DC",
            "Los Angeles, CA",
            "Boston, MA",
            "Atlanta, GA",
            "Houston, TX",
            "Orlando, FL",
            "Philadelphia, PA",
            "San Diego, CA",
            "Charlotte, NC",
            "Norfolk, VA",
            "St. Louis, MO",
            "Salt Lake City, UT",
            "New York City, NY",
        ] {
            assert!(city(name).is_some(), "missing paper city {name:?}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(city("Chicago, IL").unwrap().region, "Midwest");
        assert!(city("Atlantis").is_none());
    }
}
