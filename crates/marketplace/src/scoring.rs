//! The marketplace's internal scoring function `f_q^l : W → [0, 1]`
//! (paper §3.3).
//!
//! Scores combine the merit signals the paper's related work identifies as
//! bias carriers (ratings and completed-job counts, Hannak et al. 2017)
//! with tenure and badges, minus the injected bias penalty, plus
//! deterministic per-(worker, query, city) noise so that rankings vary
//! across queries the way live crawls do.

use crate::bias::BiasProfile;
use crate::population::Worker;
use serde::{Deserialize, Serialize};

/// Weights of the merit components. All components are normalized to
/// `[0, 1]` before weighting; the weighted merit is then mapped into
/// `[offset, offset + span]`.
///
/// The default compresses merit into `[0.35, 0.65]`: marketplaces place
/// most established workers in a fairly narrow quality band, and — for
/// measurement — a compressed merit spread keeps systematic bias (the
/// signal the F-Box quantifies) from being drowned out by which
/// individual high-merit workers a small demographic group happens to
/// contain in a given city.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoringModel {
    /// Weight of the normalized review rating.
    pub w_rating: f64,
    /// Weight of the normalized completed-job count.
    pub w_jobs: f64,
    /// Weight of the normalized tenure.
    pub w_tenure: f64,
    /// Weight of the elite badge.
    pub w_badge: f64,
    /// Lower end of the clean-score band.
    pub offset: f64,
    /// Width of the clean-score band (weights are normalized into it).
    pub span: f64,
    /// Standard deviation of the per-(worker, query, city) noise.
    pub noise_sd: f64,
}

impl Default for ScoringModel {
    fn default() -> Self {
        Self {
            w_rating: 0.4,
            w_jobs: 0.3,
            w_tenure: 0.2,
            w_badge: 0.1,
            offset: 0.35,
            span: 0.30,
            noise_sd: 0.03,
        }
    }
}

impl ScoringModel {
    /// The bias-free merit score of a worker, in
    /// `[offset, offset + span]`.
    pub fn clean_score(&self, w: &Worker) -> f64 {
        let rating = (w.rating - 3.0) / 2.0;
        let jobs = (w.jobs_completed as f64 / 500.0).min(1.0);
        let tenure = (w.tenure_days as f64 / 2000.0).min(1.0);
        let badge = if w.badge { 1.0 } else { 0.0 };
        // Clamped away from zero: weights are positive for every shipped
        // config, so the clamp never moves a real score by a single bit,
        // but an all-zero weight row degrades to merit 0 instead of NaN.
        let weight_sum = (self.w_rating + self.w_jobs + self.w_tenure + self.w_badge).max(1e-12);
        let merit = (self.w_rating * rating
            + self.w_jobs * jobs
            + self.w_tenure * tenure
            + self.w_badge * badge)
            / weight_sum;
        self.offset + self.span * merit
    }

    /// The platform score: clean score minus the bias penalty plus noise,
    /// clamped to `[0, 1]`.
    pub fn score(
        &self,
        worker: &Worker,
        bias: &BiasProfile,
        query: &str,
        category: &str,
        location: &str,
        noise_seed: u64,
    ) -> f64 {
        let clean = self.clean_score(worker);
        let penalty = bias.penalty(worker.demographic, query, category, location);
        let noise = gaussian_noise(mix(noise_seed, worker.id)) * self.noise_sd;
        (clean - penalty + noise).clamp(0.0, 1.0)
    }
}

/// SplitMix64 — a tiny, high-quality mixer for deriving per-entity noise
/// streams from composite keys without carrying RNG state around.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a string into the noise-key space.
pub fn mix_str(seed: u64, s: &str) -> u64 {
    s.bytes().fold(seed, |acc, b| mix(acc, b as u64 + 1))
}

/// Standard normal sample derived deterministically from a key
/// (Box–Muller on two SplitMix64 streams).
fn gaussian_noise(key: u64) -> f64 {
    let u1 = (mix(key, 0x1234_5678) >> 11) as f64 / (1u64 << 53) as f64;
    let u2 = (mix(key, 0x8765_4321) >> 11) as f64 / (1u64 << 53) as f64;
    let u1 = u1.max(1e-12); // avoid ln(0)
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demographics::{Demographic, Ethnicity, Gender};

    fn worker(rating: f64, jobs: u32, tenure: u32, badge: bool) -> Worker {
        Worker {
            id: 1,
            demographic: Demographic { gender: Gender::Male, ethnicity: Ethnicity::White },
            city: 0,
            rating,
            jobs_completed: jobs,
            tenure_days: tenure,
            hourly_rate: 40.0,
            badge,
        }
    }

    #[test]
    fn clean_score_bounds() {
        let m = ScoringModel::default();
        assert!((m.clean_score(&worker(3.0, 0, 0, false)) - m.offset).abs() < 1e-12);
        let top = m.clean_score(&worker(5.0, 500, 2000, true));
        assert!((top - (m.offset + m.span)).abs() < 1e-12);
    }

    #[test]
    fn clean_score_monotone_in_merit() {
        let m = ScoringModel::default();
        let lo = m.clean_score(&worker(3.5, 50, 100, false));
        let hi = m.clean_score(&worker(4.8, 400, 1500, true));
        assert!(hi > lo);
    }

    #[test]
    fn bias_penalty_lowers_score() {
        let m = ScoringModel { noise_sd: 0.0, ..Default::default() };
        let w = worker(4.5, 200, 1000, false);
        let neutral = BiasProfile::neutral();
        let biased = BiasProfile::neutral().with_penalty(Gender::Male, Ethnicity::White, 0.2);
        let s0 = m.score(&w, &neutral, "q", "c", "l", 7);
        let s1 = m.score(&w, &biased, "q", "c", "l", 7);
        assert!((s0 - s1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let m = ScoringModel { noise_sd: 0.5, ..Default::default() };
        let w = worker(3.1, 5, 20, false);
        let biased = BiasProfile::neutral().with_penalty(Gender::Male, Ethnicity::White, 0.9);
        for seed in 0..200 {
            let s = m.score(&w, &biased, "q", "c", "l", seed);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn noise_is_deterministic_and_varies_by_key() {
        let m = ScoringModel::default();
        let w = worker(4.0, 100, 500, false);
        let b = BiasProfile::neutral();
        let s1 = m.score(&w, &b, "q", "c", "l", 42);
        let s2 = m.score(&w, &b, "q", "c", "l", 42);
        let s3 = m.score(&w, &b, "q", "c", "l", 43);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn gaussian_noise_is_roughly_standard() {
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|i| gaussian_noise(mix(99, i))).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn mix_str_differs_by_content() {
        assert_ne!(mix_str(1, "Lawn Mowing"), mix_str(1, "Leaf Raking"));
        assert_eq!(mix_str(1, "Lawn Mowing"), mix_str(1, "Lawn Mowing"));
    }
}
