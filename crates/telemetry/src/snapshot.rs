//! Point-in-time metric snapshots. A [`Snapshot`] is plain serde-derived
//! data — it serializes to the JSON the bench trajectory files store and
//! deserializes back for diffing, so `snapshot → JSON → snapshot` is an
//! identity.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use serde::{Deserialize, Serialize};

use crate::metrics::{bucket_lower_bound, Counter, Gauge, Histogram};

/// One named counter value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricEntry {
    pub name: String,
    pub value: u64,
}

/// One named gauge value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeEntry {
    pub name: String,
    pub value: i64,
}

/// A non-empty histogram bucket: samples in `[lower_ns, 2*lower_ns)`
/// (bucket 0: `[0, 2)` ns; the top bucket is open-ended).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    pub lower_ns: u64,
    pub count: u64,
}

/// One named histogram: exact count/sum/min/max plus its non-empty
/// buckets. `min_ns`/`max_ns` are both 0 when `count` is 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean sample duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A point-in-time copy of a registry's metrics, sorted by name within
/// each section. This is the unit the sinks export and
/// [`Report`](crate::Report) diffs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    pub counters: Vec<MetricEntry>,
    pub gauges: Vec<GaugeEntry>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    pub(crate) fn capture(
        counters: &BTreeMap<String, Counter>,
        gauges: &BTreeMap<String, Gauge>,
        histograms: &BTreeMap<String, Histogram>,
    ) -> Snapshot {
        Snapshot {
            counters: counters
                .iter()
                .map(|(name, c)| MetricEntry { name: name.clone(), value: c.get() })
                .collect(),
            gauges: gauges
                .iter()
                .map(|(name, g)| GaugeEntry { name: name.clone(), value: g.get() })
                .collect(),
            histograms: histograms.iter().map(|(name, h)| capture_histogram(name, h)).collect(),
        }
    }

    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|e| e.name == name).map(|e| e.value)
    }

    /// Value of the gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|e| e.name == name).map(|e| e.value)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when no metric has recorded anything (all counters zero, all
    /// gauges zero, all histograms empty).
    pub fn is_empty_of_data(&self) -> bool {
        self.counters.iter().all(|c| c.value == 0)
            && self.gauges.iter().all(|g| g.value == 0)
            && self.histograms.iter().all(|h| h.count == 0)
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a snapshot back from JSON text.
    pub fn from_json(text: &str) -> Result<Snapshot, serde::Error> {
        serde::json::from_str(text)
    }
}

fn capture_histogram(name: &str, h: &Histogram) -> HistogramSnapshot {
    let inner = &*h.0;
    let count = inner.count.load(Ordering::Relaxed);
    let min_raw = inner.min_ns.load(Ordering::Relaxed);
    HistogramSnapshot {
        name: name.to_owned(),
        count,
        sum_ns: inner.sum_ns.load(Ordering::Relaxed),
        min_ns: if min_raw == u64::MAX { 0 } else { min_raw },
        max_ns: inner.max_ns.load(Ordering::Relaxed),
        buckets: inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then(|| BucketCount { lower_ns: bucket_lower_bound(i), count })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("ta.sorted_accesses").add(42);
        r.gauge("cube.live_cells").set(-3);
        r.histogram("cube.cell").record_ns(900);
        r.histogram("cube.cell").record_ns(1100);
        let snap = r.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("snapshot JSON parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_histogram_snapshots_cleanly() {
        let r = Registry::new();
        let _ = r.histogram("never.recorded");
        let snap = r.snapshot();
        let h = snap.histogram("never.recorded").unwrap();
        assert_eq!((h.count, h.min_ns, h.max_ns), (0, 0, 0));
        assert!(h.buckets.is_empty());
        assert!(snap.is_empty_of_data());
    }
}
