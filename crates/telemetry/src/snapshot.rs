//! Point-in-time metric snapshots. A [`Snapshot`] is plain serde-derived
//! data — it serializes to the JSON the bench trajectory files store and
//! deserializes back for diffing, so `snapshot → JSON → snapshot` is an
//! identity.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use serde::{Deserialize, Serialize};

use crate::metrics::{bucket_lower_bound, Counter, Gauge, Histogram};

/// One named counter value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricEntry {
    pub name: String,
    pub value: u64,
}

/// One named gauge value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeEntry {
    pub name: String,
    pub value: i64,
}

/// A non-empty histogram bucket: samples in `[lower_ns, 2*lower_ns)`
/// (bucket 0: `[0, 2)` ns; the top bucket is open-ended).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    pub lower_ns: u64,
    pub count: u64,
}

/// One named histogram: exact count/sum/min/max plus its non-empty
/// buckets. `min_ns`/`max_ns` are both 0 when `count` is 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean sample duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Estimated `q`-quantile in nanoseconds (`q` clamped to `[0, 1]`;
    /// 0 when empty).
    ///
    /// The estimate locates the target rank `⌈q·count⌉` in the log₂
    /// buckets and interpolates linearly *toward the bucket's upper
    /// bound* — so with b samples in `[lo, 2·lo)`, rank r estimates
    /// `lo + r·lo/b`. The documented bias: estimates never undershoot
    /// the true quantile by more than one bucket width and tend to
    /// overshoot within the bucket, which is the conservative direction
    /// for latency targets. Results are clamped to the exactly-tracked
    /// `[min_ns, max_ns]`, which also bounds the open-ended top bucket.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Target rank ⌈q·count⌉ in 1..=count, computed without a
        // float rounding-method cast.
        let scaled = q.clamp(0.0, 1.0) * self.count as f64;
        // A unit fraction of a u64 count is finite and non-negative; the
        // guard pins that invariant at the conversion.
        let scaled = if scaled.is_finite() && scaled >= 0.0 { scaled } else { 0.0 };
        let mut target = scaled as u64;
        if (target as f64) < scaled {
            target += 1;
        }
        let target = target.clamp(1, self.count);
        let mut cum = 0u64;
        for bucket in &self.buckets {
            let next = cum + bucket.count;
            if target <= next {
                let lo = bucket.lower_ns;
                let hi = if lo == 0 { 2 } else { lo.saturating_mul(2) };
                // `cum < target` on this branch (previous buckets all
                // ended below `target`), so the rank is in 1..=count.
                let rank = target.saturating_sub(cum);
                let est = lo.saturating_add(
                    (rank.saturating_mul(hi - lo).saturating_add(bucket.count - 1)) / bucket.count,
                );
                return est.clamp(self.min_ns, self.max_ns);
            }
            cum = next;
        }
        self.max_ns
    }

    /// Median estimate (see [`Self::quantile_ns`]).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 90th-percentile estimate (see [`Self::quantile_ns`]).
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// 99th-percentile estimate (see [`Self::quantile_ns`]).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th-percentile estimate (see [`Self::quantile_ns`]).
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }
}

/// A point-in-time copy of a registry's metrics, sorted by name within
/// each section. This is the unit the sinks export and
/// [`Report`](crate::Report) diffs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    pub counters: Vec<MetricEntry>,
    pub gauges: Vec<GaugeEntry>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    pub(crate) fn capture(
        counters: &BTreeMap<String, Counter>,
        gauges: &BTreeMap<String, Gauge>,
        histograms: &BTreeMap<String, Histogram>,
    ) -> Snapshot {
        Snapshot {
            counters: counters
                .iter()
                .map(|(name, c)| MetricEntry { name: name.clone(), value: c.get() })
                .collect(),
            gauges: gauges
                .iter()
                .map(|(name, g)| GaugeEntry { name: name.clone(), value: g.get() })
                .collect(),
            histograms: histograms.iter().map(|(name, h)| capture_histogram(name, h)).collect(),
        }
    }

    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|e| e.name == name).map(|e| e.value)
    }

    /// Value of the gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|e| e.name == name).map(|e| e.value)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when no metric has recorded anything (all counters zero, all
    /// gauges zero, all histograms empty).
    pub fn is_empty_of_data(&self) -> bool {
        self.counters.iter().all(|c| c.value == 0)
            && self.gauges.iter().all(|g| g.value == 0)
            && self.histograms.iter().all(|h| h.count == 0)
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a snapshot back from JSON text.
    pub fn from_json(text: &str) -> Result<Snapshot, serde::Error> {
        serde::json::from_str(text)
    }
}

fn capture_histogram(name: &str, h: &Histogram) -> HistogramSnapshot {
    let inner = &*h.0;
    let count = inner.count.load(Ordering::Relaxed);
    let min_raw = inner.min_ns.load(Ordering::Relaxed);
    HistogramSnapshot {
        name: name.to_owned(),
        count,
        sum_ns: inner.sum_ns.load(Ordering::Relaxed),
        min_ns: if min_raw == u64::MAX { 0 } else { min_raw },
        max_ns: inner.max_ns.load(Ordering::Relaxed),
        buckets: inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then(|| BucketCount { lower_ns: bucket_lower_bound(i), count })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("ta.sorted_accesses").add(42);
        r.gauge("cube.live_cells").set(-3);
        r.histogram("cube.cell").record_ns(900);
        r.histogram("cube.cell").record_ns(1100);
        let snap = r.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("snapshot JSON parses");
        assert_eq!(back, snap);
    }

    fn hist(count: u64, min_ns: u64, max_ns: u64, buckets: Vec<BucketCount>) -> HistogramSnapshot {
        let sum_ns = count * (min_ns + max_ns) / 2; // irrelevant to quantiles
        HistogramSnapshot { name: "h".into(), count, sum_ns, min_ns, max_ns, buckets }
    }

    #[test]
    fn quantiles_of_empty_histogram_are_zero() {
        let h = hist(0, 0, 0, Vec::new());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 0);
        }
    }

    #[test]
    fn quantiles_within_a_single_bucket_interpolate_to_upper_bound() {
        // 4 samples, all in [1024, 2048): ranks 1..=4 estimate
        // 1024 + r·256, clamped to the exact [min, max].
        let h = hist(4, 1100, 1900, vec![BucketCount { lower_ns: 1024, count: 4 }]);
        assert_eq!(h.quantile_ns(0.0), 1280, "q=0 targets rank 1");
        assert_eq!(h.p50_ns(), 1536);
        assert_eq!(h.quantile_ns(0.75), 1792);
        assert_eq!(h.p99_ns(), 1900, "rank 4 interpolates to 2048, clamped to max");
        assert_eq!(h.quantile_ns(1.0), 1900);
        // Estimates never leave the observed range.
        for q in [0.0, 0.1, 0.5, 0.9, 0.999, 1.0] {
            let v = h.quantile_ns(q);
            assert!((1100..=1900).contains(&v), "q={q}: {v}");
        }
    }

    #[test]
    fn quantiles_with_all_samples_in_overflow_bucket_clamp_to_max() {
        // Everything landed in the open-ended top bucket: the upper
        // bound would be 2^40, but max_ns is tracked exactly.
        let top = 1u64 << 39;
        let h = hist(3, top + 5, top + 999, vec![BucketCount { lower_ns: top, count: 3 }]);
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(h.quantile_ns(q), top + 999, "q={q}");
        }
        assert_eq!(h.p999_ns(), top + 999);
    }

    #[test]
    fn quantiles_walk_across_buckets() {
        // 90 fast samples in [0, 2), 10 slow in [1024, 2048):
        // p50/p90 stay in the fast bucket, p99/p999 land in the slow one.
        let h = hist(
            100,
            1,
            1500,
            vec![BucketCount { lower_ns: 0, count: 90 }, BucketCount { lower_ns: 1024, count: 10 }],
        );
        assert!(h.p50_ns() <= 2, "median in the fast bucket: {}", h.p50_ns());
        assert!(h.p90_ns() <= 2, "p90 is rank 90, still fast: {}", h.p90_ns());
        assert!(h.p99_ns() >= 1024, "p99 in the slow bucket: {}", h.p99_ns());
        assert_eq!(h.quantile_ns(1.0), 1500);
        // Monotone in q.
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0];
        for pair in qs.windows(2) {
            assert!(h.quantile_ns(pair[0]) <= h.quantile_ns(pair[1]), "{pair:?}");
        }
    }

    #[test]
    fn empty_histogram_snapshots_cleanly() {
        let r = Registry::new();
        let _ = r.histogram("never.recorded");
        let snap = r.snapshot();
        let h = snap.histogram("never.recorded").unwrap();
        assert_eq!((h.count, h.min_ns, h.max_ns), (0, 0, 0));
        assert!(h.buckets.is_empty());
        assert!(snap.is_empty_of_data());
    }
}
