//! Snapshot exporters. A [`Subscriber`] consumes [`Snapshot`]s; the two
//! shipped implementations cover the human (aligned table on any
//! `io::Write`) and the machine (`BENCH_*.json`-style serde-JSON files).

use std::io::{self, Write};

use crate::snapshot::Snapshot;

/// Something that can export a metrics snapshot.
pub trait Subscriber {
    /// Exports one snapshot.
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()>;
}

/// Human-readable aligned-table writer. Histogram rows show call count,
/// cumulative / mean / min / max durations plus estimated
/// p50/p90/p99/p999 quantiles.
pub struct TableSink<W: Write> {
    out: W,
}

impl<W: Write> TableSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl TableSink<io::Stdout> {
    /// Table sink writing to standard output.
    pub fn stdout() -> Self {
        Self::new(io::stdout())
    }
}

impl<W: Write> Subscriber for TableSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        self.out.write_all(render_table(snapshot).as_bytes())
    }
}

/// Renders a snapshot as the table [`TableSink`] writes.
pub fn render_table(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        let width = column_width(snapshot.counters.iter().map(|e| e.name.len()));
        out.push_str("counters\n");
        for e in &snapshot.counters {
            out.push_str(&format!("  {:<width$}  {:>12}\n", e.name, e.value));
        }
    }
    if !snapshot.gauges.is_empty() {
        let width = column_width(snapshot.gauges.iter().map(|e| e.name.len()));
        out.push_str("gauges\n");
        for e in &snapshot.gauges {
            out.push_str(&format!("  {:<width$}  {:>12}\n", e.name, e.value));
        }
    }
    if !snapshot.histograms.is_empty() {
        let width = column_width(snapshot.histograms.iter().map(|h| h.name.len()));
        out.push_str("spans / durations\n");
        out.push_str(&format!(
            "  {:<width$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "name", "calls", "total", "mean", "min", "max", "p50", "p90", "p99", "p999"
        ));
        for h in &snapshot.histograms {
            out.push_str(&format!(
                "  {:<width$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                h.name,
                h.count,
                format_ns(h.sum_ns),
                format_ns(h.mean_ns()),
                format_ns(h.min_ns),
                format_ns(h.max_ns),
                format_ns(h.p50_ns()),
                format_ns(h.p90_ns()),
                format_ns(h.p99_ns()),
                format_ns(h.p999_ns()),
            ));
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics registered)\n");
    }
    out
}

fn column_width(names: impl Iterator<Item = usize>) -> usize {
    names.max().unwrap_or(0).max(4)
}

/// Formats a nanosecond quantity with an adaptive unit (`ns`, `µs`, `ms`,
/// `s`).
pub fn format_ns(ns: u64) -> String {
    const US: u64 = 1_000;
    const MS: u64 = 1_000_000;
    const S: u64 = 1_000_000_000;
    if ns >= S {
        format!("{:.2}s", ns as f64 / S as f64)
    } else if ns >= MS {
        format!("{:.2}ms", ns as f64 / MS as f64)
    } else if ns >= US {
        format!("{:.2}µs", ns as f64 / US as f64)
    } else {
        format!("{ns}ns")
    }
}

/// serde-JSON snapshot writer, producing the same shape the bench
/// trajectory (`BENCH_*.json`) helper stores, so table and file exports
/// stay interchangeable.
pub struct JsonSink<W: Write> {
    out: W,
    pretty: bool,
}

impl<W: Write> JsonSink<W> {
    /// Pretty-printed JSON (the trajectory-file format).
    pub fn new(out: W) -> Self {
        Self { out, pretty: true }
    }

    /// Compact single-line JSON (for log pipelines).
    pub fn compact(out: W) -> Self {
        Self { out, pretty: false }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Subscriber for JsonSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        let text = if self.pretty {
            serde::json::to_string_pretty(snapshot)
        } else {
            serde::json::to_string(snapshot)
        };
        self.out.write_all(text.as_bytes())?;
        self.out.write_all(b"\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("ta.sorted_accesses").add(7);
        r.histogram("index.build").record_ns(2_500_000);
        r.snapshot()
    }

    #[test]
    fn table_sink_lists_every_metric() {
        let mut sink = TableSink::new(Vec::new());
        sink.export(&sample()).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("ta.sorted_accesses"));
        assert!(text.contains("index.build"));
        assert!(text.contains("2.50ms"));
    }

    #[test]
    fn table_renders_quantile_columns() {
        let text = render_table(&sample());
        for header in ["p50", "p90", "p99", "p999"] {
            assert!(text.contains(header), "missing column {header}: {text}");
        }
        // A single 2.5ms sample: total, mean, min, max and all four
        // quantiles clamp to the same exact value.
        assert_eq!(text.matches("2.50ms").count(), 8, "{text}");
    }

    #[test]
    fn json_sink_output_parses_back() {
        let snap = sample();
        let mut sink = JsonSink::compact(Vec::new());
        sink.export(&snap).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(Snapshot::from_json(text.trim()).unwrap(), snap);
    }
}
