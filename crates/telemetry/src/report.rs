//! Snapshot diffing. A [`Report`] is the difference between two
//! [`Snapshot`]s — "what did this run / this commit change" — and is what
//! perf PRs are expected to quote. Metrics present on only one side are
//! treated as 0 on the other.

use std::collections::BTreeMap;
use std::fmt;

use crate::sink::format_ns;
use crate::snapshot::Snapshot;

/// One metric's before/after pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDelta {
    pub name: String,
    pub before: i128,
    pub after: i128,
}

impl MetricDelta {
    /// Signed change from before to after.
    pub fn delta(&self) -> i128 {
        self.after - self.before
    }
}

/// The diff of two snapshots. Histograms contribute three rows each:
/// `<name>.calls` (count), `<name>.total_ns` (cumulative duration), and
/// `<name>.p99_ns` (estimated 99th percentile — the tail the ROADMAP's
/// serving targets care about).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    pub counters: Vec<MetricDelta>,
    pub gauges: Vec<MetricDelta>,
    pub histograms: Vec<MetricDelta>,
}

impl Report {
    /// Diffs `after` against `before`.
    pub fn diff(before: &Snapshot, after: &Snapshot) -> Report {
        Report {
            counters: diff_section(
                before.counters.iter().map(|e| (e.name.clone(), e.value as i128)),
                after.counters.iter().map(|e| (e.name.clone(), e.value as i128)),
            ),
            gauges: diff_section(
                before.gauges.iter().map(|e| (e.name.clone(), e.value as i128)),
                after.gauges.iter().map(|e| (e.name.clone(), e.value as i128)),
            ),
            histograms: diff_section(
                before.histograms.iter().flat_map(histogram_rows),
                after.histograms.iter().flat_map(histogram_rows),
            ),
        }
    }

    /// True when nothing changed — every metric has a zero delta. A
    /// snapshot diffed against itself is always zero.
    pub fn is_zero(&self) -> bool {
        self.counters.iter().chain(&self.gauges).chain(&self.histograms).all(|d| d.delta() == 0)
    }

    /// Only the rows whose delta is non-zero, across all sections.
    pub fn changed(&self) -> impl Iterator<Item = &MetricDelta> {
        self.counters.iter().chain(&self.gauges).chain(&self.histograms).filter(|d| d.delta() != 0)
    }
}

fn histogram_rows(h: &crate::snapshot::HistogramSnapshot) -> [(String, i128); 3] {
    [
        (format!("{}.calls", h.name), h.count as i128),
        (format!("{}.total_ns", h.name), h.sum_ns as i128),
        (format!("{}.p99_ns", h.name), h.p99_ns() as i128),
    ]
}

fn diff_section(
    before: impl Iterator<Item = (String, i128)>,
    after: impl Iterator<Item = (String, i128)>,
) -> Vec<MetricDelta> {
    let mut merged: BTreeMap<String, (i128, i128)> = BTreeMap::new();
    for (name, v) in before {
        merged.entry(name).or_default().0 = v;
    }
    for (name, v) in after {
        merged.entry(name).or_default().1 = v;
    }
    merged.into_iter().map(|(name, (before, after))| MetricDelta { name, before, after }).collect()
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return writeln!(f, "no metric changed");
        }
        let width = self.changed().map(|d| d.name.len()).max().unwrap_or(4).max(4);
        writeln!(f, "{:<width$}  {:>14}  {:>14}  {:>15}", "name", "before", "after", "delta")?;
        for d in self.changed() {
            let delta = d.delta();
            let rendered = if d.name.ends_with(".total_ns") {
                let sign = if delta < 0 { "-" } else { "+" };
                format!("{sign}{}", format_ns(delta.unsigned_abs().min(u64::MAX as u128) as u64))
            } else {
                format!("{delta:+}")
            };
            writeln!(f, "{:<width$}  {:>14}  {:>14}  {:>15}", d.name, d.before, d.after, rendered)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn self_diff_is_zero() {
        let r = Registry::new();
        r.counter("cube.cells_computed").add(12);
        r.gauge("depth").set(2);
        r.histogram("cube.cell").record_ns(400);
        let snap = r.snapshot();
        let report = Report::diff(&snap, &snap);
        assert!(report.is_zero());
        assert_eq!(report.changed().count(), 0);
    }

    #[test]
    fn diff_handles_metrics_on_one_side_only() {
        let r = Registry::new();
        let before = r.snapshot();
        r.counter("new.metric").add(5);
        let after = r.snapshot();
        let report = Report::diff(&before, &after);
        assert!(!report.is_zero());
        let row = report.counters.iter().find(|d| d.name == "new.metric").unwrap();
        assert_eq!((row.before, row.after, row.delta()), (0, 5, 5));
    }

    #[test]
    fn diff_includes_p99_rows_for_histograms() {
        let r = Registry::new();
        let before = r.snapshot();
        r.histogram("serve.request").record_ns(1_000);
        let after = r.snapshot();
        let report = Report::diff(&before, &after);
        let p99 = report.histograms.iter().find(|d| d.name == "serve.request.p99_ns").unwrap();
        assert_eq!(p99.before, 0);
        assert_eq!(p99.after, i128::from(after.histogram("serve.request").unwrap().p99_ns()));
        assert!(p99.after > 0);
    }

    #[test]
    fn display_lists_only_changed_rows() {
        let r = Registry::new();
        r.counter("same").add(1);
        let before = r.snapshot();
        r.counter("moved").add(3);
        let after = r.snapshot();
        let text = Report::diff(&before, &after).to_string();
        assert!(text.contains("moved"));
        assert!(!text.contains("same"));
    }
}
