//! RAII wall-clock spans. A [`SpanGuard`] opened on a disabled registry is
//! inert: no clock read, no name lookup, no allocation — just one relaxed
//! atomic load at construction. On an enabled registry, dropping the guard
//! records the elapsed time into the histogram of the same name (so each
//! histogram's `count` is the per-span call count).

use std::cell::Cell;
use std::time::Instant;

use crate::metrics::Histogram;
use crate::registry::Registry;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Current nesting depth of live spans on this thread (0 outside any span).
/// Disabled-registry guards do not contribute.
pub fn span_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// Guard returned by [`span!`](crate::span!); records its lifetime's
/// duration on drop.
#[must_use = "a span measures the time until the guard is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Histogram, Instant)>,
}

impl SpanGuard {
    /// Opens a span named `name` on `registry`. Inert if the registry is
    /// disabled.
    pub fn enter(registry: &Registry, name: &str) -> SpanGuard {
        if !registry.enabled() {
            return SpanGuard { active: None };
        }
        DEPTH.with(|d| d.set(d.get() + 1));
        SpanGuard { active: Some((registry.histogram(name), Instant::now())) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((histogram, start)) = self.active.take() {
            histogram.record(start.elapsed());
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_tracks_nesting_and_disabled_spans_are_inert() {
        let r = Registry::new();
        assert_eq!(span_depth(), 0);
        {
            let _a = SpanGuard::enter(&r, "outer");
            assert_eq!(span_depth(), 1);
            {
                let _b = SpanGuard::enter(&r, "inner");
                assert_eq!(span_depth(), 2);
            }
            assert_eq!(span_depth(), 1);
        }
        assert_eq!(span_depth(), 0);

        r.set_enabled(false);
        {
            let _c = SpanGuard::enter(&r, "off");
            assert_eq!(span_depth(), 0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.histogram("outer").map(|h| h.count), Some(1));
        assert_eq!(snap.histogram("inner").map(|h| h.count), Some(1));
        assert!(snap.histogram("off").is_none());
    }
}
