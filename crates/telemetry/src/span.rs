//! RAII wall-clock spans. A [`SpanGuard`] opened on a disabled registry is
//! inert: no clock read, no name lookup, no allocation — just one relaxed
//! atomic load at construction. On an enabled registry, dropping the guard
//! records the elapsed time into the histogram of the same name (so each
//! histogram's `count` is the per-span call count).

use std::cell::Cell;
use std::time::Instant;

use crate::metrics::Histogram;
use crate::registry::Registry;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Current nesting depth of live spans on this thread (0 outside any span).
/// Disabled-registry guards do not contribute.
pub fn span_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// Guard returned by [`span!`](crate::span!); records its lifetime's
/// duration on drop.
#[must_use = "a span measures the time until the guard is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Histogram, Instant)>,
}

impl SpanGuard {
    /// Opens a span named `name` on `registry`. Inert if the registry is
    /// disabled.
    pub fn enter(registry: &Registry, name: &str) -> SpanGuard {
        if !registry.enabled() {
            return SpanGuard { active: None };
        }
        DEPTH.with(|d| d.set(d.get() + 1));
        SpanGuard { active: Some((registry.histogram(name), Instant::now())) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((histogram, start)) = self.active.take() {
            // The decrement must pair with `enter`'s increment even if
            // `record` unwinds (or grows an early return): park it in
            // its own drop guard so the depth cannot leak.
            struct DepthDecrement;
            impl Drop for DepthDecrement {
                fn drop(&mut self) {
                    DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
                }
            }
            let _decrement = DepthDecrement;
            histogram.record(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_tracks_nesting_and_disabled_spans_are_inert() {
        let r = Registry::new();
        assert_eq!(span_depth(), 0);
        {
            let _a = SpanGuard::enter(&r, "outer");
            assert_eq!(span_depth(), 1);
            {
                let _b = SpanGuard::enter(&r, "inner");
                assert_eq!(span_depth(), 2);
            }
            assert_eq!(span_depth(), 1);
        }
        assert_eq!(span_depth(), 0);

        r.set_enabled(false);
        {
            let _c = SpanGuard::enter(&r, "off");
            assert_eq!(span_depth(), 0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.histogram("outer").map(|h| h.count), Some(1));
        assert_eq!(snap.histogram("inner").map(|h| h.count), Some(1));
        assert!(snap.histogram("off").is_none());
    }

    #[test]
    fn depth_survives_unwind_through_live_spans() {
        let r = Registry::new();
        assert_eq!(span_depth(), 0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = SpanGuard::enter(&r, "doomed");
            assert_eq!(span_depth(), 1);
            panic!("unwind through a live span");
        }));
        assert!(caught.is_err());
        // The guard dropped during the unwind: depth is back to 0 and
        // the duration was still recorded.
        assert_eq!(span_depth(), 0, "depth must not leak on panic");
        assert_eq!(r.snapshot().histogram("doomed").map(|h| h.count), Some(1));
    }
}
