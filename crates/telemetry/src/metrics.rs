//! Atomic metric primitives: counters, gauges, and log₂-bucketed duration
//! histograms. All operations use relaxed ordering — these are statistics,
//! not synchronization points, and a relaxed `fetch_add` is the cheapest
//! RMW the hardware offers.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of histogram buckets. Bucket `i` (for `i > 0`) counts samples in
/// `[2^i, 2^(i+1))` nanoseconds; bucket 0 covers `[0, 2)` ns and the last
/// bucket absorbs everything at or above `2^(BUCKETS-1)` ns (~9 minutes).
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing event count. Cloning is cheap and all clones
/// share the same underlying atomic, so handles can be fetched once and
/// kept in hot loops.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A signed value that can move in both directions (queue depths, live cell
/// counts, resident bytes).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug)]
pub(crate) struct HistogramInner {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum_ns: AtomicU64,
    /// `u64::MAX` while empty so `fetch_min` works without a sentinel branch.
    pub(crate) min_ns: AtomicU64,
    pub(crate) max_ns: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// A duration histogram with power-of-two nanosecond buckets plus exact
/// count / sum / min / max. Span guards record into these; code that times
/// manually (hot loops holding a handle) can call [`Histogram::record`]
/// directly.
#[derive(Clone, Debug, Default)]
pub struct Histogram(pub(crate) Arc<HistogramInner>);

impl Histogram {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one sample given directly in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum_ns.fetch_add(ns, Ordering::Relaxed);
        inner.min_ns.fetch_min(ns, Ordering::Relaxed);
        inner.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Starts a timer that records into this histogram when
    /// [`HistogramTimer::observe`] is called. Dropping the timer without
    /// observing records nothing — callers decide whether a code path
    /// counts. This is the sanctioned way to time code outside the
    /// telemetry crate (the `instant-outside-telemetry` lint denies raw
    /// `Instant::now()` elsewhere).
    pub fn timer(&self) -> HistogramTimer {
        HistogramTimer { histogram: self.clone(), start: Instant::now() }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.0.sum_ns.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        let inner = &*self.0;
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        inner.count.store(0, Ordering::Relaxed);
        inner.sum_ns.store(0, Ordering::Relaxed);
        inner.min_ns.store(u64::MAX, Ordering::Relaxed);
        inner.max_ns.store(0, Ordering::Relaxed);
    }
}

/// An explicit-stop timer handed out by [`Histogram::timer`]. Unlike a
/// span guard, the sample is recorded only on [`observe`](Self::observe)
/// — dropping the timer discards it, so conditional paths (e.g. a cube
/// cell that turned out unobserved) can opt out of the histogram.
#[must_use = "a timer records nothing until .observe() is called"]
#[derive(Debug)]
pub struct HistogramTimer {
    histogram: Histogram,
    start: Instant,
}

impl HistogramTimer {
    /// Records the elapsed time since the timer started.
    pub fn observe(self) {
        self.histogram.record(self.start.elapsed());
    }
}

/// Maps a nanosecond value to its bucket: `floor(log2(ns))` clamped to the
/// bucket range, with 0 and 1 ns both landing in bucket 0.
#[inline]
pub(crate) fn bucket_index(ns: u64) -> usize {
    if ns < 2 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` in nanoseconds.
#[inline]
pub(crate) fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(lo - 1), i - 1);
        }
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let h = Histogram::new();
        h.record_ns(10);
        h.record_ns(1000);
        h.record_ns(3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), Duration::from_nanos(1013));
        assert_eq!(h.0.min_ns.load(Ordering::Relaxed), 3);
        assert_eq!(h.0.max_ns.load(Ordering::Relaxed), 1000);
    }
}
