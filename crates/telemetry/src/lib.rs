//! # fbox-telemetry — observability for the F-Box pipeline
//!
//! The paper evaluates Algorithm 1 by *counting* — sorted accesses, random
//! accesses, wall-clock per dimension instance (§5's tables). This crate
//! makes that instrumentation a first-class, always-available layer across
//! the whole pipeline instead of ad-hoc counters in one algorithm:
//!
//! - a [`Registry`] of named [`Counter`]s, [`Gauge`]s, and log₂-bucketed
//!   duration [`Histogram`]s, global ([`global()`]) or scoped
//!   ([`Registry::new`]);
//! - RAII **span guards** ([`span!`]) recording nested wall-clock timings
//!   with per-span call counts;
//! - a [`Subscriber`] trait with two shipped sinks: a human-readable
//!   [`TableSink`] and a serde-JSON [`JsonSink`] writing
//!   `BENCH_*.json`-style trajectory snapshots;
//! - a [`Report`] that diffs two [`Snapshot`]s, so a run (or a commit) can
//!   be compared against a previous one.
//!
//! ## Overhead contract
//!
//! Everything is built on `std::sync::atomic` with **relaxed** ordering —
//! counter increments are single relaxed RMW instructions. When telemetry
//! is disabled (the default), [`span!`] guards are no-ops that never call
//! `Instant::now`, and instrumented code paths cost one relaxed atomic
//! load. There are **no external dependencies**.
//!
//! ## Quick example
//!
//! ```
//! use fbox_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! let calls = telemetry::global().counter("demo.calls");
//! {
//!     let _span = telemetry::span!("demo.work");
//!     calls.add(3);
//! }
//! let snapshot = telemetry::global().snapshot();
//! assert_eq!(snapshot.counter("demo.calls"), Some(3));
//! assert!(snapshot.histogram("demo.work").is_some());
//! # telemetry::set_enabled(false);
//! # telemetry::global().reset();
//! ```

mod metrics;
mod registry;
mod report;
mod sink;
mod snapshot;
mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramTimer, HISTOGRAM_BUCKETS};
pub use registry::{global, set_enabled, Registry};
pub use report::{MetricDelta, Report};
pub use sink::{JsonSink, Subscriber, TableSink};
pub use snapshot::{BucketCount, GaugeEntry, HistogramSnapshot, MetricEntry, Snapshot};
pub use span::{span_depth, SpanGuard};

/// Opens a named RAII span on the [`global()`] registry.
///
/// When telemetry is disabled the guard is inert: no clock read, no
/// allocation, one relaxed atomic load. When enabled, dropping the guard
/// records the elapsed wall-clock time into the histogram named by the
/// span (one histogram count per call — the per-span call count).
///
/// ```
/// # fbox_telemetry::set_enabled(true);
/// {
///     let _guard = fbox_telemetry::span!("cube.market.cell");
///     // ... timed work ...
/// }
/// # assert!(fbox_telemetry::global().snapshot().histogram("cube.market.cell").is_some());
/// # fbox_telemetry::set_enabled(false);
/// # fbox_telemetry::global().reset();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($crate::global(), $name)
    };
    ($registry:expr, $name:expr) => {
        $crate::SpanGuard::enter($registry, $name)
    };
}
