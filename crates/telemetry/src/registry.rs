//! Named metric registries. A [`Registry`] owns the name → metric maps;
//! handles returned by [`Registry::counter`] & co. are cheap clones sharing
//! the underlying atomics, so hot code fetches a handle once (one mutex
//! acquisition) and then increments lock-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::Snapshot;

/// A collection of named counters, gauges, and histograms plus an enabled
/// flag gating the more expensive instrumentation (spans read the clock
/// only when enabled).
///
/// Scoped registries (from [`Registry::new`]) start enabled — they exist
/// because someone wants numbers. The [`global`] registry starts disabled
/// unless the `FBOX_TELEMETRY` environment variable is set to a non-empty
/// value other than `0`.
#[derive(Debug, Default)]
pub struct Registry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// Creates a scoped registry, enabled from the start.
    pub fn new() -> Self {
        let r = Self::default();
        r.enabled.store(true, Ordering::Release);
        r
    }

    /// Whether instrumentation gated on this registry should run.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Turns gated instrumentation on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Returns the counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&self.counters, name, Counter::new)
    }

    /// Returns the gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&self.gauges, name, Gauge::new)
    }

    /// Returns the histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_insert(&self.histograms, name, Histogram::new)
    }

    /// Takes a point-in-time copy of every registered metric, sorted by
    /// name. The copy is not atomic across metrics (concurrent writers may
    /// land between reads), which is fine for reporting.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(
            &self.counters.lock().expect("telemetry counters poisoned"),
            &self.gauges.lock().expect("telemetry gauges poisoned"),
            &self.histograms.lock().expect("telemetry histograms poisoned"),
        )
    }

    /// Zeroes every registered metric. Registrations (and handles held by
    /// instrumented code) stay valid.
    pub fn reset(&self) {
        for c in self.counters.lock().expect("telemetry counters poisoned").values() {
            c.reset();
        }
        for g in self.gauges.lock().expect("telemetry gauges poisoned").values() {
            g.reset();
        }
        for h in self.histograms.lock().expect("telemetry histograms poisoned").values() {
            h.reset();
        }
    }
}

fn get_or_insert<M: Clone>(map: &Mutex<BTreeMap<String, M>>, name: &str, new: fn() -> M) -> M {
    let mut map = map.lock().expect("telemetry registry poisoned");
    if let Some(m) = map.get(name) {
        return m.clone();
    }
    let m = new();
    map.insert(name.to_owned(), m.clone());
    m
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry used by the bare [`span!`](crate::span!) form
/// and the pipeline instrumentation.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(|| {
        let r = Registry::default();
        let on =
            std::env::var("FBOX_TELEMETRY").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
        r.set_enabled(on);
        r
    })
}

/// Enables or disables the [`global`] registry's gated instrumentation.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("x").get(), 3);
    }

    #[test]
    fn reset_keeps_registrations_live() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(5);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.snapshot().counter("x"), Some(1));
    }
}
