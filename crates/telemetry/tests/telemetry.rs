//! Integration coverage for the telemetry crate: concurrency, span
//! nesting, histogram bucketing, and snapshot serialization — exercised
//! through the public API only.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use fbox_telemetry::{Registry, Report, Snapshot, HISTOGRAM_BUCKETS};

#[test]
fn concurrent_counter_increments_from_multiple_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;

    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // Each thread fetches its own handle, as the hot loops do.
                let counter = registry.counter("shared.hits");
                let gauge = registry.gauge("shared.level");
                for _ in 0..PER_THREAD {
                    counter.inc();
                    gauge.add(1);
                    gauge.add(-1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("shared.hits"),
        Some(THREADS as u64 * PER_THREAD),
        "no increments lost under contention"
    );
    assert_eq!(snapshot.gauge("shared.level"), Some(0), "balanced adds cancel");
}

#[test]
fn concurrent_histogram_records_keep_count_and_sum() {
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 1_000;

    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let hist = registry.histogram("shared.latency");
                for i in 0..PER_THREAD {
                    hist.record_ns(t as u64 * PER_THREAD + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let snapshot = registry.snapshot();
    let hist = snapshot.histogram("shared.latency").expect("recorded");
    let n = THREADS as u64 * PER_THREAD;
    assert_eq!(hist.count, n);
    assert_eq!(hist.sum_ns, n * (n - 1) / 2, "sum of 0..n");
    assert_eq!(hist.min_ns, 0);
    assert_eq!(hist.max_ns, n - 1);
    let bucket_total: u64 = hist.buckets.iter().map(|b| b.count).sum();
    assert_eq!(bucket_total, n, "every record landed in exactly one bucket");
}

#[test]
fn span_nesting_depth_tracks_scopes() {
    let registry = Registry::new();
    assert_eq!(fbox_telemetry::span_depth(), 0);
    {
        let _outer = fbox_telemetry::span!(&registry, "outer");
        assert_eq!(fbox_telemetry::span_depth(), 1);
        {
            let _mid = fbox_telemetry::span!(&registry, "mid");
            let _inner = fbox_telemetry::span!(&registry, "inner");
            assert_eq!(fbox_telemetry::span_depth(), 3);
        }
        assert_eq!(fbox_telemetry::span_depth(), 1);
    }
    assert_eq!(fbox_telemetry::span_depth(), 0);

    let snapshot = registry.snapshot();
    for name in ["outer", "mid", "inner"] {
        let hist = snapshot.histogram(name).unwrap_or_else(|| panic!("span {name} recorded"));
        assert_eq!(hist.count, 1, "span {name} recorded once");
    }
}

#[test]
fn disabled_registry_records_nothing_and_spans_stay_inert() {
    let registry = Registry::new();
    registry.set_enabled(false);
    registry.counter("quiet.counter").add(7);
    {
        let _span = fbox_telemetry::span!(&registry, "quiet.span");
        assert_eq!(fbox_telemetry::span_depth(), 0, "disabled spans do not nest");
    }
    // Counter handles still work (callers may cache them across toggles)…
    assert_eq!(registry.snapshot().counter("quiet.counter"), Some(7));
    // …but no span histogram was materialized.
    assert!(registry.snapshot().histogram("quiet.span").is_none());
}

#[test]
fn histogram_bucket_boundaries_are_powers_of_two() {
    let registry = Registry::new();
    let hist = registry.histogram("edges");
    // One record on each side of every power-of-two boundary.
    for shift in 1..12u32 {
        let edge = 1u64 << shift;
        hist.record_ns(edge - 1);
        hist.record_ns(edge);
    }
    let snapshot = registry.snapshot();
    let edges = snapshot.histogram("edges").expect("recorded");
    for bucket in &edges.buckets {
        assert!(
            bucket.lower_ns == 0 || bucket.lower_ns.is_power_of_two(),
            "bucket lower bound {} is a power of two",
            bucket.lower_ns
        );
    }
    // 2^shift - 1 and 2^shift land in adjacent buckets: each bucket
    // [2^i, 2^(i+1)) got exactly two records (one from below, one from
    // above) except the first and last edge buckets.
    let total: u64 = edges.buckets.iter().map(|b| b.count).sum();
    assert_eq!(total, 22);
    assert!(edges.buckets.len() <= HISTOGRAM_BUCKETS);
}

#[test]
fn snapshot_json_snapshot_round_trip_is_identity() {
    let registry = Registry::new();
    registry.counter("ta.sorted_accesses").add(42);
    registry.counter("ta.random_accesses").add(7);
    registry.gauge("queue.depth").set(-3);
    let hist = registry.histogram("algo.ta");
    hist.record(Duration::from_micros(150));
    hist.record(Duration::from_millis(2));

    let snapshot = registry.snapshot();
    let json = snapshot.to_json();
    let back = Snapshot::from_json(&json).expect("round-trip parses");
    assert_eq!(back, snapshot);
    assert!(Report::diff(&snapshot, &back).is_zero());
}

#[test]
fn report_diff_surfaces_only_changes() {
    let registry = Registry::new();
    registry.counter("stable").add(5);
    registry.counter("moving").add(5);
    let before = registry.snapshot();
    registry.counter("moving").add(3);
    registry.counter("fresh").inc();
    let after = registry.snapshot();

    let report = Report::diff(&before, &after);
    assert!(!report.is_zero());
    let changed: Vec<_> = report.changed().map(|d| (d.name.as_str(), d.delta())).collect();
    assert_eq!(changed, vec![("fresh", 1), ("moving", 3)]);
}
