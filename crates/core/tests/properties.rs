//! Property-based tests for the core invariants.
//!
//! The load-bearing one is `ta_equals_naive_*`: on any complete cube the
//! threshold algorithm must return exactly the same top-k values as the
//! full scan — that is the correctness claim behind the paper's §4.2.

use fbox_core::algo::{compare, naive_top_k, nra_top_k, top_k, Entity, RankOrder, Restriction};
use fbox_core::index::{Dimension, IndexSet};
use fbox_core::measures::{self, BinConfig, DiscountModel, Histogram};
use fbox_core::model::{GroupId, LocationId, QueryId};
use fbox_core::UnfairnessCube;
use proptest::prelude::*;

/// Strategy: a complete cube with the given dimension bounds and values in
/// [0, 1].
fn complete_cube(
    max_g: usize,
    max_q: usize,
    max_l: usize,
) -> impl Strategy<Value = UnfairnessCube> {
    (1..=max_g, 1..=max_q, 1..=max_l).prop_flat_map(|(ng, nq, nl)| {
        proptest::collection::vec(0.0f64..=1.0, ng * nq * nl).prop_map(move |vals| {
            let mut c = UnfairnessCube::with_dims(ng, nq, nl);
            let mut it = vals.into_iter();
            for g in 0..ng as u32 {
                for q in 0..nq as u32 {
                    for l in 0..nl as u32 {
                        c.set(GroupId(g), QueryId(q), LocationId(l), it.next().unwrap());
                    }
                }
            }
            c
        })
    })
}

/// Values of a top-k result (the comparable part under ties).
fn values(entries: &[(u32, f64)]) -> Vec<f64> {
    entries.iter().map(|&(_, v)| v).collect()
}

fn assert_close(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "result lengths differ: {a:?} vs {b:?}");
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ta_equals_naive_most_unfair(cube in complete_cube(12, 5, 5), k in 1usize..8) {
        let idx = IndexSet::build(&cube);
        for dim in [Dimension::Group, Dimension::Query, Dimension::Location] {
            let ta = top_k(&idx, dim, k, RankOrder::MostUnfair, &Restriction::none());
            let nv = naive_top_k(&cube, dim, k, RankOrder::MostUnfair, &Restriction::none());
            assert_close(&values(&ta.entries), &values(&nv.entries));
        }
    }

    #[test]
    fn ta_equals_naive_least_unfair(cube in complete_cube(12, 5, 5), k in 1usize..8) {
        let idx = IndexSet::build(&cube);
        for dim in [Dimension::Group, Dimension::Query, Dimension::Location] {
            let ta = top_k(&idx, dim, k, RankOrder::LeastUnfair, &Restriction::none());
            let nv = naive_top_k(&cube, dim, k, RankOrder::LeastUnfair, &Restriction::none());
            assert_close(&values(&ta.entries), &values(&nv.entries));
        }
    }

    #[test]
    fn nra_equals_naive(cube in complete_cube(12, 4, 4), k in 1usize..8) {
        let idx = IndexSet::build(&cube);
        for dim in [Dimension::Group, Dimension::Query, Dimension::Location] {
            for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
                let nra = nra_top_k(&idx, dim, k, order, &Restriction::none());
                let nv = naive_top_k(&cube, dim, k, order, &Restriction::none());
                assert_close(&values(&nra.entries), &values(&nv.entries));
            }
        }
    }

    #[test]
    fn ta_equals_naive_under_restriction(cube in complete_cube(8, 4, 4), k in 1usize..5) {
        let idx = IndexSet::build(&cube);
        // Restrict the aggregated dimensions to a prefix subset.
        let restrict = Restriction {
            groups: None,
            queries: Some((0..cube.n_queries().max(1) as u32 / 2 + 1).collect()),
            locations: Some((0..cube.n_locations().max(1) as u32 / 2 + 1).collect()),
        };
        let ta = top_k(&idx, Dimension::Group, k, RankOrder::MostUnfair, &restrict);
        let nv = naive_top_k(&cube, Dimension::Group, k, RankOrder::MostUnfair, &restrict);
        assert_close(&values(&ta.entries), &values(&nv.entries));
    }

    #[test]
    fn topk_reported_aggregates_are_correct(cube in complete_cube(10, 4, 4), k in 1usize..6) {
        let idx = IndexSet::build(&cube);
        let queries: Vec<QueryId> = (0..cube.n_queries() as u32).map(QueryId).collect();
        let locations: Vec<LocationId> = (0..cube.n_locations() as u32).map(LocationId).collect();
        let ta = top_k(&idx, Dimension::Group, k, RankOrder::MostUnfair, &Restriction::none());
        for (id, v) in &ta.entries {
            let expected = cube.avg_group(GroupId(*id), &queries, &locations).unwrap();
            prop_assert!((v - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn comparison_rows_consistent_with_cube(cube in complete_cube(6, 4, 4)) {
        prop_assume!(cube.n_groups() >= 2);
        let idx = IndexSet::build(&cube);
        let out = compare(
            &idx,
            Entity::Group(GroupId(0)),
            Entity::Group(GroupId(1)),
            Dimension::Location,
            None,
            &Restriction::none(),
        ).unwrap();
        let queries: Vec<QueryId> = (0..cube.n_queries() as u32).map(QueryId).collect();
        let overall_order = out.overall1.partial_cmp(&out.overall2).unwrap();
        for row in &out.rows {
            // Row values match direct cube aggregation.
            let d1 = cube.avg_group(GroupId(0), &queries, &[LocationId(row.entity)]).unwrap();
            let d2 = cube.avg_group(GroupId(1), &queries, &[LocationId(row.entity)]).unwrap();
            prop_assert!((row.d1 - d1).abs() < 1e-9);
            prop_assert!((row.d2 - d2).abs() < 1e-9);
            // The reversal flag is exactly "strict order differs".
            let row_order = row.d1.partial_cmp(&row.d2).unwrap();
            prop_assert_eq!(row.reversed, row_order != overall_order);
        }
    }

    #[test]
    fn kendall_top_k_is_a_bounded_symmetric_distance(
        a in proptest::collection::vec(0u64..30, 0..10),
        b in proptest::collection::vec(0u64..30, 0..10),
        p in 0.0f64..=1.0,
    ) {
        let mut da = a.clone();
        da.sort_unstable();
        da.dedup();
        let mut db = b.clone();
        db.sort_unstable();
        db.dedup();
        let d_ab = measures::kendall::top_k_distance(&da, &db, p);
        let d_ba = measures::kendall::top_k_distance(&db, &da, p);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!(measures::kendall::top_k_distance(&da, &da, p).abs() < 1e-12);
    }

    #[test]
    fn jaccard_is_a_bounded_symmetric_distance(
        a in proptest::collection::vec(0u64..20, 0..12),
        b in proptest::collection::vec(0u64..20, 0..12),
    ) {
        let d_ab = measures::jaccard::distance(&a, &b);
        let d_ba = measures::jaccard::distance(&b, &a);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!(measures::jaccard::distance(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn emd_metric_properties(
        va in proptest::collection::vec(0.0f64..=1.0, 1..20),
        vb in proptest::collection::vec(0.0f64..=1.0, 1..20),
        vc in proptest::collection::vec(0.0f64..=1.0, 1..20),
    ) {
        let cfg = BinConfig::unit(8);
        let a = Histogram::from_values(cfg, va.iter().copied());
        let b = Histogram::from_values(cfg, vb.iter().copied());
        let c = Histogram::from_values(cfg, vc.iter().copied());
        let ab = measures::emd_1d(&a, &b).unwrap();
        let ba = measures::emd_1d(&b, &a).unwrap();
        let bc = measures::emd_1d(&b, &c).unwrap();
        let ac = measures::emd_1d(&a, &c).unwrap();
        // Non-negativity, symmetry, identity, triangle inequality.
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(measures::emd_1d(&a, &a).unwrap().abs() < 1e-12);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn emd_general_matches_closed_form(
        va in proptest::collection::vec(0.0f64..=1.0, 1..16),
        vb in proptest::collection::vec(0.0f64..=1.0, 1..16),
    ) {
        let cfg = BinConfig::unit(6);
        let a = Histogram::from_values(cfg, va.iter().copied());
        let b = Histogram::from_values(cfg, vb.iter().copied());
        let closed = measures::emd_1d(&a, &b).unwrap();
        let general = measures::emd_general_1d(&a, &b).unwrap();
        prop_assert!((closed - general).abs() < 1e-6, "closed={closed}, general={general}");
    }

    #[test]
    fn exposure_shares_sum_to_one(ranks in proptest::collection::vec(1usize..100, 1..30)) {
        // Split arbitrary ranks into two pools; shares must sum to 1.
        let model = DiscountModel::NaturalLog;
        let mid = ranks.len() / 2;
        let g: f64 = measures::total_exposure(model, ranks[..mid].iter().copied());
        let rest: f64 = measures::total_exposure(model, ranks[mid..].iter().copied());
        let pool = g + rest;
        prop_assume!(pool > 0.0);
        let share_g = g / pool;
        let share_rest = rest / pool;
        prop_assert!((share_g + share_rest - 1.0).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&share_g));
    }

    #[test]
    fn tau_distance_bounds_and_symmetry(perm in proptest::sample::subsequence((0u32..12).collect::<Vec<_>>(), 2..12).prop_shuffle()) {
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        let d = measures::kendall::tau_distance(&sorted, &perm);
        prop_assert!((0.0..=1.0).contains(&d));
        let d_rev = measures::kendall::tau_distance(&perm, &sorted);
        prop_assert!((d - d_rev).abs() < 1e-12);
    }
}
