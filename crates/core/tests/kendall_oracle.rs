//! Property tests pitting `measures/kendall.rs`'s fast paths against
//! naïve O(n²) pairwise oracles.
//!
//! The production code earns its speed with two shortcuts — merge-sort
//! inversion counting behind [`tau_distance`] and the case-analysis
//! `pair_penalty` behind [`top_k_distance`] (including the case-4
//! within-one-list term) — while [`tau_b`] leans on `total_cmp` for its
//! tie handling. Each oracle below re-derives the same statistic straight
//! from its textbook definition, one explicit pair at a time, so any
//! disagreement is a bug in the shortcut, not in the spec.

use fbox_core::measures::kendall::{tau_b, tau_distance, top_k_distance};
use proptest::prelude::*;
use proptest::sample::subsequence;
use proptest::Just;
use std::collections::HashMap;

/// Oracle for [`tau_distance`]: count discordant pairs by brute force.
fn naive_tau_distance(a: &[u32], b: &[u32]) -> f64 {
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let pos_b: HashMap<u32, usize> = b.iter().enumerate().map(|(i, &x)| (x, i)).collect();
    let mut discordant = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            // a ranks a[i] ahead of a[j]; discordant iff b disagrees.
            if pos_b[&a[i]] > pos_b[&a[j]] {
                discordant += 1;
            }
        }
    }
    discordant as f64 / (n * (n - 1) / 2) as f64
}

/// Oracle for [`tau_b`]: the textbook (concordant − discordant) /
/// √((n₀ − n₁)(n₀ − n₂)) with every pair classified explicitly.
fn naive_tau_b(x: &[f64], y: &[f64]) -> Option<f64> {
    let n = x.len();
    if n < 2 {
        return None;
    }
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut tied_x, mut tied_y) = (0i64, 0i64);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i].total_cmp(&x[j]);
            let dy = y[i].total_cmp(&y[j]);
            if dx.is_eq() {
                tied_x += 1;
            }
            if dy.is_eq() {
                tied_y += 1;
            }
            if dx.is_eq() || dy.is_eq() {
                continue;
            }
            if dx == dy {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - tied_x) as f64) * ((n0 - tied_y) as f64)).sqrt();
    if denom <= 1e-9 {
        return None;
    }
    Some((concordant - discordant) as f64 / denom)
}

/// Oracle for [`top_k_distance`]: walk every unordered pair of the union
/// and apply Fagin–Kumar–Sivakumar's four cases verbatim.
fn naive_top_k_distance(a: &[u32], b: &[u32], p: f64) -> f64 {
    let pos_a: HashMap<u32, usize> = a.iter().enumerate().map(|(i, &x)| (x, i)).collect();
    let pos_b: HashMap<u32, usize> = b.iter().enumerate().map(|(i, &x)| (x, i)).collect();
    let mut universe: Vec<u32> = a.to_vec();
    universe.extend(b.iter().copied().filter(|x| !pos_a.contains_key(x)));

    let mut penalty = 0.0f64;
    for i in 0..universe.len() {
        for j in (i + 1)..universe.len() {
            let (x, y) = (universe[i], universe[j]);
            let in_a = (pos_a.get(&x), pos_a.get(&y));
            let in_b = (pos_b.get(&x), pos_b.get(&y));
            penalty += match (in_a, in_b) {
                // Case 1: both items in both lists — 1 iff the lists
                // order them differently.
                ((Some(xa), Some(ya)), (Some(xb), Some(yb))) => {
                    if (xa < ya) == (xb < yb) {
                        0.0
                    } else {
                        1.0
                    }
                }
                // Case 2: both in one list, exactly one in the other —
                // the one-item list implies its item is ranked first, so
                // disagreement iff the two-item list ranks it second.
                ((Some(xa), Some(ya)), (Some(_), None)) => f64::from(u8::from(ya < xa)),
                ((Some(xa), Some(ya)), (None, Some(_))) => f64::from(u8::from(xa < ya)),
                ((Some(_), None), (Some(xb), Some(yb))) => f64::from(u8::from(yb < xb)),
                ((None, Some(_)), (Some(xb), Some(yb))) => f64::from(u8::from(xb < yb)),
                // Case 3: one item exclusive to each list.
                ((Some(_), None), (None, Some(_))) | ((None, Some(_)), (Some(_), None)) => 1.0,
                // Case 4: both items exclusive to the same list.
                ((Some(_), Some(_)), (None, None)) | ((None, None), (Some(_), Some(_))) => p,
                _ => unreachable!("union items appear in at least one list"),
            };
        }
    }
    // Normalizer: the penalty of two fully disjoint lists.
    let max = (a.len() * b.len()) as f64
        + p * ((a.len() * a.len().saturating_sub(1)) / 2
            + (b.len() * b.len().saturating_sub(1)) / 2) as f64;
    if max <= 1e-9 {
        0.0
    } else {
        (penalty / max).clamp(0.0, 1.0)
    }
}

/// Strategy: two independently shuffled permutations of the same `0..n`
/// item set, for a sampled `n`.
fn permutation_pair(max_n: usize) -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (2usize..max_n).prop_flat_map(|n| {
        let items: Vec<u32> = (0..n as u32).collect();
        (Just(items.clone()).prop_shuffle(), Just(items).prop_shuffle())
    })
}

/// Strategy: two equal-length score vectors over a 5-value domain, so
/// duplicate keys (ties) occur in nearly every draw.
fn tied_score_pair() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (2usize..30).prop_flat_map(|n| {
        (proptest::collection::vec(0u32..5, n), proptest::collection::vec(0u32..5, n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn tau_distance_matches_pairwise_oracle(pair in permutation_pair(40)) {
        let (a, b) = pair;
        let fast = tau_distance(&a, &b);
        let naive = naive_tau_distance(&a, &b);
        prop_assert!((fast - naive).abs() < 1e-12, "fast {fast} vs oracle {naive}");
    }

    #[test]
    fn tau_b_matches_pairwise_oracle_under_heavy_ties(pair in tied_score_pair()) {
        // Scores drawn from a 5-value domain: duplicate keys everywhere,
        // so the tie-correction terms carry real weight.
        let (x, y) = pair;
        let xf: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
        let yf: Vec<f64> = y.iter().map(|&v| f64::from(v)).collect();
        match (tau_b(&xf, &yf), naive_tau_b(&xf, &yf)) {
            (Some(fast), Some(naive)) => {
                prop_assert!((fast - naive).abs() < 1e-12, "fast {fast} vs oracle {naive}");
                prop_assert!((-1.0..=1.0).contains(&fast));
            }
            (fast, naive) => prop_assert_eq!(fast, naive, "definedness must agree"),
        }
    }

    #[test]
    fn top_k_distance_matches_case_analysis_oracle(
        a in subsequence((0u32..25).collect::<Vec<u32>>(), 1..12).prop_shuffle(),
        b in subsequence((0u32..25).collect::<Vec<u32>>(), 1..12).prop_shuffle(),
        p_millis in 0u32..=1000,
    ) {
        // Overlapping draws from a small universe: every penalty case —
        // including the case-4 within-one-list term — occurs routinely.
        let p = f64::from(p_millis) / 1000.0;
        let fast = top_k_distance(&a, &b, p);
        let naive = naive_top_k_distance(&a, &b, p);
        prop_assert!((fast - naive).abs() < 1e-12, "fast {fast} vs oracle {naive} at p={p}");
    }
}
