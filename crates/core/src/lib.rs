//! # fbox-core — fairness quantification and comparison for online job platforms
//!
//! A faithful implementation of the framework of *“Fairness in Online
//! Jobs: A Case Study on TaskRabbit and Google”* (Amer-Yahia et al., EDBT
//! 2020): group unfairness over ranked job-search results and marketplace
//! worker rankings, with Fagin-style threshold algorithms answering top-k
//! quantification and breakdown-comparison questions.
//!
//! ## Concepts
//!
//! - A **[`Schema`](model::Schema)** declares protected attributes
//!   (gender, ethnicity, …) and a **[`GroupLabel`](model::GroupLabel)** is
//!   a conjunction of `attribute = value` predicates. Groups one
//!   attribute-flip apart are *comparable* and unfairness is always
//!   measured against them.
//! - A **[`Universe`](model::Universe)** registers the groups, queries,
//!   and locations of a study.
//! - **Observations** ([`observations`]) are what a crawl produces:
//!   per-user ranked lists (search engines) or ranked worker lists
//!   (marketplaces).
//! - **Measures** ([`measures`], [`unfairness`]) turn observations into
//!   `d⟨g,q,l⟩` values: Kendall-Tau/Jaccard list distances (Eq. 1), or
//!   EMD/exposure over worker rankings (Eq. 2, §3.3.2).
//! - The **[`UnfairnessCube`](cube::UnfairnessCube)** stores every
//!   `d⟨g,q,l⟩`; the three **index families** ([`index`]) pre-sort it per
//!   Table 5.
//! - **Algorithms** ([`algo`]) answer Problem 1 (top-k most/least unfair
//!   groups, queries, or locations — threshold algorithm with a naive
//!   baseline) and Problem 2 (breakdown comparisons).
//! - **[`FBox`](fbox::FBox)** bundles the whole pipeline.
//!
//! ## Quick example
//!
//! ```
//! use fbox_core::model::{Schema, Universe};
//! use fbox_core::observations::{MarketObservations, MarketRanking, RankedWorker};
//! use fbox_core::unfairness::MarketMeasure;
//! use fbox_core::algo::{RankOrder, Restriction};
//! use fbox_core::FBox;
//!
//! // A study over gender × ethnicity with one query at one location.
//! let mut universe = Universe::with_all_groups(Schema::gender_ethnicity());
//! let q = universe.add_query("Home Cleaning", Some("General Cleaning"));
//! let l = universe.add_location("San Francisco, CA", None);
//!
//! // A crawled ranking: alternating male/female White workers.
//! let workers = (1..=10)
//!     .map(|rank| RankedWorker {
//!         assignment: vec![
//!             fbox_core::model::ValueId((rank % 2) as u16), // gender
//!             fbox_core::model::ValueId(2),                 // White
//!         ],
//!         rank,
//!         score: None,
//!     })
//!     .collect();
//! let mut obs = MarketObservations::new();
//! obs.insert(q, l, MarketRanking::new(workers));
//!
//! let fbox = FBox::from_market(universe, &obs, MarketMeasure::exposure());
//! let most_unfair = fbox.top_k_groups(3, RankOrder::MostUnfair, &Restriction::none());
//! assert_eq!(most_unfair.len(), 3);
//! ```
//!
//! ## Conventions
//!
//! - Every unfairness value is in `[0, 1]`; higher = more unfair.
//! - Ranks are 1-based everywhere.
//! - Missing data is `None`, never a sentinel value; aggregations skip
//!   missing cells.
//! - Functions panic on *programming* errors (mismatched dimensions,
//!   malformed rankings) and return `Option` for *data* conditions (an
//!   empty group, an unobserved cell).

pub mod algo;
pub mod cube;
pub mod fbox;
pub mod index;
pub mod measures;
pub mod model;
pub mod observations;
pub mod paper_toy;
pub mod unfairness;

pub use cube::UnfairnessCube;
pub use fbox::FBox;
pub use index::{Dimension, IndexSet};
pub use model::{GroupId, GroupLabel, LocationId, QueryId, Schema, Universe};
pub use unfairness::{MarketMeasure, SearchMeasure};
