//! Raw observations collected from a platform, before any unfairness is
//! computed.
//!
//! The F-Box consumes exactly what the paper's crawls produced:
//!
//! - from a **search engine** (Google job search): for each `(query,
//!   location)`, one ranked result list per study participant, plus the
//!   participant's protected-attribute assignment (§3.2, Table 1);
//! - from a **marketplace** (TaskRabbit): for each `(query, location)`, one
//!   ranked list of workers with their protected-attribute assignments and
//!   optionally the platform's scores `f_q^l(w)` (§3.3, Tables 2–3).
//!
//! Attribute assignments are *full* assignments over the study
//! [`Schema`](crate::model::Schema): `assignment[a]` holds the individual's
//! value for attribute id `a`. Group membership for any [`GroupLabel`]
//! (including single-attribute groups like "Male") is decided by
//! [`GroupLabel::matches`].
//!
//! [`GroupLabel`]: crate::model::GroupLabel
//! [`GroupLabel::matches`]: crate::model::GroupLabel::matches

use crate::model::{LocationId, QueryId, ValueId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One study participant's observed result list for one `(query, location)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserList {
    /// The participant's full protected-attribute assignment.
    pub assignment: Vec<ValueId>,
    /// Result items (e.g. job-posting ids) in rank order, best first.
    pub results: Vec<u64>,
}

/// One ranked worker in a marketplace result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedWorker {
    /// The worker's full protected-attribute assignment.
    pub assignment: Vec<ValueId>,
    /// 1-based rank within the result set.
    pub rank: usize,
    /// The platform's score `f_q^l(w)`, when observable. `None` triggers
    /// the rank-derived relevance fallback (`1 − rank/N`, §3.3.1).
    pub score: Option<f64>,
}

/// Why a crawled result page failed validation and cannot become a
/// [`MarketRanking`]. Resilient ingestion quarantines such pages instead
/// of aborting the crawl (see `fbox-marketplace`'s crawl).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankingError {
    /// Two workers claim the same rank.
    DuplicateRank {
        /// The rank that appears more than once.
        rank: usize,
    },
    /// The sorted rank sequence skips a value (e.g. 1, 2, 4).
    GapInRanks {
        /// The rank that was expected at this position.
        expected: usize,
        /// The rank that was found instead.
        found: usize,
    },
}

impl std::fmt::Display for RankingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateRank { rank } => {
                write!(f, "duplicate rank {rank} in result page")
            }
            Self::GapInRanks { expected, found } => {
                write!(f, "gap in rank sequence: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for RankingError {}

/// The ranked worker list returned by a marketplace for one
/// `(query, location)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MarketRanking {
    workers: Vec<RankedWorker>,
}

impl MarketRanking {
    /// Builds a ranking, sorting by rank and validating that ranks are the
    /// contiguous sequence `1..=N`. Returns a typed [`RankingError`] on
    /// duplicate or gapped ranks so callers (the resilient crawl) can
    /// quarantine the page instead of crashing.
    pub fn try_new(mut workers: Vec<RankedWorker>) -> Result<Self, RankingError> {
        workers.sort_by_key(|w| w.rank);
        for (i, w) in workers.iter().enumerate() {
            let expected = i + 1;
            if w.rank != expected {
                return Err(if w.rank < expected {
                    // Sorted order: a rank below its position means it
                    // also appeared at an earlier position.
                    RankingError::DuplicateRank { rank: w.rank }
                } else {
                    RankingError::GapInRanks { expected, found: w.rank }
                });
            }
        }
        Ok(Self { workers })
    }

    /// Builds a ranking, sorting by rank and validating that ranks are the
    /// contiguous sequence `1..=N`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate or gapped ranks — use [`MarketRanking::try_new`]
    /// when malformed pages must be handled gracefully.
    pub fn new(workers: Vec<RankedWorker>) -> Self {
        Self::try_new(workers).expect("ranks must be the contiguous sequence 1..=N")
    }

    /// Consumes the ranking, returning its workers in rank order. Used by
    /// fault injection to perturb a page and re-validate it.
    #[must_use]
    pub fn into_workers(self) -> Vec<RankedWorker> {
        self.workers
    }

    /// The workers, sorted by rank.
    pub fn workers(&self) -> &[RankedWorker] {
        &self.workers
    }

    /// Result-set size `N`.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The relevance of the worker at `index` (0-based): the platform score
    /// if present, else the rank-derived `1 − rank/N`.
    pub fn relevance(&self, index: usize) -> f64 {
        let w = &self.workers[index];
        w.score.unwrap_or_else(|| crate::measures::relevance_from_rank(w.rank, self.len()))
    }
}

/// All search-engine observations of a study, keyed by `(query, location)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SearchObservations {
    samples: BTreeMap<(QueryId, LocationId), Vec<UserList>>,
}

impl SearchObservations {
    /// An empty observation set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a participant's list for `(q, l)`.
    pub fn push(&mut self, q: QueryId, l: LocationId, list: UserList) {
        self.samples.entry((q, l)).or_default().push(list);
    }

    /// The participant lists observed for `(q, l)`, if any.
    pub fn get(&self, q: QueryId, l: LocationId) -> Option<&[UserList]> {
        self.samples.get(&(q, l)).map(Vec::as_slice)
    }

    /// Number of `(q, l)` cells with data.
    pub fn n_cells(&self) -> usize {
        self.samples.len()
    }

    /// Iterates over all `(q, l)` cells.
    pub fn cells(&self) -> impl Iterator<Item = ((QueryId, LocationId), &[UserList])> {
        self.samples.iter().map(|(&k, v)| (k, v.as_slice()))
    }
}

/// All marketplace observations of a study, keyed by `(query, location)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MarketObservations {
    rankings: BTreeMap<(QueryId, LocationId), MarketRanking>,
}

impl MarketObservations {
    /// An empty observation set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the ranking crawled for `(q, l)`. **Last write wins**: any
    /// previous ranking for the same cell is silently replaced (a re-crawl
    /// supersedes the old page). Single-pass ingestion that expects each
    /// cell exactly once should use [`MarketObservations::insert_new`],
    /// which catches accidental double writes in debug builds.
    pub fn insert(&mut self, q: QueryId, l: LocationId, ranking: MarketRanking) {
        self.rankings.insert((q, l), ranking);
    }

    /// Records the ranking for a cell that single-pass ingestion expects
    /// to be unobserved, returning the displaced ranking if the cell had
    /// one. A `Some` return means the caller wrote the same cell twice —
    /// an ingestion bug (the crawl visits each grid cell exactly once) —
    /// and it is the *caller's* decision whether that is fatal: earlier
    /// versions `debug_assert`ed here, which made debug builds panic
    /// while release builds silently degraded to last-write-wins.
    #[must_use = "a displaced ranking means the cell was ingested twice; callers must decide whether that is fatal"]
    pub fn insert_new(
        &mut self,
        q: QueryId,
        l: LocationId,
        ranking: MarketRanking,
    ) -> Option<MarketRanking> {
        self.rankings.insert((q, l), ranking)
    }

    /// The ranking observed for `(q, l)`, if any.
    pub fn get(&self, q: QueryId, l: LocationId) -> Option<&MarketRanking> {
        self.rankings.get(&(q, l))
    }

    /// Number of `(q, l)` cells with data.
    pub fn n_cells(&self) -> usize {
        self.rankings.len()
    }

    /// Iterates over all `(q, l)` cells.
    pub fn cells(&self) -> impl Iterator<Item = ((QueryId, LocationId), &MarketRanking)> {
        self.rankings.iter().map(|(&k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(v: u16) -> ValueId {
        ValueId(v)
    }

    #[test]
    fn market_ranking_sorts_and_validates() {
        let r = MarketRanking::new(vec![
            RankedWorker { assignment: vec![vid(0)], rank: 2, score: None },
            RankedWorker { assignment: vec![vid(1)], rank: 1, score: Some(0.9) },
        ]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.workers()[0].rank, 1);
        assert_eq!(r.relevance(0), 0.9); // provided score wins
        assert_eq!(r.relevance(1), 0.0); // 1 − 2/2 fallback
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn market_ranking_rejects_gaps() {
        MarketRanking::new(vec![
            RankedWorker { assignment: vec![], rank: 1, score: None },
            RankedWorker { assignment: vec![], rank: 3, score: None },
        ]);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn market_ranking_rejects_duplicates() {
        MarketRanking::new(vec![
            RankedWorker { assignment: vec![], rank: 1, score: None },
            RankedWorker { assignment: vec![], rank: 1, score: None },
        ]);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        let dup = MarketRanking::try_new(vec![
            RankedWorker { assignment: vec![], rank: 1, score: None },
            RankedWorker { assignment: vec![], rank: 1, score: None },
        ]);
        assert_eq!(dup.unwrap_err(), RankingError::DuplicateRank { rank: 1 });

        let gap = MarketRanking::try_new(vec![
            RankedWorker { assignment: vec![], rank: 1, score: None },
            RankedWorker { assignment: vec![], rank: 3, score: None },
        ]);
        let gap = gap.unwrap_err();
        assert_eq!(gap, RankingError::GapInRanks { expected: 2, found: 3 });

        // Errors render for quarantine logs.
        assert!(gap.to_string().contains("gap"));
    }

    #[test]
    fn into_workers_round_trips() {
        let workers = vec![
            RankedWorker { assignment: vec![vid(0)], rank: 1, score: None },
            RankedWorker { assignment: vec![vid(1)], rank: 2, score: None },
        ];
        let r = MarketRanking::new(workers.clone());
        assert_eq!(r.into_workers(), workers);
    }

    #[test]
    fn insert_last_write_wins() {
        let q = QueryId(0);
        let l = LocationId(0);
        let mut m = MarketObservations::new();
        m.insert(q, l, MarketRanking::new(vec![]));
        m.insert(
            q,
            l,
            MarketRanking::new(vec![RankedWorker { assignment: vec![], rank: 1, score: None }]),
        );
        assert_eq!(m.get(q, l).unwrap().len(), 1, "re-crawl supersedes the old page");
    }

    #[test]
    fn insert_new_returns_the_displaced_ranking() {
        // Identical in debug and release: the first write displaces
        // nothing, the double write hands the old page back instead of
        // panicking (debug) or silently dropping it (release).
        let q = QueryId(0);
        let l = LocationId(0);
        let first =
            MarketRanking::new(vec![RankedWorker { assignment: vec![], rank: 1, score: None }]);
        let mut m = MarketObservations::new();
        assert_eq!(m.insert_new(q, l, first.clone()), None);
        assert_eq!(m.insert_new(q, l, MarketRanking::new(vec![])), Some(first));
        assert!(m.get(q, l).unwrap().is_empty(), "the new page replaced the old one");
    }

    #[test]
    fn observation_stores_roundtrip() {
        let q = QueryId(0);
        let l = LocationId(0);
        let mut s = SearchObservations::new();
        s.push(q, l, UserList { assignment: vec![vid(0)], results: vec![1, 2, 3] });
        s.push(q, l, UserList { assignment: vec![vid(1)], results: vec![3, 2, 1] });
        assert_eq!(s.get(q, l).unwrap().len(), 2);
        assert_eq!(s.get(q, LocationId(9)), None);
        assert_eq!(s.n_cells(), 1);

        let mut m = MarketObservations::new();
        m.insert(q, l, MarketRanking::new(vec![]));
        assert!(m.get(q, l).unwrap().is_empty());
        assert_eq!(m.n_cells(), 1);
    }
}
