//! No-Random-Access (NRA) top-k — the second classic algorithm of Fagin,
//! Lotem & Naor's "Optimal aggregation algorithms for middleware" (the
//! paper's reference \[10\]).
//!
//! Where the Threshold Algorithm completes every newly seen entity with
//! random accesses, NRA uses *only* sorted accesses and maintains, per
//! seen entity, a lower and an upper bound on its aggregate:
//!
//! - lower bound: seen values, with the *minimum possible* (0) substituted
//!   for unseen lists;
//! - upper bound: seen values, with each unseen list's *current cursor
//!   value* substituted (values below the cursor can't exceed it).
//!
//! The algorithm stops when k entities' lower bounds are no smaller than
//! every other entity's upper bound. NRA matters when random access is
//! expensive or unavailable (e.g. the inverted indices are streamed); the
//! trade-off is bookkeeping per seen entity.
//!
//! This implementation ranks by *descending* aggregate (most unfair). For
//! the least-unfair variant, walk the lists ascending and swap the bound
//! roles — [`nra_top_k`] handles both through [`RankOrder`].

use super::{topk::RankOrder, OrdF64, Restriction, TopKResult, TopKStats};
use crate::index::{Dimension, IndexSet};
use std::collections::HashMap;

/// Per-entity bookkeeping: which lists have reported it and the partial
/// sum of reported values.
struct Partial {
    sum: f64,
    seen: Vec<bool>,
    n_seen: usize,
}

/// NRA top-k over the pre-built indices: same contract as
/// [`top_k`](super::top_k) (complete cube required, ties by ascending
/// entity id), but never issues a random access.
///
/// # Panics
///
/// Panics if the index was built from an incomplete cube.
pub fn nra_top_k(
    indices: &IndexSet,
    dim: Dimension,
    k: usize,
    order: RankOrder,
    restrict: &Restriction,
) -> TopKResult {
    assert!(
        indices.is_complete(),
        "NRA requires a complete unfairness cube; use naive_top_k for incomplete data"
    );
    let _span = fbox_telemetry::span!("algo.nra");
    let mut stats = TopKStats::default();

    let (da, db) = dim.others();
    let ents_a = restrict.resolve(da, indices.dim_len(da));
    let ents_b = restrict.resolve(db, indices.dim_len(db));
    let mut pairs = Vec::with_capacity(ents_a.len() * ents_b.len());
    for &a in &ents_a {
        for &b in &ents_b {
            pairs.push((a, b));
        }
    }
    let candidates: Option<Vec<bool>> = restrict.subset(dim).map(|ids| {
        let mut mask = vec![false; indices.dim_len(dim)];
        for &id in ids {
            mask[id as usize] = true;
        }
        mask
    });
    let is_candidate = |e: u32| candidates.as_ref().is_none_or(|m| m[e as usize]);

    if k == 0 || pairs.is_empty() {
        stats.publish("nra");
        return TopKResult { entries: Vec::new(), stats };
    }

    // `sign` maps values into a space where bigger is always better.
    let sign = match order {
        RankOrder::MostUnfair => 1.0,
        RankOrder::LeastUnfair => -1.0,
    };
    let n_lists = pairs.len();
    let mut cursors = vec![0usize; n_lists];
    // Current cursor value per list, in sign space (bound for unseen
    // positions of that list).
    let mut frontier = vec![f64::INFINITY; n_lists];
    let mut partials: HashMap<u32, Partial> = HashMap::new();

    loop {
        stats.rounds += 1;
        let mut progressed = false;
        for (li, &pair) in pairs.iter().enumerate() {
            let list = indices.list_for(dim, pair);
            let accessed = match order {
                RankOrder::MostUnfair => list.sorted_desc(cursors[li]),
                RankOrder::LeastUnfair => list.sorted_asc(cursors[li]),
            };
            let Some((e, v)) = accessed else {
                frontier[li] = f64::NEG_INFINITY; // list exhausted
                                                  // No access happened: leave `sorted_accesses` alone so
                                                  // `cells_scanned == sorted + random` holds.
                continue;
            };
            stats.sorted_accesses += 1;
            cursors[li] += 1;
            stats.cells_scanned += 1;
            frontier[li] = sign * v;
            progressed = true;
            if !is_candidate(e) {
                continue;
            }
            let p = partials.entry(e).or_insert_with(|| Partial {
                sum: 0.0,
                seen: vec![false; n_lists],
                n_seen: 0,
            });
            if !p.seen[li] {
                p.seen[li] = true;
                p.n_seen += 1;
                p.sum += sign * v;
            }
        }

        // Bounds per seen entity (in sign space, averaged at the end).
        // Upper bound: seen sum + frontier of each unseen list.
        // Lower bound: seen sum + worst possible for unseen lists. In sign
        // space values lie in [-1, 1] (unfairness is in [0, 1]); for
        // MostUnfair the floor is 0, for LeastUnfair it is -1 (i.e. the
        // true value 1).
        let floor = match order {
            RankOrder::MostUnfair => 0.0,
            RankOrder::LeastUnfair => -1.0,
        };
        // The k best lower bounds among seen entities…
        let mut lowers: Vec<(u32, f64)> = partials
            .iter()
            .map(|(&e, p)| {
                let missing = (n_lists - p.n_seen) as f64;
                (e, p.sum + missing * floor)
            })
            .collect();
        lowers.sort_by(|a, b| OrdF64(b.1).cmp(&OrdF64(a.1)).then(a.0.cmp(&b.0)));
        let have_k = lowers.len() >= k;

        if have_k {
            let kth_lower = lowers[k - 1].1;
            let topk_ids: Vec<u32> = lowers[..k].iter().map(|&(e, _)| e).collect();
            // …must dominate every other entity's upper bound, including
            // entirely unseen entities (whose upper bound is the sum of
            // all frontiers).
            let mut all_dominated = true;
            for (&e, p) in &partials {
                if topk_ids.contains(&e) {
                    continue;
                }
                let mut upper = p.sum;
                for (li, &f) in frontier.iter().enumerate() {
                    if !p.seen[li] {
                        upper += if f.is_finite() { f } else { floor };
                    }
                }
                if upper > kth_lower {
                    all_dominated = false;
                    break;
                }
            }
            if all_dominated {
                let unseen_upper: f64 =
                    frontier.iter().map(|&f| if f.is_finite() { f } else { floor }).sum();
                // Unseen entities can't exist once every list has reported
                // everything, but mid-run they bound at the frontier sum.
                let any_unseen_possible =
                    partials.len() < candidate_count(indices, dim, &candidates);
                if !any_unseen_possible || unseen_upper <= kth_lower {
                    // Finished: the top-k set is fixed. NRA's bounds fix
                    // the *set*; the exact aggregates come from the now-
                    // complete partial sums (entities in the set may still
                    // have unseen lists only if their lower bound already
                    // dominates — finish them by draining their rows).
                    let mut entries: Vec<(u32, f64)> = topk_ids
                        .iter()
                        .map(|&e| {
                            let p = &partials[&e];
                            let exact = if p.n_seen == n_lists {
                                p.sum
                            } else {
                                // Drain: NRA semantics return bounds; for
                                // a friendlier API we finish the entity
                                // with sorted-order-independent reads of
                                // its remaining lists (accounted as sorted
                                // accesses — a final scan).
                                let mut sum = p.sum;
                                for (li, &pair) in pairs.iter().enumerate() {
                                    if !p.seen[li] {
                                        let v = indices
                                            .list_for(dim, pair)
                                            .random_access(e)
                                            .expect("complete index");
                                        stats.random_accesses += 1;
                                        stats.cells_scanned += 1;
                                        sum += sign * v;
                                    }
                                }
                                sum
                            };
                            (e, sign * exact / n_lists as f64)
                        })
                        .collect();
                    entries.sort_by(|a, b| {
                        OrdF64(sign * b.1).cmp(&OrdF64(sign * a.1)).then(a.0.cmp(&b.0))
                    });
                    stats.publish("nra");
                    return TopKResult { entries, stats };
                }
            }
        }

        if !progressed {
            // Lists exhausted: everything is fully seen; emit directly.
            let mut entries: Vec<(u32, f64)> = partials
                .iter()
                .map(|(&e, p)| {
                    debug_assert_eq!(p.n_seen, n_lists);
                    (e, sign * p.sum / n_lists as f64)
                })
                .collect();
            entries.sort_by(|a, b| OrdF64(sign * b.1).cmp(&OrdF64(sign * a.1)).then(a.0.cmp(&b.0)));
            entries.truncate(k);
            stats.publish("nra");
            return TopKResult { entries, stats };
        }
    }
}

fn candidate_count(indices: &IndexSet, dim: Dimension, mask: &Option<Vec<bool>>) -> usize {
    match mask {
        Some(m) => m.iter().filter(|&&b| b).count(),
        None => indices.dim_len(dim),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::naive_top_k;
    use crate::cube::UnfairnessCube;
    use crate::model::{GroupId, LocationId, QueryId};

    fn cube(ng: usize) -> UnfairnessCube {
        let mut c = UnfairnessCube::with_dims(ng, 3, 3);
        let mut state = 0x9E37_79B9u64;
        for g in 0..ng as u32 {
            for q in 0..3u32 {
                for l in 0..3u32 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let v = (state >> 11) as f64 / (1u64 << 53) as f64;
                    c.set(GroupId(g), QueryId(q), LocationId(l), v);
                }
            }
        }
        c
    }

    #[test]
    fn nra_matches_naive_both_orders() {
        let c = cube(40);
        let idx = crate::index::IndexSet::build(&c);
        for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
            for k in [1usize, 5, 40] {
                let nra = nra_top_k(&idx, Dimension::Group, k, order, &Restriction::none());
                let nv = naive_top_k(&c, Dimension::Group, k, order, &Restriction::none());
                assert_eq!(nra.entries.len(), nv.entries.len(), "{order:?} k={k}");
                for (a, b) in nra.entries.iter().zip(&nv.entries) {
                    assert!((a.1 - b.1).abs() < 1e-9, "{order:?} k={k}: {a:?} vs {b:?}");
                }
            }
        }
    }

    /// Regression: same counter bug as TA — a sorted access past the end
    /// of an exhausted list must not count. NRA makes no random accesses,
    /// so after a run to exhaustion (k > dim_len) `sorted_accesses` must
    /// equal exactly `cells_scanned`: lists × entities.
    #[test]
    fn exhausted_lists_do_not_inflate_access_counters() {
        let c = cube(4);
        let idx = crate::index::IndexSet::build(&c);
        let r = nra_top_k(&idx, Dimension::Group, 10, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(r.entries.len(), 4);
        // 9 (q, l) lists × 4 groups, each cell read exactly once.
        assert_eq!(r.stats.sorted_accesses, 9 * 4);
        assert_eq!(r.stats.random_accesses, 0);
        assert_eq!(r.stats.cells_scanned, r.stats.sorted_accesses + r.stats.random_accesses);
    }

    #[test]
    fn nra_works_on_other_dimensions() {
        let c = cube(10);
        let idx = crate::index::IndexSet::build(&c);
        for dim in [Dimension::Query, Dimension::Location] {
            let nra = nra_top_k(&idx, dim, 2, RankOrder::MostUnfair, &Restriction::none());
            let nv = naive_top_k(&c, dim, 2, RankOrder::MostUnfair, &Restriction::none());
            let nra_vals: Vec<f64> = nra.entries.iter().map(|e| e.1).collect();
            let nv_vals: Vec<f64> = nv.entries.iter().map(|e| e.1).collect();
            for (a, b) in nra_vals.iter().zip(&nv_vals) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn nra_respects_restrictions() {
        let c = cube(20);
        let idx = crate::index::IndexSet::build(&c);
        let restrict =
            Restriction { groups: Some(vec![2, 5, 9]), queries: Some(vec![0, 2]), locations: None };
        let nra = nra_top_k(&idx, Dimension::Group, 2, RankOrder::MostUnfair, &restrict);
        let nv = naive_top_k(&c, Dimension::Group, 2, RankOrder::MostUnfair, &restrict);
        assert_eq!(nra.entries.len(), 2);
        for (a, b) in nra.entries.iter().zip(&nv.entries) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn nra_prefers_sorted_accesses() {
        // On a skewed cube NRA should finish without touching most rows;
        // random accesses only appear in the final top-k completion.
        let mut c = UnfairnessCube::with_dims(500, 2, 2);
        for g in 0..500u32 {
            let v = if g == 7 { 0.95 } else { 0.2 + (g as f64 % 83.0) / 1000.0 };
            for q in 0..2u32 {
                for l in 0..2u32 {
                    c.set(GroupId(g), QueryId(q), LocationId(l), v);
                }
            }
        }
        let idx = crate::index::IndexSet::build(&c);
        let r = nra_top_k(&idx, Dimension::Group, 1, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(r.entries[0].0, 7);
        assert!(
            r.stats.random_accesses <= 4,
            "only the winner may be completed by direct reads, got {}",
            r.stats.random_accesses
        );
        assert!(r.stats.sorted_accesses < 500, "early termination expected");
    }

    #[test]
    fn nra_k_zero_and_empty() {
        let c = cube(5);
        let idx = crate::index::IndexSet::build(&c);
        let r = nra_top_k(&idx, Dimension::Group, 0, RankOrder::MostUnfair, &Restriction::none());
        assert!(r.entries.is_empty());
    }

    #[test]
    #[should_panic(expected = "complete")]
    fn nra_rejects_incomplete() {
        let mut c = UnfairnessCube::with_dims(2, 1, 1);
        c.set(GroupId(0), QueryId(0), LocationId(0), 0.5);
        let idx = crate::index::IndexSet::build(&c);
        nra_top_k(&idx, Dimension::Group, 1, RankOrder::MostUnfair, &Restriction::none());
    }
}
