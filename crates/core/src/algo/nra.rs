//! No-Random-Access (NRA) top-k — the second classic algorithm of Fagin,
//! Lotem & Naor's "Optimal aggregation algorithms for middleware" (the
//! paper's reference \[10\]).
//!
//! Where the Threshold Algorithm completes every newly seen entity with
//! random accesses, NRA uses *only* sorted accesses and maintains, per
//! seen entity, a lower and an upper bound on its aggregate:
//!
//! - lower bound: seen values, with the *minimum possible* (0) substituted
//!   for unseen lists;
//! - upper bound: seen values, with each unseen list's *current cursor
//!   value* substituted (values below the cursor can't exceed it).
//!
//! The algorithm stops when k entities' lower bounds are no smaller than
//! every other entity's upper bound. NRA matters when random access is
//! expensive or unavailable (e.g. the inverted indices are streamed); the
//! trade-off is bookkeeping per seen entity.
//!
//! This implementation ranks by *descending* aggregate (most unfair). For
//! the least-unfair variant, walk the lists ascending and swap the bound
//! roles — [`nra_top_k`] handles both through [`RankOrder`].

use super::{topk::RankOrder, OrdF64, Restriction, TopKResult, TopKStats};
use crate::index::{Dimension, IndexSet};
use std::collections::BTreeMap;

/// Per-entity bookkeeping: which lists have reported it and the partial
/// sum of reported values.
struct Partial {
    sum: f64,
    seen: Vec<bool>,
    n_seen: usize,
}

/// NRA top-k over the pre-built indices: same contract as
/// [`top_k`](super::top_k) (ties by ascending entity id), but the search
/// phase issues only sorted accesses (direct reads appear only in the
/// final completion of the winning entities).
///
/// On an *incomplete* cube (degraded crawls) the aggregate is the average
/// over *present* cells, matching [`naive_top_k`](super::naive_top_k);
/// see [`nra_top_k_partial`] for the adapted bounds.
pub fn nra_top_k(
    indices: &IndexSet,
    dim: Dimension,
    k: usize,
    order: RankOrder,
    restrict: &Restriction,
) -> TopKResult {
    if !indices.is_complete() {
        return nra_top_k_partial(indices, dim, k, order, restrict);
    }
    let _span = fbox_telemetry::span!("algo.nra");
    let _trace = fbox_trace::span("algo.nra");
    let mut stats = TopKStats::default();

    let (da, db) = dim.others();
    let ents_a = restrict.resolve(da, indices.dim_len(da));
    let ents_b = restrict.resolve(db, indices.dim_len(db));
    let mut pairs = Vec::with_capacity(ents_a.len() * ents_b.len());
    for &a in &ents_a {
        for &b in &ents_b {
            pairs.push((a, b));
        }
    }
    let candidates: Option<Vec<bool>> = restrict.subset(dim).map(|ids| {
        let mut mask = vec![false; indices.dim_len(dim)];
        for &id in ids {
            mask[id as usize] = true;
        }
        mask
    });
    let is_candidate = |e: u32| candidates.as_ref().is_none_or(|m| m[e as usize]);

    if k == 0 || pairs.is_empty() {
        stats.publish("nra");
        return TopKResult { entries: Vec::new(), stats };
    }

    // `sign` maps values into a space where bigger is always better.
    let sign = match order {
        RankOrder::MostUnfair => 1.0,
        RankOrder::LeastUnfair => -1.0,
    };
    let n_lists = pairs.len();
    let mut cursors = vec![0usize; n_lists];
    // Current cursor value per list, in sign space (bound for unseen
    // positions of that list).
    let mut frontier = vec![f64::INFINITY; n_lists];
    let mut partials: BTreeMap<u32, Partial> = BTreeMap::new();

    loop {
        stats.rounds += 1;
        let mut progressed = false;
        for (li, &pair) in pairs.iter().enumerate() {
            let list = indices.list_for(dim, pair);
            let accessed = match order {
                RankOrder::MostUnfair => list.sorted_desc(cursors[li]),
                RankOrder::LeastUnfair => list.sorted_asc(cursors[li]),
            };
            let Some((e, v)) = accessed else {
                frontier[li] = f64::NEG_INFINITY; // list exhausted
                                                  // No access happened: leave `sorted_accesses` alone so
                                                  // `cells_scanned == sorted + random` holds.
                continue;
            };
            stats.sorted_accesses += 1;
            cursors[li] += 1;
            stats.cells_scanned += 1;
            frontier[li] = sign * v;
            progressed = true;
            if !is_candidate(e) {
                continue;
            }
            let p = partials.entry(e).or_insert_with(|| Partial {
                sum: 0.0,
                seen: vec![false; n_lists],
                n_seen: 0,
            });
            if !p.seen[li] {
                p.seen[li] = true;
                p.n_seen += 1;
                p.sum += sign * v;
            }
        }

        // Bounds per seen entity (in sign space, averaged at the end).
        // Upper bound: seen sum + frontier of each unseen list.
        // Lower bound: seen sum + worst possible for unseen lists. In sign
        // space values lie in [-1, 1] (unfairness is in [0, 1]); for
        // MostUnfair the floor is 0, for LeastUnfair it is -1 (i.e. the
        // true value 1).
        let floor = match order {
            RankOrder::MostUnfair => 0.0,
            RankOrder::LeastUnfair => -1.0,
        };
        // The k best lower bounds among seen entities…
        let mut lowers: Vec<(u32, f64)> = partials
            .iter()
            .map(|(&e, p)| {
                let missing = (n_lists - p.n_seen) as f64;
                (e, p.sum + missing * floor)
            })
            .collect();
        lowers.sort_by(|a, b| OrdF64(b.1).cmp(&OrdF64(a.1)).then(a.0.cmp(&b.0)));
        let have_k = lowers.len() >= k;

        if have_k {
            let kth_lower = lowers[k - 1].1;
            fbox_trace::instant_args("nra.threshold", |a| {
                a.u64("round", stats.rounds);
                a.f64("kth_lower", sign * kth_lower);
            });
            let topk_ids: Vec<u32> = lowers[..k].iter().map(|&(e, _)| e).collect();
            // …must dominate every other entity's upper bound, including
            // entirely unseen entities (whose upper bound is the sum of
            // all frontiers).
            let mut all_dominated = true;
            for (&e, p) in &partials {
                if topk_ids.contains(&e) {
                    continue;
                }
                let mut upper = p.sum;
                for (li, &f) in frontier.iter().enumerate() {
                    if !p.seen[li] {
                        upper += if f.is_finite() { f } else { floor };
                    }
                }
                if upper > kth_lower {
                    all_dominated = false;
                    break;
                }
            }
            if all_dominated {
                let unseen_upper: f64 =
                    frontier.iter().map(|&f| if f.is_finite() { f } else { floor }).sum();
                // Unseen entities can't exist once every list has reported
                // everything, but mid-run they bound at the frontier sum.
                let any_unseen_possible =
                    partials.len() < candidate_count(indices, dim, &candidates);
                if !any_unseen_possible || unseen_upper <= kth_lower {
                    // Finished: the top-k set is fixed. NRA's bounds fix
                    // the *set*; the exact aggregates come from the now-
                    // complete partial sums (entities in the set may still
                    // have unseen lists only if their lower bound already
                    // dominates — finish them by draining their rows).
                    let mut entries: Vec<(u32, f64)> = topk_ids
                        .iter()
                        .map(|&e| {
                            let p = &partials[&e];
                            let exact = if p.n_seen == n_lists {
                                p.sum
                            } else {
                                // Drain: NRA semantics return bounds; for
                                // a friendlier API we finish the entity
                                // with sorted-order-independent reads of
                                // its remaining lists (accounted as sorted
                                // accesses — a final scan).
                                let mut sum = p.sum;
                                for (li, &pair) in pairs.iter().enumerate() {
                                    if !p.seen[li] {
                                        let v = indices
                                            .list_for(dim, pair)
                                            .random_access(e)
                                            .expect("complete index");
                                        stats.random_accesses += 1;
                                        stats.cells_scanned += 1;
                                        sum += sign * v;
                                    }
                                }
                                sum
                            };
                            (e, sign * exact / n_lists as f64)
                        })
                        .collect();
                    entries.sort_by(|a, b| {
                        OrdF64(sign * b.1).cmp(&OrdF64(sign * a.1)).then(a.0.cmp(&b.0))
                    });
                    fbox_trace::instant_args("nra.early_termination", |a| {
                        a.u64("round", stats.rounds);
                    });
                    stats.publish("nra");
                    return TopKResult { entries, stats };
                }
            }
        }

        if !progressed {
            // Lists exhausted: everything is fully seen; emit directly.
            let mut entries: Vec<(u32, f64)> = partials
                .iter()
                .map(|(&e, p)| {
                    debug_assert_eq!(p.n_seen, n_lists);
                    (e, sign * p.sum / n_lists as f64)
                })
                .collect();
            entries.sort_by(|a, b| OrdF64(sign * b.1).cmp(&OrdF64(sign * a.1)).then(a.0.cmp(&b.0)));
            entries.truncate(k);
            stats.publish("nra");
            return TopKResult { entries, stats };
        }
    }
}

/// NRA over an incomplete cube. An entity's aggregate is the average over
/// its *present* cells, so entities no longer share a common divisor and
/// all bounds live in **average** space:
///
/// - an exhausted list that never reported an entity proves the entity has
///   *no cell* there (sorted access walks whole lists), so it drops out of
///   that entity's bound entirely;
/// - lower bound: the subset average is monotone as floor-valued cells are
///   added, so the minimum is either "absent from every unresolved list"
///   (`s/n`) or "present everywhere at the floor"
///   (`(s + |R|·floor) / (n + |R|)`), whichever is smaller;
/// - upper bound: water-fill — include unresolved lists in descending
///   frontier order while the frontier exceeds the running average (adding
///   a value raises an average exactly when the value is above it);
/// - an entirely unseen entity's upper bound is the maximum frontier over
///   non-exhausted lists (a subset average never exceeds the subset's
///   largest possible element); once every list exhausts, unseen entities
///   have no cells at all and are omitted — the naive scan's rule.
fn nra_top_k_partial(
    indices: &IndexSet,
    dim: Dimension,
    k: usize,
    order: RankOrder,
    restrict: &Restriction,
) -> TopKResult {
    let _span = fbox_telemetry::span!("algo.nra");
    let _trace = fbox_trace::span("algo.nra");
    let mut stats = TopKStats::default();

    let (da, db) = dim.others();
    let ents_a = restrict.resolve(da, indices.dim_len(da));
    let ents_b = restrict.resolve(db, indices.dim_len(db));
    let mut pairs = Vec::with_capacity(ents_a.len() * ents_b.len());
    for &a in &ents_a {
        for &b in &ents_b {
            pairs.push((a, b));
        }
    }
    let candidates: Option<Vec<bool>> = restrict.subset(dim).map(|ids| {
        let mut mask = vec![false; indices.dim_len(dim)];
        for &id in ids {
            mask[id as usize] = true;
        }
        mask
    });
    let is_candidate = |e: u32| candidates.as_ref().is_none_or(|m| m[e as usize]);

    if k == 0 || pairs.is_empty() {
        stats.publish("nra");
        return TopKResult { entries: Vec::new(), stats };
    }

    let sign = match order {
        RankOrder::MostUnfair => 1.0,
        RankOrder::LeastUnfair => -1.0,
    };
    // Worst possible sign-space value of a present cell (unfairness lies
    // in [0, 1]).
    let floor = match order {
        RankOrder::MostUnfair => 0.0,
        RankOrder::LeastUnfair => -1.0,
    };
    let n_lists = pairs.len();
    let mut cursors = vec![0usize; n_lists];
    let mut frontier = vec![f64::INFINITY; n_lists];
    let mut exhausted = vec![false; n_lists];
    let mut partials: BTreeMap<u32, Partial> = BTreeMap::new();

    // The best subset average `e` could still reach, given the lists that
    // might yet contain it.
    let upper_bound = |p: &Partial, frontier: &[f64], exhausted: &[bool]| -> f64 {
        let mut unresolved: Vec<f64> = (0..n_lists)
            .filter(|&li| !p.seen[li] && !exhausted[li])
            .map(|li| frontier[li])
            .collect();
        unresolved.sort_by_key(|&f| std::cmp::Reverse(OrdF64(f)));
        let mut avg = p.sum / p.n_seen as f64;
        let mut n = p.n_seen as f64;
        for f in unresolved {
            if f > avg {
                avg = (avg * n + f) / (n + 1.0);
                n += 1.0;
            } else {
                break;
            }
        }
        avg
    };
    let lower_bound = |p: &Partial, exhausted: &[bool]| -> f64 {
        let unresolved = (0..n_lists).filter(|&li| !p.seen[li] && !exhausted[li]).count();
        let base = p.sum / p.n_seen as f64;
        let all_floor = (p.sum + unresolved as f64 * floor) / (p.n_seen + unresolved) as f64;
        base.min(all_floor)
    };

    loop {
        stats.rounds += 1;
        let mut progressed = false;
        for (li, &pair) in pairs.iter().enumerate() {
            if exhausted[li] {
                continue;
            }
            let list = indices.list_for(dim, pair);
            let accessed = match order {
                RankOrder::MostUnfair => list.sorted_desc(cursors[li]),
                RankOrder::LeastUnfair => list.sorted_asc(cursors[li]),
            };
            let Some((e, v)) = accessed else {
                exhausted[li] = true;
                frontier[li] = f64::NEG_INFINITY;
                continue;
            };
            stats.sorted_accesses += 1;
            cursors[li] += 1;
            stats.cells_scanned += 1;
            frontier[li] = sign * v;
            progressed = true;
            if !is_candidate(e) {
                continue;
            }
            let p = partials.entry(e).or_insert_with(|| Partial {
                sum: 0.0,
                seen: vec![false; n_lists],
                n_seen: 0,
            });
            if !p.seen[li] {
                p.seen[li] = true;
                p.n_seen += 1;
                p.sum += sign * v;
            }
        }

        let mut lowers: Vec<(u32, f64)> =
            partials.iter().map(|(&e, p)| (e, lower_bound(p, &exhausted))).collect();
        lowers.sort_by(|a, b| OrdF64(b.1).cmp(&OrdF64(a.1)).then(a.0.cmp(&b.0)));

        if lowers.len() >= k {
            let kth_lower = lowers[k - 1].1;
            fbox_trace::instant_args("nra.threshold", |a| {
                a.u64("round", stats.rounds);
                a.f64("kth_lower", sign * kth_lower);
            });
            let topk_ids: Vec<u32> = lowers[..k].iter().map(|&(e, _)| e).collect();
            let mut all_dominated = true;
            for (&e, p) in &partials {
                if topk_ids.contains(&e) {
                    continue;
                }
                if upper_bound(p, &frontier, &exhausted) > kth_lower {
                    all_dominated = false;
                    break;
                }
            }
            if all_dominated {
                let unseen_upper = frontier
                    .iter()
                    .filter(|f| f.is_finite())
                    .fold(f64::NEG_INFINITY, |m, &f| m.max(f));
                let any_unseen_possible = partials.len()
                    < candidate_count(indices, dim, &candidates)
                    && !exhausted.iter().all(|&x| x);
                if !any_unseen_possible || unseen_upper <= kth_lower {
                    // The set is fixed; finish each winner with direct
                    // reads of the lists that might still hold it.
                    let mut entries: Vec<(u32, f64)> = topk_ids
                        .iter()
                        .map(|&e| {
                            let p = &partials[&e];
                            let mut sum = p.sum;
                            let mut present = p.n_seen;
                            for (li, &pair) in pairs.iter().enumerate() {
                                if p.seen[li] || exhausted[li] {
                                    continue;
                                }
                                stats.random_accesses += 1;
                                stats.cells_scanned += 1;
                                if let Some(v) = indices.list_for(dim, pair).random_access(e) {
                                    sum += sign * v;
                                    present += 1;
                                }
                            }
                            (e, sign * sum / present as f64)
                        })
                        .collect();
                    entries.sort_by(|a, b| {
                        OrdF64(sign * b.1).cmp(&OrdF64(sign * a.1)).then(a.0.cmp(&b.0))
                    });
                    fbox_trace::instant_args("nra.early_termination", |a| {
                        a.u64("round", stats.rounds);
                    });
                    stats.publish("nra");
                    return TopKResult { entries, stats };
                }
            }
        }

        if !progressed {
            // Every list exhausted: each seen entity's present cells have
            // all been reported.
            let mut entries: Vec<(u32, f64)> =
                partials.iter().map(|(&e, p)| (e, sign * p.sum / p.n_seen as f64)).collect();
            entries.sort_by(|a, b| OrdF64(sign * b.1).cmp(&OrdF64(sign * a.1)).then(a.0.cmp(&b.0)));
            entries.truncate(k);
            stats.publish("nra");
            return TopKResult { entries, stats };
        }
    }
}

fn candidate_count(indices: &IndexSet, dim: Dimension, mask: &Option<Vec<bool>>) -> usize {
    match mask {
        Some(m) => m.iter().filter(|&&b| b).count(),
        None => indices.dim_len(dim),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::naive_top_k;
    use crate::cube::UnfairnessCube;
    use crate::model::{GroupId, LocationId, QueryId};

    fn cube(ng: usize) -> UnfairnessCube {
        let mut c = UnfairnessCube::with_dims(ng, 3, 3);
        let mut state = 0x9E37_79B9u64;
        for g in 0..ng as u32 {
            for q in 0..3u32 {
                for l in 0..3u32 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let v = (state >> 11) as f64 / (1u64 << 53) as f64;
                    c.set(GroupId(g), QueryId(q), LocationId(l), v);
                }
            }
        }
        c
    }

    #[test]
    fn nra_matches_naive_both_orders() {
        let c = cube(40);
        let idx = crate::index::IndexSet::build(&c);
        for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
            for k in [1usize, 5, 40] {
                let nra = nra_top_k(&idx, Dimension::Group, k, order, &Restriction::none());
                let nv = naive_top_k(&c, Dimension::Group, k, order, &Restriction::none());
                assert_eq!(nra.entries.len(), nv.entries.len(), "{order:?} k={k}");
                for (a, b) in nra.entries.iter().zip(&nv.entries) {
                    assert!((a.1 - b.1).abs() < 1e-9, "{order:?} k={k}: {a:?} vs {b:?}");
                }
            }
        }
    }

    /// Regression: same counter bug as TA — a sorted access past the end
    /// of an exhausted list must not count. NRA makes no random accesses,
    /// so after a run to exhaustion (k > dim_len) `sorted_accesses` must
    /// equal exactly `cells_scanned`: lists × entities.
    #[test]
    fn exhausted_lists_do_not_inflate_access_counters() {
        let c = cube(4);
        let idx = crate::index::IndexSet::build(&c);
        let r = nra_top_k(&idx, Dimension::Group, 10, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(r.entries.len(), 4);
        // 9 (q, l) lists × 4 groups, each cell read exactly once.
        assert_eq!(r.stats.sorted_accesses, 9 * 4);
        assert_eq!(r.stats.random_accesses, 0);
        assert_eq!(r.stats.cells_scanned, r.stats.sorted_accesses + r.stats.random_accesses);
    }

    #[test]
    fn nra_works_on_other_dimensions() {
        let c = cube(10);
        let idx = crate::index::IndexSet::build(&c);
        for dim in [Dimension::Query, Dimension::Location] {
            let nra = nra_top_k(&idx, dim, 2, RankOrder::MostUnfair, &Restriction::none());
            let nv = naive_top_k(&c, dim, 2, RankOrder::MostUnfair, &Restriction::none());
            let nra_vals: Vec<f64> = nra.entries.iter().map(|e| e.1).collect();
            let nv_vals: Vec<f64> = nv.entries.iter().map(|e| e.1).collect();
            for (a, b) in nra_vals.iter().zip(&nv_vals) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn nra_respects_restrictions() {
        let c = cube(20);
        let idx = crate::index::IndexSet::build(&c);
        let restrict =
            Restriction { groups: Some(vec![2, 5, 9]), queries: Some(vec![0, 2]), locations: None };
        let nra = nra_top_k(&idx, Dimension::Group, 2, RankOrder::MostUnfair, &restrict);
        let nv = naive_top_k(&c, Dimension::Group, 2, RankOrder::MostUnfair, &restrict);
        assert_eq!(nra.entries.len(), 2);
        for (a, b) in nra.entries.iter().zip(&nv.entries) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn nra_prefers_sorted_accesses() {
        // On a skewed cube NRA should finish without touching most rows;
        // random accesses only appear in the final top-k completion.
        let mut c = UnfairnessCube::with_dims(500, 2, 2);
        for g in 0..500u32 {
            let v = if g == 7 { 0.95 } else { 0.2 + (g as f64 % 83.0) / 1000.0 };
            for q in 0..2u32 {
                for l in 0..2u32 {
                    c.set(GroupId(g), QueryId(q), LocationId(l), v);
                }
            }
        }
        let idx = crate::index::IndexSet::build(&c);
        let r = nra_top_k(&idx, Dimension::Group, 1, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(r.entries[0].0, 7);
        assert!(
            r.stats.random_accesses <= 4,
            "only the winner may be completed by direct reads, got {}",
            r.stats.random_accesses
        );
        assert!(r.stats.sorted_accesses < 500, "early termination expected");
    }

    #[test]
    fn nra_k_zero_and_empty() {
        let c = cube(5);
        let idx = crate::index::IndexSet::build(&c);
        let r = nra_top_k(&idx, Dimension::Group, 0, RankOrder::MostUnfair, &Restriction::none());
        assert!(r.entries.is_empty());
    }

    #[test]
    fn nra_partial_matches_naive() {
        // Knock out a pseudo-random ~20% of cells, including one group's
        // entire row (it must be omitted, not returned as 0).
        let mut c = cube(30);
        let mut state = 0xD1CE_5EEDu64;
        for g in 0..30u32 {
            for q in 0..3u32 {
                for l in 0..3u32 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    if g == 11 || state.is_multiple_of(5) {
                        c.set_opt(GroupId(g), QueryId(q), LocationId(l), None);
                    }
                }
            }
        }
        let idx = crate::index::IndexSet::build(&c);
        assert!(!idx.is_complete());
        for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
            for k in [1usize, 5, 30] {
                let nra = nra_top_k(&idx, Dimension::Group, k, order, &Restriction::none());
                let nv = naive_top_k(&c, Dimension::Group, k, order, &Restriction::none());
                assert_eq!(nra.entries.len(), nv.entries.len(), "{order:?} k={k}");
                assert!(nra.entries.iter().all(|&(e, _)| e != 11), "missing row omitted");
                for (a, b) in nra.entries.iter().zip(&nv.entries) {
                    assert!((a.1 - b.1).abs() < 1e-9, "{order:?} k={k}: {a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn nra_partial_handles_fully_missing_list() {
        // Query 1 never returns: two of the nine lists are empty and must
        // exhaust immediately without wedging the bound arithmetic.
        let mut c = cube(12);
        for g in 0..12u32 {
            for l in 0..3u32 {
                c.set_opt(GroupId(g), QueryId(1), LocationId(l), None);
            }
        }
        let idx = crate::index::IndexSet::build(&c);
        let nra =
            nra_top_k(&idx, Dimension::Group, 12, RankOrder::MostUnfair, &Restriction::none());
        let nv = naive_top_k(&c, Dimension::Group, 12, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(nra.entries.len(), 12);
        for (a, b) in nra.entries.iter().zip(&nv.entries) {
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }
}
