//! Full-scan baseline for Fairness Quantification.
//!
//! Computes every candidate entity's aggregate by scanning the cube, then
//! partially sorts. This is the O(|G|·|Q|·|L|) comparator the paper's
//! threshold algorithm is designed to beat; it also handles *incomplete*
//! cubes (averaging over present cells), which the TA cannot.

use super::{topk::RankOrder, OrdF64, Restriction, TopKResult, TopKStats};
use crate::cube::UnfairnessCube;
use crate::index::Dimension;
use crate::model::{GroupId, LocationId, QueryId};

/// Full-scan top-k over a cube: the `k` entities of `dim` with the highest
/// (or lowest) average unfairness over the other two (restricted)
/// dimensions. Entities with no present cells are omitted. Ties are broken
/// by ascending entity id.
pub fn naive_top_k(
    cube: &UnfairnessCube,
    dim: Dimension,
    k: usize,
    order: RankOrder,
    restrict: &Restriction,
) -> TopKResult {
    let _span = fbox_telemetry::span!("algo.naive");
    let _trace = fbox_trace::span("algo.naive");
    let mut stats = TopKStats::default();
    let entities = restrict.resolve(dim, dim_len(cube, dim));
    let (da, db) = dim.others();
    let ents_a = restrict.resolve(da, dim_len(cube, da));
    let ents_b = restrict.resolve(db, dim_len(cube, db));

    let mut aggregates: Vec<(u32, f64)> = Vec::with_capacity(entities.len());
    for &e in &entities {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &a in &ents_a {
            for &b in &ents_b {
                stats.random_accesses += 1;
                stats.cells_scanned += 1;
                if let Some(v) = cell(cube, dim, e, a, b) {
                    sum += v;
                    n += 1;
                }
            }
        }
        if n > 0 {
            aggregates.push((e, sum / n as f64));
        }
    }

    match order {
        RankOrder::MostUnfair => {
            aggregates.sort_by(|x, y| OrdF64(y.1).cmp(&OrdF64(x.1)).then(x.0.cmp(&y.0)))
        }
        RankOrder::LeastUnfair => {
            aggregates.sort_by(|x, y| OrdF64(x.1).cmp(&OrdF64(y.1)).then(x.0.cmp(&y.0)))
        }
    }
    aggregates.truncate(k);
    stats.publish("naive");
    TopKResult { entries: aggregates, stats }
}

fn dim_len(cube: &UnfairnessCube, dim: Dimension) -> usize {
    match dim {
        Dimension::Group => cube.n_groups(),
        Dimension::Query => cube.n_queries(),
        Dimension::Location => cube.n_locations(),
    }
}

/// Reads `d⟨·⟩` with `e` in dimension `dim` and `(a, b)` the other two
/// dimensions in canonical order.
fn cell(cube: &UnfairnessCube, dim: Dimension, e: u32, a: u32, b: u32) -> Option<f64> {
    match dim {
        Dimension::Group => cube.get(GroupId(e), QueryId(a), LocationId(b)),
        Dimension::Query => cube.get(GroupId(a), QueryId(e), LocationId(b)),
        Dimension::Location => cube.get(GroupId(a), QueryId(b), LocationId(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> UnfairnessCube {
        let mut c = UnfairnessCube::with_dims(3, 2, 2);
        for g in 0..3u32 {
            for q in 0..2u32 {
                for l in 0..2u32 {
                    let v = (g as f64 + 1.0) / 10.0 + (q as f64) * 0.01 + (l as f64) * 0.001;
                    c.set(GroupId(g), QueryId(q), LocationId(l), v);
                }
            }
        }
        c
    }

    #[test]
    fn orders_both_ways() {
        let c = cube();
        let most =
            naive_top_k(&c, Dimension::Group, 3, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(most.entries[0].0, 2);
        assert_eq!(most.entries[2].0, 0);
        let least =
            naive_top_k(&c, Dimension::Group, 3, RankOrder::LeastUnfair, &Restriction::none());
        assert_eq!(least.entries[0].0, 0);
        assert_eq!(least.entries[2].0, 2);
    }

    #[test]
    fn handles_missing_cells() {
        let mut c = UnfairnessCube::with_dims(2, 2, 1);
        c.set(GroupId(0), QueryId(0), LocationId(0), 0.9);
        // Group 0 has one present cell (0.9); group 1 none.
        let r = naive_top_k(&c, Dimension::Group, 5, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(r.entries, vec![(0, 0.9)]);
    }

    #[test]
    fn ties_break_by_id() {
        let mut c = UnfairnessCube::with_dims(3, 1, 1);
        for g in 0..3u32 {
            c.set(GroupId(g), QueryId(0), LocationId(0), 0.5);
        }
        let r = naive_top_k(&c, Dimension::Group, 2, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(r.entries[0].0, 0);
        assert_eq!(r.entries[1].0, 1);
    }

    #[test]
    fn respects_restrictions() {
        let c = cube();
        let restrict =
            Restriction { groups: Some(vec![0, 1]), queries: Some(vec![1]), locations: None };
        let r = naive_top_k(&c, Dimension::Group, 5, RankOrder::MostUnfair, &restrict);
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].0, 1);
        // Aggregate = mean over q=1, l∈{0,1}.
        let expected = (0.2 + 0.01 + 0.2 + 0.011) / 2.0;
        assert!((r.entries[0].1 - expected).abs() < 1e-12);
    }
}
