//! Problem formulations and algorithms (paper §4).
//!
//! - [`topk`]: the Fagin-Threshold-Algorithm adaptation of Algorithm 1
//!   solving **Problem 1 (Fairness Quantification)** for any dimension;
//! - [`nra`]: the No-Random-Access variant (Fagin et al.'s second
//!   algorithm) for streamed or random-access-hostile indices;
//! - [`naive`]: the full-scan baseline both are benchmarked against;
//! - [`compare`]: Algorithms 2–3 solving **Problem 2 (Fairness
//!   Comparison)**.

pub mod compare;
pub mod naive;
pub mod nra;
pub mod topk;

pub use compare::{compare, compare_sets, BreakdownRow, ComparisonOutcome, Entity};
pub use naive::naive_top_k;
pub use nra::nra_top_k;
pub use topk::{top_k, RankOrder, TopKResult, TopKStats};

use crate::index::Dimension;

/// Optional subsets of each dimension to restrict a problem to (e.g. "the
/// 2 queries black males are most likely to get *in the West Coast*",
/// §4.1).
///
/// `None` means the whole dimension. Ids are raw `u32`s of the respective
/// dimension.
#[derive(Debug, Clone, Default)]
pub struct Restriction {
    /// Subset of group ids, or all groups.
    pub groups: Option<Vec<u32>>,
    /// Subset of query ids, or all queries.
    pub queries: Option<Vec<u32>>,
    /// Subset of location ids, or all locations.
    pub locations: Option<Vec<u32>>,
}

impl Restriction {
    /// No restriction: aggregate over everything.
    pub fn none() -> Self {
        Self::default()
    }

    /// Restricts one dimension, leaving the others unrestricted.
    pub fn on(dim: Dimension, ids: Vec<u32>) -> Self {
        let mut r = Self::default();
        match dim {
            Dimension::Group => r.groups = Some(ids),
            Dimension::Query => r.queries = Some(ids),
            Dimension::Location => r.locations = Some(ids),
        }
        r
    }

    /// The subset for a dimension, if restricted.
    pub fn subset(&self, dim: Dimension) -> Option<&[u32]> {
        match dim {
            Dimension::Group => self.groups.as_deref(),
            Dimension::Query => self.queries.as_deref(),
            Dimension::Location => self.locations.as_deref(),
        }
    }

    /// Resolves a dimension to the concrete id list: the subset if
    /// restricted, else `0..total`. Duplicate ids in the subset are
    /// dropped (first occurrence wins): a repeated id would otherwise
    /// enter the same posting lists twice into the aggregation, skewing
    /// averages and double-counting accesses.
    pub fn resolve(&self, dim: Dimension, total: usize) -> Vec<u32> {
        match self.subset(dim) {
            Some(ids) => {
                let mut seen = vec![false; total];
                let mut out = Vec::with_capacity(ids.len());
                for &id in ids {
                    assert!((id as usize) < total, "{dim:?} id {id} out of range (< {total})");
                    if !seen[id as usize] {
                        seen[id as usize] = true;
                        out.push(id);
                    }
                }
                out
            }
            None => {
                debug_assert!(total <= u32::MAX as usize, "dimension size must fit u32 ids");
                (0..total as u32).collect()
            }
        }
    }
}

/// Total-order wrapper for the non-NaN `f64` unfairness values, so they can
/// live in heaps and be sorted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // IEEE 754 total order: agrees with `<` on the non-NaN values the
        // cube stores, and keeps heaps/sorts well-defined even for NaN.
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restriction_resolution() {
        let r = Restriction::on(Dimension::Query, vec![2, 0]);
        assert_eq!(r.resolve(Dimension::Query, 3), vec![2, 0]);
        assert_eq!(r.resolve(Dimension::Group, 2), vec![0, 1]);
        assert_eq!(r.subset(Dimension::Location), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn restriction_rejects_out_of_range() {
        Restriction::on(Dimension::Group, vec![5]).resolve(Dimension::Group, 3);
    }

    #[test]
    fn resolve_dedups_preserving_first_occurrence_order() {
        let r = Restriction::on(Dimension::Query, vec![2, 0, 2, 2, 1, 0]);
        assert_eq!(r.resolve(Dimension::Query, 3), vec![2, 0, 1]);
    }

    /// Regression: duplicated ids in a restriction used to enter the same
    /// posting lists twice into the aggregation, skewing every algorithm's
    /// averages. A duplicated restriction must yield exactly the deduped
    /// restriction's answers — for TA, NRA, and the naive scan alike.
    #[test]
    fn duplicated_restriction_matches_deduped_across_algorithms() {
        use crate::cube::UnfairnessCube;
        use crate::model::{GroupId, LocationId, QueryId};

        let mut c = UnfairnessCube::with_dims(4, 3, 3);
        let mut state = 0xDEAD_BEEFu64;
        for g in 0..4u32 {
            for q in 0..3u32 {
                for l in 0..3u32 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let v = (state >> 11) as f64 / (1u64 << 53) as f64;
                    c.set(GroupId(g), QueryId(q), LocationId(l), v);
                }
            }
        }
        let idx = crate::index::IndexSet::build(&c);

        let dup = Restriction { queries: Some(vec![2, 0, 2, 2]), ..Restriction::none() };
        let dedup = Restriction { queries: Some(vec![2, 0]), ..Restriction::none() };
        type Run<'a> = Box<dyn Fn(&Restriction) -> TopKResult + 'a>;
        for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
            let runs: [(&str, Run); 3] = [
                ("ta", Box::new(|r| top_k(&idx, Dimension::Group, 4, order, r))),
                ("nra", Box::new(|r| nra_top_k(&idx, Dimension::Group, 4, order, r))),
                ("naive", Box::new(|r| naive_top_k(&c, Dimension::Group, 4, order, r))),
            ];
            for (name, run) in runs {
                let a = run(&dup).entries;
                let b = run(&dedup).entries;
                assert_eq!(a, b, "{name} {order:?}: duplicated restriction changed the answer");
            }
        }
    }

    #[test]
    fn ordf64_orders() {
        let mut v = vec![OrdF64(0.3), OrdF64(0.1), OrdF64(0.2)];
        v.sort();
        assert_eq!(v, vec![OrdF64(0.1), OrdF64(0.2), OrdF64(0.3)]);
    }
}
