//! Fairness Comparison (Problem 2, Algorithms 2–3).
//!
//! Given two comparison entities `r1, r2` of the same dimension (two
//! groups, two queries, or two locations) and a *breakdown* dimension `B`,
//! return every breakdown entity `b` whose `(r1 vs r2)` unfairness order
//! differs from the overall order — e.g. "overall, females are treated
//! less fairly than males, but in Chicago, Nashville and San Francisco the
//! trend is inverted" (paper Table 12).
//!
//! The overall values are computed by Algorithm 3
//! (`ComputeGroupUnfairness`): the average of `d⟨·⟩` over the breakdown
//! set × the remaining dimension; the per-`b` values average over the
//! remaining dimension only. All reads go through the pre-built
//! [`IndexSet`] random accesses, as in the paper's Algorithm 2.

use super::Restriction;
use crate::index::{Dimension, IndexSet};
use crate::model::{GroupId, LocationId, QueryId};

/// An entity of one of the three dimensions, used to name the two sides of
/// a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entity {
    /// A demographic group.
    Group(GroupId),
    /// A job-related query.
    Query(QueryId),
    /// A geographic location.
    Location(LocationId),
}

impl Entity {
    /// The dimension this entity belongs to.
    pub fn dimension(self) -> Dimension {
        match self {
            Entity::Group(_) => Dimension::Group,
            Entity::Query(_) => Dimension::Query,
            Entity::Location(_) => Dimension::Location,
        }
    }

    /// The raw id.
    pub fn id(self) -> u32 {
        match self {
            Entity::Group(g) => g.0,
            Entity::Query(q) => q.0,
            Entity::Location(l) => l.0,
        }
    }
}

/// One breakdown row of a comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// The breakdown entity's raw id (in the breakdown dimension).
    pub entity: u32,
    /// `d⟨r1, b⟩`: r1's unfairness within this breakdown slice.
    pub d1: f64,
    /// `d⟨r2, b⟩`: r2's unfairness within this breakdown slice.
    pub d2: f64,
    /// Whether this row's order differs from the overall order — the rows
    /// Problem 2 returns.
    pub reversed: bool,
}

/// Result of a fairness comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonOutcome {
    /// `d⟨r1⟩` overall (the "All" row of the paper's Tables 12–21).
    pub overall1: f64,
    /// `d⟨r2⟩` overall.
    pub overall2: f64,
    /// One row per breakdown entity that had data, in id order.
    pub rows: Vec<BreakdownRow>,
}

impl ComparisonOutcome {
    /// Only the rows whose order differs from the overall order — what
    /// Problem 2 returns.
    pub fn reversed_rows(&self) -> impl Iterator<Item = &BreakdownRow> {
        self.rows.iter().filter(|r| r.reversed)
    }
}

/// Runs Algorithm 2, generalized.
///
/// - `r1`, `r2`: the two comparison entities; must share a dimension and
///   differ.
/// - `breakdown`: the breakdown dimension `B`; must differ from the
///   comparison dimension. `breakdown_subset` optionally restricts it
///   (e.g. only the ethnicity groups, only one category's sub-queries).
/// - `restrict`: optional subset of the remaining (aggregated) dimension.
///
/// A breakdown entity is `reversed` when its strict order differs from the
/// overall strict order: if overall `r1 < r2`, every `b` with
/// `d1(b) ≥ d2(b)` is returned (ties count as a reversal of a strict
/// overall order, matching the paper's Table 12 which lists Chicago with
/// equal values); if the overall values tie, only strictly ordered rows
/// are returned.
///
/// Breakdown entities with no data on either side are omitted from
/// `rows`. Returns `None` when either overall value has no data at all.
///
/// # Panics
///
/// Panics if `r1`/`r2` mix dimensions, are equal, or the breakdown
/// dimension equals the comparison dimension.
pub fn compare(
    indices: &IndexSet,
    r1: Entity,
    r2: Entity,
    breakdown: Dimension,
    breakdown_subset: Option<&[u32]>,
    restrict: &Restriction,
) -> Option<ComparisonOutcome> {
    let cmp_dim = r1.dimension();
    assert_eq!(cmp_dim, r2.dimension(), "comparison entities must share a dimension");
    assert_ne!(r1, r2, "comparison requires two distinct entities");
    compare_sets(indices, cmp_dim, &[r1.id()], &[r2.id()], breakdown, breakdown_subset, restrict)
}

/// [`compare`] generalized to *sets* of comparison entities: `set1` and
/// `set2` are pooled by averaging. This is how higher-level dimensions are
/// compared — e.g. "Males vs Females" on a search engine, where the
/// single-attribute groups' Eq. 1 values are symmetric by construction
/// (each is the other's only comparable group), so the meaningful
/// comparison averages the full male groups {Asian/Black/White Male}
/// against the full female groups.
///
/// # Panics
///
/// Panics if either set is empty, the sets intersect, or the breakdown
/// dimension equals the comparison dimension.
pub fn compare_sets(
    indices: &IndexSet,
    cmp_dim: Dimension,
    set1: &[u32],
    set2: &[u32],
    breakdown: Dimension,
    breakdown_subset: Option<&[u32]>,
    restrict: &Restriction,
) -> Option<ComparisonOutcome> {
    assert!(!set1.is_empty() && !set2.is_empty(), "comparison sets must be non-empty");
    assert!(set1.iter().all(|e| !set2.contains(e)), "comparison sets must be disjoint");
    assert_ne!(breakdown, cmp_dim, "breakdown dimension must differ from the comparison dimension");
    let _span = fbox_telemetry::span!("algo.compare");
    let mut cells_read = 0u64;

    // The remaining dimension: not compared, not broken down — aggregated.
    let agg_dim = remaining_dimension(cmp_dim, breakdown);
    let agg_ids = restrict.resolve(agg_dim, indices.dim_len(agg_dim));
    let b_ids: Vec<u32> = match breakdown_subset {
        Some(ids) => ids.to_vec(),
        None => (0..indices.dim_len(breakdown) as u32).collect(),
    };

    // Per-breakdown averages (Algorithm 2's per-location sums) and the
    // overall averages (Algorithm 3) in one pass.
    let mut rows = Vec::new();
    let (mut sum1, mut n1) = (0.0, 0usize);
    let (mut sum2, mut n2) = (0.0, 0usize);
    for &b in &b_ids {
        let (mut s1, mut c1) = (0.0, 0usize);
        let (mut s2, mut c2) = (0.0, 0usize);
        for &a in &agg_ids {
            for &r in set1 {
                cells_read += 1;
                if let Some(v) = read(indices, cmp_dim, r, breakdown, b, a) {
                    s1 += v;
                    c1 += 1;
                }
            }
            for &r in set2 {
                cells_read += 1;
                if let Some(v) = read(indices, cmp_dim, r, breakdown, b, a) {
                    s2 += v;
                    c2 += 1;
                }
            }
        }
        sum1 += s1;
        n1 += c1;
        sum2 += s2;
        n2 += c2;
        if c1 > 0 && c2 > 0 {
            rows.push(BreakdownRow {
                entity: b,
                d1: s1 / c1 as f64,
                d2: s2 / c2 as f64,
                reversed: false, // filled in below once overall is known
            });
        }
    }
    publish_compare(cells_read);
    if n1 == 0 || n2 == 0 {
        return None;
    }
    let overall1 = sum1 / n1 as f64;
    let overall2 = sum2 / n2 as f64;

    let overall_order = strict_order(overall1, overall2);
    for row in &mut rows {
        let row_order = strict_order(row.d1, row.d2);
        row.reversed = row_order != overall_order;
    }

    Some(ComparisonOutcome { overall1, overall2, rows })
}

/// Folds one comparison run's counters into the global telemetry
/// registry; no-op while telemetry is disabled.
fn publish_compare(cells_read: u64) {
    let t = fbox_telemetry::global();
    if !t.enabled() {
        return;
    }
    t.counter("compare.calls").inc();
    t.counter("compare.cells_read").add(cells_read);
}

fn remaining_dimension(a: Dimension, b: Dimension) -> Dimension {
    use Dimension::*;
    match (a, b) {
        (Group, Query) | (Query, Group) => Location,
        (Group, Location) | (Location, Group) => Query,
        (Query, Location) | (Location, Query) => Group,
        _ => unreachable!("caller guarantees distinct dimensions"),
    }
}

/// Strict three-way order as an i8: −1 (d1 < d2), 0 (tie), 1 (d1 > d2).
fn strict_order(d1: f64, d2: f64) -> i8 {
    match d1.total_cmp(&d2) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

/// Reads `d⟨·⟩` with `c` in the comparison dimension, `b` in the breakdown
/// dimension, and `a` in the remaining dimension.
fn read(
    indices: &IndexSet,
    cmp_dim: Dimension,
    c: u32,
    b_dim: Dimension,
    b: u32,
    a: u32,
) -> Option<f64> {
    use Dimension::*;
    let (g, q, l) = match (cmp_dim, b_dim) {
        (Group, Query) => (c, b, a),
        (Group, Location) => (c, a, b),
        (Query, Group) => (b, c, a),
        (Query, Location) => (a, c, b),
        (Location, Group) => (b, a, c),
        (Location, Query) => (a, b, c),
        _ => unreachable!("caller guarantees distinct dimensions"),
    };
    indices.value(GroupId(g), QueryId(q), LocationId(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::UnfairnessCube;
    use crate::index::IndexSet;

    /// 2 groups × 1 query × 3 locations.
    ///
    /// Group 0 ("males") overall 0.48, group 1 ("females") overall 0.74,
    /// but at location 2 the order flips — the Table 4 shape.
    fn table4_like() -> IndexSet {
        let mut c = UnfairnessCube::with_dims(2, 1, 3);
        let q = QueryId(0);
        // location 0 and 1: females worse; location 2: males worse.
        c.set(GroupId(0), q, LocationId(0), 0.30);
        c.set(GroupId(1), q, LocationId(0), 0.80);
        c.set(GroupId(0), q, LocationId(1), 0.30);
        c.set(GroupId(1), q, LocationId(1), 0.90);
        c.set(GroupId(0), q, LocationId(2), 0.84);
        c.set(GroupId(1), q, LocationId(2), 0.52);
        IndexSet::build(&c)
    }

    #[test]
    fn detects_reversed_locations() {
        let idx = table4_like();
        let out = compare(
            &idx,
            Entity::Group(GroupId(0)),
            Entity::Group(GroupId(1)),
            Dimension::Location,
            None,
            &Restriction::none(),
        )
        .unwrap();
        assert!((out.overall1 - 0.48).abs() < 1e-12);
        assert!((out.overall2 - (0.8 + 0.9 + 0.52) / 3.0).abs() < 1e-12);
        let reversed: Vec<u32> = out.reversed_rows().map(|r| r.entity).collect();
        assert_eq!(reversed, vec![2]);
        // The non-reversed rows are still reported, unflagged.
        assert_eq!(out.rows.len(), 3);
        assert!(!out.rows[0].reversed);
    }

    #[test]
    fn ties_count_as_reversal_of_strict_overall() {
        // Overall strictly ordered; one breakdown ties → reported,
        // matching Table 12's Chicago row (0.062 vs 0.062).
        let mut c = UnfairnessCube::with_dims(2, 1, 2);
        let q = QueryId(0);
        c.set(GroupId(0), q, LocationId(0), 0.2);
        c.set(GroupId(1), q, LocationId(0), 0.8);
        c.set(GroupId(0), q, LocationId(1), 0.5);
        c.set(GroupId(1), q, LocationId(1), 0.5);
        let idx = IndexSet::build(&c);
        let out = compare(
            &idx,
            Entity::Group(GroupId(0)),
            Entity::Group(GroupId(1)),
            Dimension::Location,
            None,
            &Restriction::none(),
        )
        .unwrap();
        let reversed: Vec<u32> = out.reversed_rows().map(|r| r.entity).collect();
        assert_eq!(reversed, vec![1]);
    }

    #[test]
    fn breakdown_subset_restricts_rows_and_overall() {
        let idx = table4_like();
        // Only locations {0, 1}: no reversal there, and the overall is
        // computed over the subset.
        let out = compare(
            &idx,
            Entity::Group(GroupId(0)),
            Entity::Group(GroupId(1)),
            Dimension::Location,
            Some(&[0, 1]),
            &Restriction::none(),
        )
        .unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.reversed_rows().count(), 0);
        assert!((out.overall1 - 0.30).abs() < 1e-12);
        assert!((out.overall2 - 0.85).abs() < 1e-12);
    }

    #[test]
    fn query_comparison_with_group_breakdown() {
        // r1, r2 queries; B = groups; aggregate over locations.
        let mut c = UnfairnessCube::with_dims(2, 2, 2);
        for g in 0..2u32 {
            for q in 0..2u32 {
                for l in 0..2u32 {
                    // Query 0 worse overall (driven by group 1), but for
                    // group 0 query 1 is worse — a reversal.
                    let v = match (g, q) {
                        (0, 0) => 0.2,
                        (0, 1) => 0.6,
                        (1, 0) => 0.9,
                        _ => 0.3,
                    } + l as f64 * 0.01;
                    c.set(GroupId(g), QueryId(q), LocationId(l), v);
                }
            }
        }
        let idx = IndexSet::build(&c);
        let out = compare(
            &idx,
            Entity::Query(QueryId(0)),
            Entity::Query(QueryId(1)),
            Dimension::Group,
            None,
            &Restriction::none(),
        )
        .unwrap();
        // Overall: q0 = 0.555 > q1 = 0.455; group 0 orders q0 < q1.
        assert!(out.overall1 > out.overall2);
        let reversed: Vec<u32> = out.reversed_rows().map(|r| r.entity).collect();
        assert_eq!(reversed, vec![0]);
    }

    #[test]
    fn missing_breakdown_entities_are_omitted() {
        let mut c = UnfairnessCube::with_dims(2, 1, 2);
        let q = QueryId(0);
        c.set(GroupId(0), q, LocationId(0), 0.2);
        c.set(GroupId(1), q, LocationId(0), 0.8);
        // Location 1 has no data for either group.
        let idx = IndexSet::build(&c);
        let out = compare(
            &idx,
            Entity::Group(GroupId(0)),
            Entity::Group(GroupId(1)),
            Dimension::Location,
            None,
            &Restriction::none(),
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn no_data_returns_none() {
        let c = UnfairnessCube::with_dims(2, 1, 1);
        let idx = IndexSet::build(&c);
        assert!(compare(
            &idx,
            Entity::Group(GroupId(0)),
            Entity::Group(GroupId(1)),
            Dimension::Location,
            None,
            &Restriction::none(),
        )
        .is_none());
    }

    #[test]
    fn compare_sets_pools_entities() {
        // 4 groups × 1 query × 2 locations; sets {0,1} vs {2,3}.
        let mut c = UnfairnessCube::with_dims(4, 1, 2);
        let q = QueryId(0);
        for (g, l, v) in [
            (0u32, 0u32, 0.2),
            (1, 0, 0.4),
            (2, 0, 0.7),
            (3, 0, 0.9),
            // At location 1 the pools reverse.
            (0, 1, 0.8),
            (1, 1, 0.6),
            (2, 1, 0.3),
            (3, 1, 0.1),
        ] {
            c.set(GroupId(g), q, LocationId(l), v);
        }
        let idx = IndexSet::build(&c);
        let out = compare_sets(
            &idx,
            Dimension::Group,
            &[0, 1],
            &[2, 3],
            Dimension::Location,
            None,
            &Restriction::none(),
        )
        .unwrap();
        // Overall: set1 = (0.2+0.4+0.8+0.6)/4 = 0.5, set2 = 0.5 → tie;
        // strictly ordered rows are therefore all reversed.
        assert!((out.overall1 - 0.5).abs() < 1e-12);
        assert!((out.overall2 - 0.5).abs() < 1e-12);
        assert_eq!(out.rows.len(), 2);
        assert!((out.rows[0].d1 - 0.3).abs() < 1e-12);
        assert!((out.rows[0].d2 - 0.8).abs() < 1e-12);
        assert!((out.rows[1].d1 - 0.7).abs() < 1e-12);
        assert!((out.rows[1].d2 - 0.2).abs() < 1e-12);
        assert_eq!(out.reversed_rows().count(), 2);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_sets_rejected() {
        let idx = table4_like();
        compare_sets(
            &idx,
            Dimension::Group,
            &[0],
            &[0, 1],
            Dimension::Location,
            None,
            &Restriction::none(),
        );
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn mixed_dimensions_rejected() {
        let idx = table4_like();
        compare(
            &idx,
            Entity::Group(GroupId(0)),
            Entity::Query(QueryId(0)),
            Dimension::Location,
            None,
            &Restriction::none(),
        );
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn identical_entities_rejected() {
        let idx = table4_like();
        compare(
            &idx,
            Entity::Group(GroupId(0)),
            Entity::Group(GroupId(0)),
            Dimension::Location,
            None,
            &Restriction::none(),
        );
    }

    #[test]
    #[should_panic(expected = "breakdown dimension")]
    fn breakdown_equal_to_comparison_rejected() {
        let idx = table4_like();
        compare(
            &idx,
            Entity::Group(GroupId(0)),
            Entity::Group(GroupId(1)),
            Dimension::Group,
            None,
            &Restriction::none(),
        );
    }
}
