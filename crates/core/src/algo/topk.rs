//! Fairness Quantification (Problem 1) via an adaptation of Fagin's
//! Threshold Algorithm — the paper's Algorithm 1, generalized to all three
//! dimension instances (group-, query-, and location-fairness) and to both
//! the most- and least-unfair variants.
//!
//! For a returned dimension `R` and the two aggregated dimensions, the
//! aggregate of entity `r` is `avg` of `d⟨·⟩` over all pairs of the
//! aggregated dimensions. The TA walks every pair's posting list in
//! parallel (one sorted access per pair per round), completes each newly
//! seen entity's aggregate by random accesses to the other lists, and
//! maintains the threshold `τ` = average of the values at the current
//! cursors — an upper (resp. lower) bound on any unseen entity's
//! aggregate. Once the k-th best result passes `τ`, no unseen entity can
//! enter the top-k and the algorithm stops without exhausting the lists.

use super::{OrdF64, Restriction};
use crate::index::{Dimension, IndexSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Whether to return the *most* or *least* unfair entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankOrder {
    /// Top-k by descending unfairness (paper: "most unfair").
    MostUnfair,
    /// Top-k by ascending unfairness (paper: "least unfair" / "fairest").
    LeastUnfair,
}

/// Instrumentation counters, used by the benchmarks to contrast TA with
/// the naive full scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopKStats {
    /// Number of sorted accesses performed.
    pub sorted_accesses: u64,
    /// Number of random accesses performed.
    pub random_accesses: u64,
    /// Number of round-robin rounds executed.
    pub rounds: u64,
    /// Number of cube cells touched, by any access kind — including probes
    /// of missing cells. This is the honest work metric for TA-vs-naive
    /// comparisons: the naive scan touches every (restricted) cell exactly
    /// once, while TA touches `sorted + random` cells.
    pub cells_scanned: u64,
}

impl TopKStats {
    /// Folds these counters into the global telemetry registry under
    /// `<algo>.*` names (e.g. `ta.sorted_accesses`), plus a `<algo>.calls`
    /// counter. No-op while telemetry is disabled.
    pub fn publish(&self, algo: &str) {
        let t = fbox_telemetry::global();
        if !t.enabled() {
            return;
        }
        t.counter(&format!("{algo}.calls")).inc();
        t.counter(&format!("{algo}.sorted_accesses")).add(self.sorted_accesses);
        t.counter(&format!("{algo}.random_accesses")).add(self.random_accesses);
        t.counter(&format!("{algo}.rounds")).add(self.rounds);
        t.counter(&format!("{algo}.cells_scanned")).add(self.cells_scanned);
    }
}

/// Result of a top-k run: entities with their aggregated unfairness, best
/// first, plus access counters.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// `(entity id, aggregate unfairness)`, ordered best-first (descending
    /// for [`RankOrder::MostUnfair`], ascending for
    /// [`RankOrder::LeastUnfair`]; ties by ascending id).
    pub entries: Vec<(u32, f64)>,
    /// Access counters.
    pub stats: TopKStats,
}

/// Runs Algorithm 1: the `k` entities of `dim` for which the site is most
/// (or least) unfair, aggregating over the other two dimensions, subject to
/// a [`Restriction`].
///
/// On a *complete* cube this is the classic TA with `τ` = average of the
/// cursor values. On an *incomplete* cube (degraded crawls: failed cells
/// become missing observations) the aggregate is the average over
/// *present* cells — matching [`naive_top_k`](super::naive_top_k) — and
/// `τ` becomes the maximum cursor value across non-exhausted lists, which
/// bounds any unseen entity's subset average. Entities with no present
/// cells are omitted.
pub fn top_k(
    indices: &IndexSet,
    dim: Dimension,
    k: usize,
    order: RankOrder,
    restrict: &Restriction,
) -> TopKResult {
    if !indices.is_complete() {
        return top_k_partial(indices, dim, k, order, restrict);
    }
    let _span = fbox_telemetry::span!("algo.ta");
    let _trace = fbox_trace::span("algo.ta");
    let mut stats = TopKStats::default();

    let (da, db) = dim.others();
    let ents_a = restrict.resolve(da, indices.dim_len(da));
    let ents_b = restrict.resolve(db, indices.dim_len(db));
    let mut pairs = Vec::with_capacity(ents_a.len() * ents_b.len());
    for &a in &ents_a {
        for &b in &ents_b {
            pairs.push((a, b));
        }
    }

    let candidates: Option<Vec<bool>> = restrict.subset(dim).map(|ids| {
        let mut mask = vec![false; indices.dim_len(dim)];
        for &id in ids {
            mask[id as usize] = true;
        }
        mask
    });
    let is_candidate = |e: u32| candidates.as_ref().is_none_or(|m| m[e as usize]);

    if k == 0 || pairs.is_empty() {
        stats.publish("ta");
        return TopKResult { entries: Vec::new(), stats };
    }

    // `heap` keeps the k best aggregates seen so far; for MostUnfair it is
    // a min-heap (worst of the best on top), for LeastUnfair a max-heap.
    // Entries are keyed so that pop() always removes the entry that should
    // leave first, with ties resolved against larger ids (so smaller ids
    // win ties, matching the naive baseline's ordering).
    let mut heap: BinaryHeap<(Reverse<OrdF64>, u32)> = BinaryHeap::new();
    let sign = match order {
        RankOrder::MostUnfair => 1.0,
        RankOrder::LeastUnfair => -1.0,
    };
    // Heap key: Reverse(sign * value) so the heap's top is the *weakest*
    // member of the current top-k; ties put the larger id on top so it is
    // evicted first.
    let key = |v: f64, e: u32| (Reverse(OrdF64(sign * v)), e);

    let mut cursors = vec![0usize; pairs.len()];
    let mut last_seen = vec![0.0f64; pairs.len()];
    let mut seen = vec![false; indices.dim_len(dim)];

    loop {
        stats.rounds += 1;
        let mut progressed = false;
        for (pi, &pair) in pairs.iter().enumerate() {
            let list = indices.list_for(dim, pair);
            let accessed = match order {
                RankOrder::MostUnfair => list.sorted_desc(cursors[pi]),
                RankOrder::LeastUnfair => list.sorted_asc(cursors[pi]),
            };
            let Some((e, v)) = accessed else {
                // List exhausted; its last value keeps bounding τ. No
                // access happened, so the counter must not move — it
                // would break `cells_scanned == sorted + random`.
                continue;
            };
            stats.sorted_accesses += 1;
            cursors[pi] += 1;
            stats.cells_scanned += 1;
            last_seen[pi] = v;
            progressed = true;
            if !is_candidate(e) || seen[e as usize] {
                continue;
            }
            seen[e as usize] = true;

            // Complete the aggregate with random accesses to the other
            // pairs (the paper's lines 11–18).
            let mut sum = v;
            for (pj, &other) in pairs.iter().enumerate() {
                if pj == pi {
                    continue;
                }
                let val = indices
                    .list_for(dim, other)
                    .random_access(e)
                    .expect("complete index has every entity in every list");
                stats.random_accesses += 1;
                stats.cells_scanned += 1;
                sum += val;
            }
            let aggregate = sum / pairs.len() as f64;

            if heap.len() < k {
                heap.push(key(aggregate, e));
            } else if let Some(&(Reverse(OrdF64(worst)), worst_e)) = heap.peek() {
                let cand = key(aggregate, e);
                if cand < (Reverse(OrdF64(worst)), worst_e) {
                    heap.pop();
                    heap.push(cand);
                }
            }
        }

        // Threshold: the average of the values at the current cursor
        // positions bounds any unseen entity's aggregate (from above for
        // MostUnfair, below for LeastUnfair, once mapped through `sign`).
        let tau = sign * last_seen.iter().sum::<f64>() / pairs.len() as f64;
        fbox_trace::instant_args("ta.threshold", |a| {
            a.u64("round", stats.rounds);
            a.f64("tau", sign * tau);
        });
        if heap.len() >= k {
            let &(Reverse(OrdF64(worst)), _) = heap.peek().expect("heap non-empty");
            // `worst` and `tau` are both in sign-adjusted space, where
            // bigger is better.
            if worst >= tau {
                fbox_trace::instant_args("ta.early_termination", |a| {
                    a.u64("round", stats.rounds);
                });
                break;
            }
        }
        if !progressed {
            break;
        }
    }

    // Drain the heap into best-first order.
    let mut entries: Vec<(u32, f64)> =
        heap.into_iter().map(|(Reverse(OrdF64(sv)), e)| (e, sign * sv)).collect();
    entries.sort_by(|a, b| {
        let va = OrdF64(sign * a.1);
        let vb = OrdF64(sign * b.1);
        vb.cmp(&va).then(a.0.cmp(&b.0))
    });
    stats.publish("ta");
    TopKResult { entries, stats }
}

/// TA over an incomplete cube. Differences from the complete path:
///
/// - an entity's aggregate is the average over its *present* cells (the
///   semantics [`naive_top_k`](super::naive_top_k) already uses, so the
///   two agree on degraded data);
/// - a random access probing a missing cell still counts as an access
///   (same honesty rule as the naive scan) but contributes nothing;
/// - `τ` is the **maximum** cursor value over non-exhausted lists in
///   sign space: an unseen entity only has cells in non-exhausted lists
///   (anything in an exhausted list was already seen), each such cell is
///   bounded by its list's cursor, and an average over a subset is
///   bounded by the subset's maximum. The complete path's tighter
///   average-of-cursors bound is unsound here because an unseen entity
///   need not appear in the lists with low cursors.
fn top_k_partial(
    indices: &IndexSet,
    dim: Dimension,
    k: usize,
    order: RankOrder,
    restrict: &Restriction,
) -> TopKResult {
    let _span = fbox_telemetry::span!("algo.ta");
    let _trace = fbox_trace::span("algo.ta");
    let mut stats = TopKStats::default();

    let (da, db) = dim.others();
    let ents_a = restrict.resolve(da, indices.dim_len(da));
    let ents_b = restrict.resolve(db, indices.dim_len(db));
    let mut pairs = Vec::with_capacity(ents_a.len() * ents_b.len());
    for &a in &ents_a {
        for &b in &ents_b {
            pairs.push((a, b));
        }
    }
    let candidates: Option<Vec<bool>> = restrict.subset(dim).map(|ids| {
        let mut mask = vec![false; indices.dim_len(dim)];
        for &id in ids {
            mask[id as usize] = true;
        }
        mask
    });
    let is_candidate = |e: u32| candidates.as_ref().is_none_or(|m| m[e as usize]);

    if k == 0 || pairs.is_empty() {
        stats.publish("ta");
        return TopKResult { entries: Vec::new(), stats };
    }

    let sign = match order {
        RankOrder::MostUnfair => 1.0,
        RankOrder::LeastUnfair => -1.0,
    };
    let key = |v: f64, e: u32| (Reverse(OrdF64(sign * v)), e);

    let mut heap: BinaryHeap<(Reverse<OrdF64>, u32)> = BinaryHeap::new();
    let mut cursors = vec![0usize; pairs.len()];
    // Cursor value per list in sign space; `NEG_INFINITY` marks an
    // exhausted list, which stops bounding τ.
    let mut frontier = vec![f64::INFINITY; pairs.len()];
    let mut seen = vec![false; indices.dim_len(dim)];

    loop {
        stats.rounds += 1;
        let mut progressed = false;
        for (pi, &pair) in pairs.iter().enumerate() {
            let list = indices.list_for(dim, pair);
            let accessed = match order {
                RankOrder::MostUnfair => list.sorted_desc(cursors[pi]),
                RankOrder::LeastUnfair => list.sorted_asc(cursors[pi]),
            };
            let Some((e, v)) = accessed else {
                frontier[pi] = f64::NEG_INFINITY;
                continue;
            };
            stats.sorted_accesses += 1;
            cursors[pi] += 1;
            stats.cells_scanned += 1;
            frontier[pi] = sign * v;
            progressed = true;
            if !is_candidate(e) || seen[e as usize] {
                continue;
            }
            seen[e as usize] = true;

            // Complete the subset aggregate: probe every other list, skip
            // the missing cells.
            let mut sum = v;
            let mut present = 1usize;
            for (pj, &other) in pairs.iter().enumerate() {
                if pj == pi {
                    continue;
                }
                stats.random_accesses += 1;
                stats.cells_scanned += 1;
                if let Some(val) = indices.list_for(dim, other).random_access(e) {
                    sum += val;
                    present += 1;
                }
            }
            let aggregate = sum / present as f64;

            if heap.len() < k {
                heap.push(key(aggregate, e));
            } else if let Some(&top) = heap.peek() {
                let cand = key(aggregate, e);
                if cand < top {
                    heap.pop();
                    heap.push(cand);
                }
            }
        }

        // τ: the best subset average any unseen entity could still reach.
        let tau =
            frontier.iter().filter(|f| f.is_finite()).fold(f64::NEG_INFINITY, |m, &f| m.max(f));
        fbox_trace::instant_args("ta.threshold", |a| {
            a.u64("round", stats.rounds);
            a.f64("tau", sign * tau);
        });
        if heap.len() >= k {
            let &(Reverse(OrdF64(worst)), _) = heap.peek().expect("heap non-empty");
            if worst >= tau {
                fbox_trace::instant_args("ta.early_termination", |a| {
                    a.u64("round", stats.rounds);
                });
                break;
            }
        }
        if !progressed {
            break;
        }
    }

    let mut entries: Vec<(u32, f64)> =
        heap.into_iter().map(|(Reverse(OrdF64(sv)), e)| (e, sign * sv)).collect();
    entries.sort_by(|a, b| {
        let va = OrdF64(sign * a.1);
        let vb = OrdF64(sign * b.1);
        vb.cmp(&va).then(a.0.cmp(&b.0))
    });
    stats.publish("ta");
    TopKResult { entries, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::UnfairnessCube;
    use crate::model::{GroupId, LocationId, QueryId};

    /// 4 groups × 2 queries × 2 locations with group aggregates
    /// 0.2, 0.4, 0.6, 0.8.
    fn cube() -> UnfairnessCube {
        let mut c = UnfairnessCube::with_dims(4, 2, 2);
        for g in 0..4u32 {
            let base = 0.2 * (g + 1) as f64;
            for q in 0..2u32 {
                for l in 0..2u32 {
                    // Spread around the base but keep the mean at base.
                    let delta = match (q, l) {
                        (0, 0) => 0.05,
                        (0, 1) => -0.05,
                        (1, 0) => 0.02,
                        _ => -0.02,
                    };
                    c.set(GroupId(g), QueryId(q), LocationId(l), base + delta);
                }
            }
        }
        c
    }

    #[test]
    fn most_unfair_groups() {
        let idx = crate::index::IndexSet::build(&cube());
        let r = top_k(&idx, Dimension::Group, 2, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].0, 3);
        assert!((r.entries[0].1 - 0.8).abs() < 1e-12);
        assert_eq!(r.entries[1].0, 2);
        assert!((r.entries[1].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn least_unfair_groups() {
        let idx = crate::index::IndexSet::build(&cube());
        let r = top_k(&idx, Dimension::Group, 2, RankOrder::LeastUnfair, &Restriction::none());
        assert_eq!(r.entries[0].0, 0);
        assert!((r.entries[0].1 - 0.2).abs() < 1e-12);
        assert_eq!(r.entries[1].0, 1);
    }

    #[test]
    fn k_larger_than_dimension_returns_all() {
        let idx = crate::index::IndexSet::build(&cube());
        let r = top_k(&idx, Dimension::Group, 10, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(r.entries.len(), 4);
        // Best-first order.
        for w in r.entries.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    /// Regression: with k > dim_len every list is walked to exhaustion and
    /// the final round's failed sorted accesses used to be counted, so
    /// `sorted_accesses` exceeded the cells actually read and broke the
    /// invariant `cells_scanned == sorted + random`.
    #[test]
    fn exhausted_lists_do_not_inflate_access_counters() {
        let idx = crate::index::IndexSet::build(&cube());
        let r = top_k(&idx, Dimension::Group, 10, RankOrder::MostUnfair, &Restriction::none());
        // 4 lists × 4 groups fully read; each of the 4 first-seen entities
        // triggers 3 random accesses into the other lists.
        assert_eq!(r.stats.sorted_accesses, 16);
        assert_eq!(r.stats.random_accesses, 12);
        assert_eq!(r.stats.cells_scanned, r.stats.sorted_accesses + r.stats.random_accesses);
    }

    #[test]
    fn k_zero_returns_empty() {
        let idx = crate::index::IndexSet::build(&cube());
        let r = top_k(&idx, Dimension::Group, 0, RankOrder::MostUnfair, &Restriction::none());
        assert!(r.entries.is_empty());
    }

    #[test]
    fn restriction_on_returned_dimension() {
        let idx = crate::index::IndexSet::build(&cube());
        let restrict = Restriction::on(Dimension::Group, vec![0, 1]);
        let r = top_k(&idx, Dimension::Group, 1, RankOrder::MostUnfair, &restrict);
        assert_eq!(r.entries[0].0, 1); // best among {0, 1}
    }

    #[test]
    fn restriction_on_aggregated_dimension() {
        // Restrict to q=0 only: aggregates become base ± 0.05 averaged →
        // base, ordering unchanged, but τ math must still terminate.
        let idx = crate::index::IndexSet::build(&cube());
        let restrict = Restriction::on(Dimension::Query, vec![0]);
        let r = top_k(&idx, Dimension::Group, 4, RankOrder::MostUnfair, &restrict);
        assert_eq!(r.entries.len(), 4);
        assert_eq!(r.entries[0].0, 3);
    }

    #[test]
    fn query_and_location_dimensions_work() {
        let idx = crate::index::IndexSet::build(&cube());
        let rq = top_k(&idx, Dimension::Query, 2, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(rq.entries.len(), 2);
        let rl = top_k(&idx, Dimension::Location, 2, RankOrder::LeastUnfair, &Restriction::none());
        assert_eq!(rl.entries.len(), 2);
    }

    /// A degraded cube: group 3 lost one cell, group 1 lost all but one,
    /// group 0 lost everything. TA must agree with the naive scan's
    /// subset-average semantics, including the omission of group 0.
    fn degraded_cube() -> UnfairnessCube {
        let mut c = cube();
        c.set_opt(GroupId(3), QueryId(0), LocationId(0), None);
        for (q, l) in [(0, 0), (0, 1), (1, 0)] {
            c.set_opt(GroupId(1), QueryId(q), LocationId(l), None);
        }
        for q in 0..2u32 {
            for l in 0..2u32 {
                c.set_opt(GroupId(0), QueryId(q), LocationId(l), None);
            }
        }
        c
    }

    #[test]
    fn partial_cube_matches_naive() {
        let c = degraded_cube();
        let idx = crate::index::IndexSet::build(&c);
        assert!(!idx.is_complete());
        for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
            for k in [1usize, 2, 4, 10] {
                let ta = top_k(&idx, Dimension::Group, k, order, &Restriction::none());
                let nv =
                    crate::algo::naive_top_k(&c, Dimension::Group, k, order, &Restriction::none());
                assert_eq!(ta.entries.len(), nv.entries.len(), "{order:?} k={k}");
                for (a, b) in ta.entries.iter().zip(&nv.entries) {
                    assert_eq!(a.0, b.0, "{order:?} k={k}");
                    assert!((a.1 - b.1).abs() < 1e-9, "{order:?} k={k}: {a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn partial_cube_omits_entities_with_no_cells() {
        let c = degraded_cube();
        let idx = crate::index::IndexSet::build(&c);
        let r = top_k(&idx, Dimension::Group, 10, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(r.entries.len(), 3, "group 0 has no present cells");
        assert!(r.entries.iter().all(|&(e, _)| e != 0));
    }

    #[test]
    fn fully_missing_list_does_not_wedge_partial_ta() {
        // Every cell of query 1 is missing: two of the four posting lists
        // are empty, so they exhaust immediately and must stop bounding τ.
        let mut c = cube();
        for g in 0..4u32 {
            for l in 0..2u32 {
                c.set_opt(GroupId(g), QueryId(1), LocationId(l), None);
            }
        }
        let idx = crate::index::IndexSet::build(&c);
        let ta = top_k(&idx, Dimension::Group, 4, RankOrder::MostUnfair, &Restriction::none());
        let nv = crate::algo::naive_top_k(
            &c,
            Dimension::Group,
            4,
            RankOrder::MostUnfair,
            &Restriction::none(),
        );
        assert_eq!(ta.entries.len(), 4);
        for (a, b) in ta.entries.iter().zip(&nv.entries) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn early_termination_saves_accesses() {
        // Many groups, one clearly dominant: TA should stop long before
        // scanning everything.
        let n = 200u32;
        let mut c = UnfairnessCube::with_dims(n as usize, 2, 2);
        for g in 0..n {
            // Group 0 dominates with 0.99 everywhere; the rest are low.
            let v = if g == 0 { 0.99 } else { 0.1 + (g as f64) * 0.001 };
            for q in 0..2u32 {
                for l in 0..2u32 {
                    c.set(GroupId(g), QueryId(q), LocationId(l), v);
                }
            }
        }
        let idx = crate::index::IndexSet::build(&c);
        let r = top_k(&idx, Dimension::Group, 1, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(r.entries[0].0, 0);
        // Full scan would need n sorted accesses per list; TA stops after
        // a handful of rounds.
        assert!(
            r.stats.sorted_accesses < (n as u64) * 4 / 2,
            "expected early termination, did {} sorted accesses",
            r.stats.sorted_accesses
        );
    }
}
