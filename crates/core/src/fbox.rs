//! The F-Box: the end-to-end pipeline of the paper's Figure 6/9 —
//! observations in, unfairness answers out.
//!
//! An [`FBox`] owns a [`Universe`], the [`UnfairnessCube`] computed from a
//! platform's observations, and the three pre-built index families, and
//! exposes the two problems of §4: [quantification](FBox::top_k) and
//! [comparison](FBox::compare).

use crate::algo::{self, RankOrder, Restriction, TopKResult};
use crate::cube::UnfairnessCube;
use crate::index::{Dimension, IndexSet};
use crate::model::{GroupId, LocationId, QueryId, Universe};
use crate::observations::{MarketObservations, MarketRanking, SearchObservations, UserList};
use crate::unfairness::{
    market_cell_unfairness, search_cell_unfairness, MarketCellEval, MarketMeasure, MeasureContext,
    SearchCellEval, SearchMeasure,
};

/// The assembled fairness framework for one study.
#[derive(Debug, Clone)]
pub struct FBox {
    universe: Universe,
    cube: UnfairnessCube,
    indices: IndexSet,
}

impl FBox {
    /// Builds the F-Box from search-engine observations (Google-style:
    /// per-user ranked lists), computing `d⟨g,q,l⟩` by Eq. 1 for every
    /// registered group at every observed `(q, l)` cell.
    ///
    /// The `(q, l)` cells are partitioned across [`fbox_par`] workers
    /// (`FBOX_THREADS`, default: available parallelism); each worker
    /// evaluates all groups of its cells through a shared-work
    /// [`SearchCellEval`] and the per-worker shards are merged in
    /// deterministic cell order, so the cube is byte-identical to
    /// [`from_search_serial`](Self::from_search_serial) at any thread
    /// count.
    pub fn from_search(
        universe: Universe,
        observations: &SearchObservations,
        measure: SearchMeasure,
    ) -> Self {
        let _span = fbox_telemetry::span!("fbox.from_search");
        let _trace = fbox_trace::span("fbox.from_search");
        // Telemetry is armed once, before the fan-out, and shared by
        // reference: a `FBOX_TELEMETRY` toggle mid-build cannot leave some
        // shards counted and others not.
        let cells = CellTelemetry::new("search", measure.label());
        let mut cell_data: Vec<((QueryId, LocationId), &[UserList])> =
            observations.cells().collect();
        cell_data.sort_unstable_by_key(|&((q, l), _)| (q.0, l.0));
        let cube = {
            let ctx = MeasureContext::new(&universe);
            let shards = fbox_par::par_map(&cell_data, |&((q, l), lists)| {
                let _cell = cell_span(q, l, "search", measure.label());
                let mut eval = SearchCellEval::new(&ctx, lists, measure);
                evaluate_cell_groups(&ctx, &cells, |g| eval.group(g))
            });
            merge_shards(&universe, &cell_data, shards)
        };
        cells.finish_cube(&cube);
        Self::from_cube(universe, cube)
    }

    /// Reference implementation of [`from_search`](Self::from_search): the
    /// serial per-`(cell, group)` double loop over
    /// [`search_cell_unfairness`], with no cross-group work sharing. Kept
    /// as the correctness oracle the parallel build is tested bit-for-bit
    /// against, and as the baseline of `fbox-bench`'s `BENCH_parallel`
    /// comparison.
    pub fn from_search_serial(
        universe: Universe,
        observations: &SearchObservations,
        measure: SearchMeasure,
    ) -> Self {
        let _span = fbox_telemetry::span!("fbox.from_search");
        let _trace = fbox_trace::span("fbox.from_search");
        let cells = CellTelemetry::new("search", measure.label());
        let mut cube = UnfairnessCube::empty(&universe);
        for ((q, l), lists) in observations.cells() {
            let _cell = cell_span(q, l, "search", measure.label());
            for g in universe.group_ids() {
                let start = cells.start();
                let v = search_cell_unfairness(&universe, lists, g, measure);
                cells.finish(start, v.is_some());
                cube.set_opt(g, q, l, v);
            }
        }
        cells.finish_cube(&cube);
        Self::from_cube(universe, cube)
    }

    /// Builds the F-Box from marketplace observations (TaskRabbit-style:
    /// ranked workers), computing `d⟨g,q,l⟩` by Eq. 2 (EMD) or §3.3.2
    /// (exposure) for every registered group at every observed cell.
    ///
    /// Parallel like [`from_search`](Self::from_search): cells are
    /// sharded across `FBOX_THREADS` workers (each using a shared-work
    /// [`MarketCellEval`]) and merged deterministically, byte-identical
    /// to [`from_market_serial`](Self::from_market_serial).
    pub fn from_market(
        universe: Universe,
        observations: &MarketObservations,
        measure: MarketMeasure,
    ) -> Self {
        let _span = fbox_telemetry::span!("fbox.from_market");
        let _trace = fbox_trace::span("fbox.from_market");
        let cells = CellTelemetry::new("market", measure.label());
        let mut cell_data: Vec<((QueryId, LocationId), &MarketRanking)> =
            observations.cells().collect();
        cell_data.sort_unstable_by_key(|&((q, l), _)| (q.0, l.0));
        let cube = {
            let ctx = MeasureContext::new(&universe);
            let shards = fbox_par::par_map(&cell_data, |&((q, l), ranking)| {
                let _cell = cell_span(q, l, "market", measure.label());
                let mut eval = MarketCellEval::new(&ctx, ranking, measure);
                evaluate_cell_groups(&ctx, &cells, |g| eval.group(g))
            });
            merge_shards(&universe, &cell_data, shards)
        };
        cells.finish_cube(&cube);
        Self::from_cube(universe, cube)
    }

    /// Reference implementation of [`from_market`](Self::from_market) —
    /// see [`from_search_serial`](Self::from_search_serial).
    pub fn from_market_serial(
        universe: Universe,
        observations: &MarketObservations,
        measure: MarketMeasure,
    ) -> Self {
        let _span = fbox_telemetry::span!("fbox.from_market");
        let _trace = fbox_trace::span("fbox.from_market");
        let cells = CellTelemetry::new("market", measure.label());
        let mut cube = UnfairnessCube::empty(&universe);
        for ((q, l), ranking) in observations.cells() {
            let _cell = cell_span(q, l, "market", measure.label());
            for g in universe.group_ids() {
                let start = cells.start();
                let v = market_cell_unfairness(&universe, ranking, g, measure);
                cells.finish(start, v.is_some());
                cube.set_opt(g, q, l, v);
            }
        }
        cells.finish_cube(&cube);
        Self::from_cube(universe, cube)
    }

    /// Builds the F-Box from a pre-computed cube (e.g. deserialized from a
    /// previous run, or produced by a custom measure).
    ///
    /// # Panics
    ///
    /// Panics if the cube's dimensions do not match the universe's.
    pub fn from_cube(universe: Universe, cube: UnfairnessCube) -> Self {
        assert_eq!(cube.n_groups(), universe.n_groups(), "cube/universe group count mismatch");
        assert_eq!(cube.n_queries(), universe.n_queries(), "cube/universe query count mismatch");
        assert_eq!(
            cube.n_locations(),
            universe.n_locations(),
            "cube/universe location count mismatch"
        );
        let indices = IndexSet::build(&cube);
        Self { universe, cube, indices }
    }

    /// An F-Box over an empty cube: the starting point of incremental
    /// ingestion (`fbox-store`), where cells arrive one at a time through
    /// [`update_market_cell`](Self::update_market_cell) /
    /// [`update_search_cell`](Self::update_search_cell).
    pub fn empty(universe: Universe) -> Self {
        let cube = UnfairnessCube::empty(&universe);
        Self::from_cube(universe, cube)
    }

    /// Re-derives cell `(q, l)` from a marketplace ranking (or clears it
    /// with `None`) and delta-updates the affected cube slots and index
    /// entries in place.
    ///
    /// This is the incremental counterpart of
    /// [`from_market`](Self::from_market): because each cell's measures
    /// depend only on that cell's observations, and
    /// [`IndexSet::update_cell`] reproduces the total list order exactly,
    /// streaming cells through this method yields an F-Box bit-identical
    /// to a from-scratch build over the same observations — in any arrival
    /// order, at any `FBOX_THREADS`.
    pub fn update_market_cell(
        &mut self,
        q: QueryId,
        l: LocationId,
        ranking: Option<&MarketRanking>,
        measure: MarketMeasure,
    ) {
        let _cell = cell_span(q, l, "market", measure.label());
        for g in self.universe.group_ids() {
            let v = ranking.and_then(|r| market_cell_unfairness(&self.universe, r, g, measure));
            self.cube.set_opt(g, q, l, v);
        }
        self.indices.update_cell(&self.cube, q, l);
    }

    /// Re-derives cell `(q, l)` from search-engine user lists (an empty
    /// slice clears it) and delta-updates cube and indices in place — the
    /// incremental counterpart of [`from_search`](Self::from_search); see
    /// [`update_market_cell`](Self::update_market_cell).
    pub fn update_search_cell(
        &mut self,
        q: QueryId,
        l: LocationId,
        lists: &[UserList],
        measure: SearchMeasure,
    ) {
        let _cell = cell_span(q, l, "search", measure.label());
        for g in self.universe.group_ids() {
            let v = if lists.is_empty() {
                None
            } else {
                search_cell_unfairness(&self.universe, lists, g, measure)
            };
            self.cube.set_opt(g, q, l, v);
        }
        self.indices.update_cell(&self.cube, q, l);
    }

    /// The study universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The unfairness cube.
    pub fn cube(&self) -> &UnfairnessCube {
        &self.cube
    }

    /// The pre-built indices.
    pub fn indices(&self) -> &IndexSet {
        &self.indices
    }

    /// One cell: `d⟨g,q,l⟩`.
    pub fn unfairness(&self, g: GroupId, q: QueryId, l: LocationId) -> Option<f64> {
        self.cube.get(g, q, l)
    }

    /// Problem 1 over any dimension. Uses the threshold algorithm when the
    /// cube is complete and the naive scan otherwise. (The TA and NRA both
    /// handle incomplete cubes directly these days with subset-average
    /// bounds; the naive scan is kept here because on the sparse tail of a
    /// degraded cube its single pass is the cheaper plan, and it pins this
    /// method's historical output bytes.)
    pub fn top_k(
        &self,
        dim: Dimension,
        k: usize,
        order: RankOrder,
        restrict: &Restriction,
    ) -> TopKResult {
        let _span = fbox_telemetry::span!("fbox.top_k");
        if self.cube.is_complete() {
            algo::top_k(&self.indices, dim, k, order, restrict)
        } else {
            algo::naive_top_k(&self.cube, dim, k, order, restrict)
        }
    }

    /// Group-fairness instance: the `k` most/least unfair groups, with
    /// resolved names.
    pub fn top_k_groups(
        &self,
        k: usize,
        order: RankOrder,
        restrict: &Restriction,
    ) -> Vec<(String, f64)> {
        self.top_k(Dimension::Group, k, order, restrict)
            .entries
            .into_iter()
            .map(|(id, v)| (self.universe.group_name(GroupId(id)), v))
            .collect()
    }

    /// Query-fairness instance: the `k` most/least unfair queries, with
    /// resolved names.
    pub fn top_k_queries(
        &self,
        k: usize,
        order: RankOrder,
        restrict: &Restriction,
    ) -> Vec<(String, f64)> {
        self.top_k(Dimension::Query, k, order, restrict)
            .entries
            .into_iter()
            .map(|(id, v)| (self.universe.query(QueryId(id)).name.clone(), v))
            .collect()
    }

    /// Location-fairness instance: the `k` most/least unfair locations,
    /// with resolved names.
    pub fn top_k_locations(
        &self,
        k: usize,
        order: RankOrder,
        restrict: &Restriction,
    ) -> Vec<(String, f64)> {
        self.top_k(Dimension::Location, k, order, restrict)
            .entries
            .into_iter()
            .map(|(id, v)| (self.universe.location(LocationId(id)).name.clone(), v))
            .collect()
    }

    /// Problem 2: fairness comparison. See [`algo::compare`].
    pub fn compare(
        &self,
        r1: algo::Entity,
        r2: algo::Entity,
        breakdown: Dimension,
        breakdown_subset: Option<&[u32]>,
        restrict: &Restriction,
    ) -> Option<algo::ComparisonOutcome> {
        algo::compare(&self.indices, r1, r2, breakdown, breakdown_subset, restrict)
    }

    /// Resolves a breakdown entity id to a display name.
    pub fn entity_name(&self, dim: Dimension, id: u32) -> String {
        match dim {
            Dimension::Group => self.universe.group_name(GroupId(id)),
            Dimension::Query => self.universe.query(QueryId(id)).name.clone(),
            Dimension::Location => self.universe.location(LocationId(id)).name.clone(),
        }
    }
}

/// Opens the per-cell trace span of the cube build loops. Inside the
/// parallel builds it runs under the worker's `par.task` span, so the
/// trace tree reads build → task → cell regardless of thread count.
fn cell_span(
    q: QueryId,
    l: LocationId,
    platform: &'static str,
    measure_label: &str,
) -> fbox_trace::SpanGuard {
    fbox_trace::span_args("cube.cell", |a| {
        a.u64("q", u64::from(q.0));
        a.u64("l", u64::from(l.0));
        a.str("platform", platform);
        a.str("measure", measure_label);
    })
}

/// Evaluates every group of one `(q, l)` cell through a shared-work
/// evaluator, with per-group telemetry, returning the cell's values in
/// group-id order. Runs inside a [`fbox_par`] worker.
fn evaluate_cell_groups(
    ctx: &MeasureContext<'_>,
    cells: &CellTelemetry,
    mut eval_group: impl FnMut(GroupId) -> Option<f64>,
) -> Vec<Option<f64>> {
    ctx.universe()
        .group_ids()
        .map(|g| {
            let start = cells.start();
            let v = eval_group(g);
            cells.finish(start, v.is_some());
            v
        })
        .collect()
}

/// Merges per-cell value shards (one `Vec<Option<f64>>` per cell, group-id
/// order, aligned with `cell_data`) into a fresh cube. Each `(g, q, l)`
/// slot is written exactly once, so the result is independent of the order
/// workers produced the shards in.
fn merge_shards<T>(
    universe: &Universe,
    cell_data: &[((QueryId, LocationId), T)],
    shards: Vec<Vec<Option<f64>>>,
) -> UnfairnessCube {
    let mut cube = UnfairnessCube::empty(universe);
    for (&((q, l), _), shard) in cell_data.iter().zip(shards) {
        for (g, v) in universe.group_ids().zip(shard) {
            cube.set_opt(g, q, l, v);
        }
    }
    cube
}

/// Per-cell instrumentation for the cube build loops: counts computed vs
/// empty cells into `cube.cells_computed` / `cube.cells_empty`, times each
/// measure evaluation into `measure.<platform>.<label>`, and reports cells
/// never visited (unobserved (q, l) pairs) into `cube.cells_unobserved`.
/// Inert — no clock reads, no atomics — while telemetry is disabled.
///
/// `Sync`: one instance is constructed before the parallel fan-out and
/// shared by reference across the build workers, so the visited counter is
/// an [`AtomicU64`](std::sync::atomic::AtomicU64).
struct CellTelemetry {
    active: Option<CellTelemetryInner>,
}

struct CellTelemetryInner {
    computed: fbox_telemetry::Counter,
    empty: fbox_telemetry::Counter,
    unobserved: fbox_telemetry::Counter,
    timings: fbox_telemetry::Histogram,
    visited: std::sync::atomic::AtomicU64,
}

impl CellTelemetry {
    fn new(platform: &str, measure_label: &str) -> Self {
        let t = fbox_telemetry::global();
        if !t.enabled() {
            return Self { active: None };
        }
        Self {
            active: Some(CellTelemetryInner {
                computed: t.counter("cube.cells_computed"),
                empty: t.counter("cube.cells_empty"),
                unobserved: t.counter("cube.cells_unobserved"),
                timings: t.histogram(&format!("measure.{platform}.{measure_label}")),
                visited: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    #[inline]
    fn start(&self) -> Option<fbox_telemetry::HistogramTimer> {
        self.active.as_ref().map(|inner| inner.timings.timer())
    }

    #[inline]
    fn finish(&self, timer: Option<fbox_telemetry::HistogramTimer>, computed: bool) {
        let (Some(inner), Some(timer)) = (self.active.as_ref(), timer) else {
            return;
        };
        timer.observe();
        if computed {
            inner.computed.inc();
        } else {
            inner.empty.inc();
        }
        inner.visited.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn finish_cube(&self, cube: &UnfairnessCube) {
        if let Some(inner) = self.active.as_ref() {
            let total = (cube.n_groups() * cube.n_queries() * cube.n_locations()) as u64;
            let visited = inner.visited.load(std::sync::atomic::Ordering::Acquire);
            inner.unobserved.add(total.saturating_sub(visited));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_toy;
    use crate::unfairness::MarketMeasure;

    fn toy_fbox() -> FBox {
        let (mut universe, ranking) = paper_toy::table3_ranking();
        let q = universe.add_query("Home Cleaning", Some("General Cleaning"));
        let l = universe.add_location("San Francisco, CA", Some("West Coast"));
        let mut obs = MarketObservations::new();
        obs.insert(q, l, ranking);
        FBox::from_market(universe, &obs, MarketMeasure::exposure())
    }

    #[test]
    fn build_from_market_toy() {
        let fb = toy_fbox();
        let bf = fb.universe().group_id_by_text("gender=Female & ethnicity=Black").unwrap();
        let d = fb.unfairness(bf, QueryId(0), LocationId(0)).expect("black females have a value");
        assert!((d - 0.04).abs() < 0.005, "Figure 5 value, got {d}");
    }

    #[test]
    fn top_k_falls_back_to_naive_on_incomplete() {
        // The toy cube is complete over 1 query × 1 location × 11 groups
        // (every group has members or comparables)… verify, then poke a
        // hole via from_cube to exercise the fallback.
        let fb = toy_fbox();
        let groups = fb.top_k_groups(3, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(groups.len(), 3);

        let mut cube = fb.cube().clone();
        cube.set_opt(GroupId(0), QueryId(0), LocationId(0), None);
        let fb2 = FBox::from_cube(fb.universe().clone(), cube);
        let groups2 = fb2.top_k_groups(3, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(groups2.len(), 3);
    }

    #[test]
    fn named_accessors_resolve() {
        let fb = toy_fbox();
        assert_eq!(fb.entity_name(Dimension::Query, 0), "Home Cleaning");
        assert_eq!(fb.entity_name(Dimension::Location, 0), "San Francisco, CA");
        let locations = fb.top_k_locations(1, RankOrder::MostUnfair, &Restriction::none());
        assert_eq!(locations[0].0, "San Francisco, CA");
    }

    #[test]
    fn incremental_market_cells_match_batch_build() {
        let (mut universe, ranking) = paper_toy::table3_ranking();
        let q0 = universe.add_query("Home Cleaning", Some("General Cleaning"));
        let q1 = universe.add_query("Yard Work", Some("General Cleaning"));
        let l = universe.add_location("San Francisco, CA", Some("West Coast"));
        let mut obs = MarketObservations::new();
        obs.insert(q0, l, ranking.clone());
        obs.insert(q1, l, ranking);
        let batch = FBox::from_market(universe.clone(), &obs, MarketMeasure::exposure());

        let mut inc = FBox::empty(universe);
        // Arrival order deliberately differs from grid order.
        for (q, l) in [(q1, l), (q0, l)] {
            inc.update_market_cell(q, l, obs.get(q, l), MarketMeasure::exposure());
        }
        let a: Vec<Option<u64>> =
            inc.cube().raw_data().iter().map(|v| v.map(f64::to_bits)).collect();
        let b: Vec<Option<u64>> =
            batch.cube().raw_data().iter().map(|v| v.map(f64::to_bits)).collect();
        assert_eq!(a, b, "incremental cube must be bit-equal to the batch build");
        assert_eq!(inc.indices().is_complete(), batch.indices().is_complete());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_cube_checks_dims() {
        let fb = toy_fbox();
        let wrong = UnfairnessCube::with_dims(1, 1, 1);
        FBox::from_cube(fb.universe().clone(), wrong);
    }
}
