//! The paper's running toy examples (Tables 1–3, Figures 1–5), as reusable
//! fixtures.
//!
//! These are used by unit tests, the `quickstart` example, and the
//! `repro-figures` binary to pin the framework's arithmetic to the numbers
//! printed in the paper (most precisely Figure 5's exposure computation:
//! `0.94 / (0.94 + 4.0) = 0.19`, `0.5 / (0.5 + 2.9) = 0.15`,
//! `|0.19 − 0.15| = 0.04`).

use crate::model::{Schema, Universe, ValueId};
use crate::observations::{MarketRanking, RankedWorker, UserList};

/// Gender values of the toy schema, in [`Schema::gender_ethnicity`] order.
pub const MALE: ValueId = ValueId(0);
/// Female gender value.
pub const FEMALE: ValueId = ValueId(1);
/// Asian ethnicity value.
pub const ASIAN: ValueId = ValueId(0);
/// Black ethnicity value.
pub const BLACK: ValueId = ValueId(1);
/// White ethnicity value.
pub const WHITE: ValueId = ValueId(2);

/// Builds `[gender, ethnicity]` assignments tersely.
pub fn person(gender: ValueId, ethnicity: ValueId) -> Vec<ValueId> {
    vec![gender, ethnicity]
}

/// The universe shared by the toy examples: the gender × ethnicity schema
/// with the full 11-group lattice.
pub fn toy_universe() -> Universe {
    Universe::with_all_groups(Schema::gender_ethnicity())
}

/// Table 2's demographic assignments for workers w1…w10.
///
/// `(gender, ethnicity)` per worker; the paper also lists a nationality
/// column, which its own unfairness computations ignore (groups are built
/// from gender and ethnicity only), so it is omitted here.
pub fn table2_demographics() -> Vec<Vec<ValueId>> {
    vec![
        person(FEMALE, ASIAN), // w1
        person(MALE, WHITE),   // w2
        person(FEMALE, WHITE), // w3
        person(MALE, ASIAN),   // w4
        person(FEMALE, BLACK), // w5
        person(MALE, BLACK),   // w6
        person(FEMALE, BLACK), // w7
        person(MALE, BLACK),   // w8
        person(MALE, WHITE),   // w9
        person(FEMALE, WHITE), // w10
    ]
}

/// Table 3's ranking of the ten workers for "Home Cleaning" in San
/// Francisco, with the paper's scores `f_q^l(w)`:
/// w3 (0.9), w8 (0.8), w6 (0.7), w2 (0.6), w1 (0.5), w4 (0.4), w7 (0.3),
/// w5 (0.2), w9 (0.1), w10 (0.0).
///
/// Returns the toy universe alongside the ranking. Note the scores equal
/// the rank-derived relevance `1 − rank/10`, so Figure 4/5 arithmetic is
/// identical whether scores are taken as given or derived.
pub fn table3_ranking() -> (Universe, MarketRanking) {
    let universe = toy_universe();
    let demo = table2_demographics();
    // (worker index 0-based, rank, score)
    let rows = [
        (2usize, 1usize, 0.9), // w3
        (7, 2, 0.8),           // w8
        (5, 3, 0.7),           // w6
        (1, 4, 0.6),           // w2
        (0, 5, 0.5),           // w1
        (3, 6, 0.4),           // w4
        (6, 7, 0.3),           // w7
        (4, 8, 0.2),           // w5
        (8, 9, 0.1),           // w9
        (9, 10, 0.0),          // w10
    ];
    let workers = rows
        .iter()
        .map(|&(w, rank, score)| RankedWorker {
            assignment: demo[w].clone(),
            rank,
            score: Some(score),
        })
        .collect();
    (universe, MarketRanking::new(workers))
}

/// Table 1's top-3 search results for ten users of a search engine for
/// "Home Cleaning" in San Francisco. Result items a…e are encoded as 0…4.
///
/// The users carry the same demographic assignments as Table 2's workers,
/// which is how Figure 3 pairs "Black Female" users with "Asian Female"
/// users.
pub fn table1_lists() -> (Universe, Vec<UserList>) {
    let universe = toy_universe();
    let demo = table2_demographics();
    const A: u64 = 0;
    const B: u64 = 1;
    const C: u64 = 2;
    const D: u64 = 3;
    const E: u64 = 4;
    let tops: [[u64; 3]; 10] = [
        [B, D, E], // w1
        [D, B, E], // w2
        [A, B, C], // w3
        [B, A, C], // w4
        [A, B, C], // w5
        [D, A, B], // w6
        [A, B, D], // w7
        [D, A, B], // w8
        [A, B, C], // w9
        [A, B, C], // w10
    ];
    let lists = demo
        .into_iter()
        .zip(tops)
        .map(|(assignment, results)| UserList { assignment, results: results.to_vec() })
        .collect();
    (universe, lists)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_scores_equal_rank_relevance() {
        let (_, ranking) = table3_ranking();
        assert_eq!(ranking.len(), 10);
        for (i, w) in ranking.workers().iter().enumerate() {
            let derived = crate::measures::relevance_from_rank(w.rank, 10);
            assert!((w.score.unwrap() - derived).abs() < 1e-12);
            assert!((ranking.relevance(i) - derived).abs() < 1e-12);
        }
    }

    #[test]
    fn table2_black_females_are_w5_w7() {
        let u = toy_universe();
        let bf = u.group_id_by_text("gender=Female & ethnicity=Black").unwrap();
        let label = u.group(bf).clone();
        let demo = table2_demographics();
        let members: Vec<usize> = (0..10).filter(|&i| label.matches(&demo[i])).collect();
        assert_eq!(members, vec![4, 6]); // w5, w7 (0-based)
    }

    #[test]
    fn table1_lists_are_top3() {
        let (_, lists) = table1_lists();
        assert_eq!(lists.len(), 10);
        assert!(lists.iter().all(|l| l.results.len() == 3));
    }
}
