//! The three index families of Table 5: group-based `I(q,l)`, query-based
//! `I(g,l)`, and location-based `I(g,q)` inverted indices, pre-computed
//! from the unfairness cube for fast top-k processing.

mod posting;

pub use posting::PostingList;

use crate::cube::UnfairnessCube;
use crate::model::{GroupId, LocationId, QueryId};
use serde::{Deserialize, Serialize};

/// One of the three dimensions of the unfairness cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dimension {
    /// Demographic groups.
    Group,
    /// Job-related queries.
    Query,
    /// Geographic locations.
    Location,
}

impl Dimension {
    /// The other two dimensions, in canonical (Group, Query, Location)
    /// order.
    pub fn others(self) -> (Dimension, Dimension) {
        match self {
            Dimension::Group => (Dimension::Query, Dimension::Location),
            Dimension::Query => (Dimension::Group, Dimension::Location),
            Dimension::Location => (Dimension::Group, Dimension::Query),
        }
    }
}

/// All three index families over one unfairness cube.
///
/// For each pair of the *other* two dimensions there is one
/// [`PostingList`] ranking the indexed dimension's entities by descending
/// unfairness. Building is O(cells · log) once; every subsequent top-k
/// query runs Fagin-style on the pre-sorted lists.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexSet {
    n_groups: usize,
    n_queries: usize,
    n_locations: usize,
    /// `I(q,l)` — groups ranked; indexed by `q * n_locations + l`.
    group_lists: Vec<PostingList>,
    /// `I(g,l)` — queries ranked; indexed by `g * n_locations + l`.
    query_lists: Vec<PostingList>,
    /// `I(g,q)` — locations ranked; indexed by `g * n_queries + q`.
    location_lists: Vec<PostingList>,
    /// Present `(g,q,l)` values, maintained incrementally by
    /// [`Self::update_cell`] so completeness stays O(1).
    n_present: usize,
    complete: bool,
}

/// Pairs `(a, b)` with `a < na`, `b < nb`, in `a`-major order — the slot
/// order of one posting-list family.
fn pair_grid(na: usize, nb: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::with_capacity(na * nb);
    debug_assert!(
        na <= u32::MAX as usize && nb <= u32::MAX as usize,
        "dimension sizes must fit the u32 id space"
    );
    for a in 0..na as u32 {
        for b in 0..nb as u32 {
            pairs.push((a, b));
        }
    }
    pairs
}

/// Builds one posting-list family: the lists are chunked across
/// [`fbox_par`] workers and re-flattened in slot order, so the family is
/// identical to the serial build at any thread count.
fn build_family(
    family: &'static str,
    pairs: &[(u32, u32)],
    values_for: impl Fn(u32, u32) -> Vec<Option<f64>> + Sync,
) -> Vec<PostingList> {
    let _trace = fbox_trace::span_args("index.family", |a| {
        a.str("family", family);
        a.u64("lists", pairs.len() as u64);
    });
    // ~64 lists per unit of work: one sort each, cheap enough to batch.
    let chunks = fbox_par::par_chunks(pairs, 64, |chunk| {
        chunk.iter().map(|&(a, b)| PostingList::from_values(values_for(a, b))).collect::<Vec<_>>()
    });
    chunks.into_iter().flatten().collect()
}

impl IndexSet {
    /// Builds all three families from a cube. Each family's posting lists
    /// are built in parallel across `FBOX_THREADS` workers (deterministic:
    /// every list lands in its canonical slot regardless of thread count).
    pub fn build(cube: &UnfairnessCube) -> Self {
        let _span = fbox_telemetry::span!("index.build");
        let _trace = fbox_trace::span("index.build");
        let (ng, nq, nl) = (cube.n_groups(), cube.n_queries(), cube.n_locations());

        let group_lists = build_family("group", &pair_grid(nq, nl), |q, l| {
            (0..ng as u32).map(|g| cube.get(GroupId(g), QueryId(q), LocationId(l))).collect()
        });
        let query_lists = build_family("query", &pair_grid(ng, nl), |g, l| {
            (0..nq as u32).map(|q| cube.get(GroupId(g), QueryId(q), LocationId(l))).collect()
        });
        let location_lists = build_family("location", &pair_grid(ng, nq), |g, q| {
            (0..nl as u32).map(|l| cube.get(GroupId(g), QueryId(q), LocationId(l))).collect()
        });

        let t = fbox_telemetry::global();
        if t.enabled() {
            t.counter("index.builds").inc();
            t.counter("index.lists_built")
                .add((group_lists.len() + query_lists.len() + location_lists.len()) as u64);
        }

        let n_present = group_lists.iter().map(PostingList::len).sum();
        Self {
            n_groups: ng,
            n_queries: nq,
            n_locations: nl,
            group_lists,
            query_lists,
            location_lists,
            n_present,
            complete: n_present == ng * nq * nl,
        }
    }

    /// Delta-updates every index entry touched by cell `(q,l)` from the
    /// cube's current values, leaving the set bit-identical to
    /// [`Self::build`] over the same cube. One cell touches exactly one
    /// group list (all `n_groups` entries of `I(q,l)`) plus, per group,
    /// entry `q` of `I(g,l)` and entry `l` of `I(g,q)` — cost proportional
    /// to the dirty cell's fan-out, never to the cube.
    ///
    /// Bit-equality holds because [`PostingList::update`] reproduces the
    /// total (value desc, id asc) order exactly, and because cube cells
    /// are independent: re-deriving one cell never moves entries owned by
    /// another.
    pub fn update_cell(&mut self, cube: &UnfairnessCube, q: QueryId, l: LocationId) {
        assert_eq!(
            (cube.n_groups(), cube.n_queries(), cube.n_locations()),
            (self.n_groups, self.n_queries, self.n_locations),
            "cube dimensions changed under the index"
        );
        let slot = q.0 as usize * self.n_locations + l.0 as usize;
        let before = self.group_lists[slot].len();
        for g in 0..self.n_groups as u32 {
            let v = cube.get(GroupId(g), q, l);
            self.group_lists[slot].update(g, v);
            self.query_lists[g as usize * self.n_locations + l.0 as usize].update(q.0, v);
            self.location_lists[g as usize * self.n_queries + q.0 as usize].update(l.0, v);
        }
        let after = self.group_lists[slot].len();
        let n = self.n_present + after;
        debug_assert!(before <= n, "posting list shrank below the entries it contributed");
        self.n_present = n - before;
        self.complete = self.n_present == self.n_groups * self.n_queries * self.n_locations;
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Number of queries.
    pub fn n_queries(&self) -> usize {
        self.n_queries
    }

    /// Number of locations.
    pub fn n_locations(&self) -> usize {
        self.n_locations
    }

    /// Whether the underlying cube had every cell present.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Size of the indexed dimension.
    pub fn dim_len(&self, dim: Dimension) -> usize {
        match dim {
            Dimension::Group => self.n_groups,
            Dimension::Query => self.n_queries,
            Dimension::Location => self.n_locations,
        }
    }

    /// `I(q,l)`: groups ranked by unfairness for one query/location pair.
    pub fn group_list(&self, q: QueryId, l: LocationId) -> &PostingList {
        &self.group_lists[q.0 as usize * self.n_locations + l.0 as usize]
    }

    /// `I(g,l)`: queries ranked for one group/location pair.
    pub fn query_list(&self, g: GroupId, l: LocationId) -> &PostingList {
        &self.query_lists[g.0 as usize * self.n_locations + l.0 as usize]
    }

    /// `I(g,q)`: locations ranked for one group/query pair.
    pub fn location_list(&self, g: GroupId, q: QueryId) -> &PostingList {
        &self.location_lists[g.0 as usize * self.n_queries + q.0 as usize]
    }

    /// The posting list ranking dimension `dim` for one pair of entities of
    /// the other two dimensions, given in canonical (Group, Query,
    /// Location) order of the *remaining* dimensions:
    ///
    /// - `dim = Group` → `pair = (query, location)`
    /// - `dim = Query` → `pair = (group, location)`
    /// - `dim = Location` → `pair = (group, query)`
    pub fn list_for(&self, dim: Dimension, pair: (u32, u32)) -> &PostingList {
        match dim {
            Dimension::Group => self.group_list(QueryId(pair.0), LocationId(pair.1)),
            Dimension::Query => self.query_list(GroupId(pair.0), LocationId(pair.1)),
            Dimension::Location => self.location_list(GroupId(pair.0), QueryId(pair.1)),
        }
    }

    /// Direct cube lookup through the indices: `d⟨g,q,l⟩` via a random
    /// access on the group list (all three families agree by
    /// construction).
    pub fn value(&self, g: GroupId, q: QueryId, l: LocationId) -> Option<f64> {
        self.group_list(q, l).random_access(g.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cube() -> UnfairnessCube {
        // 2 groups × 2 queries × 2 locations with distinct values.
        let mut c = UnfairnessCube::with_dims(2, 2, 2);
        let mut v = 0.0;
        for g in 0..2u32 {
            for q in 0..2u32 {
                for l in 0..2u32 {
                    v += 0.1;
                    c.set(GroupId(g), QueryId(q), LocationId(l), v);
                }
            }
        }
        c
    }

    #[test]
    fn three_families_agree_with_cube() {
        let cube = small_cube();
        let idx = IndexSet::build(&cube);
        assert!(idx.is_complete());
        for g in 0..2u32 {
            for q in 0..2u32 {
                for l in 0..2u32 {
                    let expected = cube.get(GroupId(g), QueryId(q), LocationId(l));
                    assert_eq!(
                        idx.group_list(QueryId(q), LocationId(l)).random_access(g),
                        expected
                    );
                    assert_eq!(
                        idx.query_list(GroupId(g), LocationId(l)).random_access(q),
                        expected
                    );
                    assert_eq!(
                        idx.location_list(GroupId(g), QueryId(q)).random_access(l),
                        expected
                    );
                    assert_eq!(idx.value(GroupId(g), QueryId(q), LocationId(l)), expected);
                }
            }
        }
    }

    #[test]
    fn sorted_access_descends() {
        let cube = small_cube();
        let idx = IndexSet::build(&cube);
        for q in 0..2u32 {
            for l in 0..2u32 {
                let list = idx.group_list(QueryId(q), LocationId(l));
                let (_, top) = list.sorted_desc(0).unwrap();
                let (_, bottom) = list.sorted_desc(1).unwrap();
                assert!(top >= bottom);
            }
        }
    }

    #[test]
    fn incomplete_cube_flagged() {
        let mut c = UnfairnessCube::with_dims(1, 1, 2);
        c.set(GroupId(0), QueryId(0), LocationId(0), 0.5);
        let idx = IndexSet::build(&c);
        assert!(!idx.is_complete());
        assert_eq!(idx.group_list(QueryId(0), LocationId(1)).len(), 0);
    }

    fn assert_index_eq(a: &IndexSet, b: &IndexSet) {
        assert_eq!(a.n_present, b.n_present);
        assert_eq!(a.complete, b.complete);
        for (fa, fb) in [
            (&a.group_lists, &b.group_lists),
            (&a.query_lists, &b.query_lists),
            (&a.location_lists, &b.location_lists),
        ] {
            assert_eq!(fa.len(), fb.len());
            for (la, lb) in fa.iter().zip(fb.iter()) {
                assert_eq!(la.entries(), lb.entries());
            }
        }
    }

    #[test]
    fn update_cell_matches_full_rebuild() {
        let mut cube = UnfairnessCube::with_dims(3, 2, 2);
        let mut idx = IndexSet::build(&cube);
        assert!(!idx.is_complete());

        // Stream cells in, delta-updating after each; the index must stay
        // bit-identical to a full rebuild at every step.
        let mut v = 0.0;
        for q in 0..2u32 {
            for l in 0..2u32 {
                for g in 0..3u32 {
                    v += 0.05;
                    cube.set(GroupId(g), QueryId(q), LocationId(l), v);
                }
                idx.update_cell(&cube, QueryId(q), LocationId(l));
                assert_index_eq(&idx, &IndexSet::build(&cube));
            }
        }
        assert!(idx.is_complete());

        // Re-deriving a cell with changed values (a later epoch revises
        // it) must also match.
        cube.set(GroupId(1), QueryId(0), LocationId(1), 0.99);
        idx.update_cell(&cube, QueryId(0), LocationId(1));
        assert_index_eq(&idx, &IndexSet::build(&cube));
    }

    #[test]
    fn list_for_dispatches() {
        let cube = small_cube();
        let idx = IndexSet::build(&cube);
        assert_eq!(
            idx.list_for(Dimension::Group, (1, 1)).random_access(0),
            cube.get(GroupId(0), QueryId(1), LocationId(1))
        );
        assert_eq!(
            idx.list_for(Dimension::Query, (1, 0)).random_access(1),
            cube.get(GroupId(1), QueryId(1), LocationId(0))
        );
        assert_eq!(
            idx.list_for(Dimension::Location, (0, 1)).random_access(1),
            cube.get(GroupId(0), QueryId(1), LocationId(1))
        );
    }
}
