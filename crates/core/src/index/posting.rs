//! Inverted posting lists with sorted and random access — the two access
//! primitives Fagin-style threshold algorithms need (paper §4.2, Table 5).

use serde::{Deserialize, Serialize};

/// One inverted index: entities of a dimension sorted by descending
/// unfairness, plus an O(1) random-access side table.
///
/// Entities missing a value (missing cube cells) are absent from the list
/// and random access returns `None` for them.
///
/// Ties are broken by ascending entity id so that index construction — and
/// everything built on it — is deterministic.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct PostingList {
    /// `(entity, value)` sorted by value desc, then entity asc.
    entries: Vec<(u32, f64)>,
    /// Dense random-access table indexed by entity id.
    values: Vec<Option<f64>>,
}

impl PostingList {
    /// Builds a posting list from per-entity optional values; `values[e]`
    /// is entity `e`'s unfairness (or `None` if missing).
    ///
    /// # Panics
    ///
    /// Panics if any present value is NaN — NaN cannot be ordered.
    pub fn from_values(values: Vec<Option<f64>>) -> Self {
        let mut entries: Vec<(u32, f64)> =
            values.iter().enumerate().filter_map(|(e, v)| v.map(|v| (e as u32, v))).collect();
        assert!(entries.iter().all(|(_, v)| !v.is_nan()), "posting list values must not be NaN");
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Self { entries, values }
    }

    /// Sets entity `e`'s value to `new` (or clears it with `None`),
    /// keeping the sorted entries exact. Because ties break by ascending
    /// entity id, the list order is *total*: the updated list is
    /// bit-identical to [`Self::from_values`] over the updated value
    /// table, which is what lets the incremental store delta-update lists
    /// instead of rebuilding them (see `crates/store`).
    ///
    /// Cost is O(log n) to locate plus O(n) to shift — proportional to
    /// this one list, never to the whole cube.
    ///
    /// # Panics
    ///
    /// Panics if `new` is NaN — NaN cannot be ordered.
    pub fn update(&mut self, e: u32, new: Option<f64>) {
        if self.values.len() <= e as usize {
            self.values.resize(e as usize + 1, None);
        }
        let old = self.values[e as usize];
        if old.map(f64::to_bits) == new.map(f64::to_bits) {
            return;
        }
        // List order: value desc, then entity asc. A probe sorts before
        // the target when its value is larger, or equal with a smaller id.
        let slot = |entries: &[(u32, f64)], v: f64| {
            entries.binary_search_by(|probe| probe.1.total_cmp(&v).reverse().then(probe.0.cmp(&e)))
        };
        if let Some(v) = old {
            let pos = slot(&self.entries, v).expect("entry table and value table out of sync");
            self.entries.remove(pos);
        }
        if let Some(v) = new {
            assert!(!v.is_nan(), "posting list values must not be NaN");
            let pos = match slot(&self.entries, v) {
                Ok(pos) | Err(pos) => pos,
            };
            self.entries.insert(pos, (e, v));
        }
        self.values[e as usize] = new;
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether every entity in `0..n_entities` has a value.
    pub fn is_complete(&self, n_entities: usize) -> bool {
        self.values.len() >= n_entities && self.values[..n_entities].iter().all(Option::is_some)
    }

    /// Sorted access in *descending* unfairness order: the entry at
    /// `cursor` (0-based), or `None` past the end.
    pub fn sorted_desc(&self, cursor: usize) -> Option<(u32, f64)> {
        self.entries.get(cursor).copied()
    }

    /// Sorted access in *ascending* unfairness order (for bottom-k /
    /// "least unfair" queries).
    pub fn sorted_asc(&self, cursor: usize) -> Option<(u32, f64)> {
        if cursor >= self.entries.len() {
            return None;
        }
        self.entries.get(self.entries.len() - 1 - cursor).copied()
    }

    /// Random access: entity `e`'s value, `None` if missing.
    pub fn random_access(&self, e: u32) -> Option<f64> {
        self.values.get(e as usize).copied().flatten()
    }

    /// The raw sorted entries (descending).
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> PostingList {
        PostingList::from_values(vec![Some(0.3), None, Some(0.9), Some(0.3), Some(0.1)])
    }

    #[test]
    fn sorted_desc_orders_by_value_then_id() {
        let l = list();
        assert_eq!(l.len(), 4);
        assert_eq!(l.sorted_desc(0), Some((2, 0.9)));
        // Tie between entities 0 and 3 at 0.3 → id order.
        assert_eq!(l.sorted_desc(1), Some((0, 0.3)));
        assert_eq!(l.sorted_desc(2), Some((3, 0.3)));
        assert_eq!(l.sorted_desc(3), Some((4, 0.1)));
        assert_eq!(l.sorted_desc(4), None);
    }

    #[test]
    fn sorted_asc_is_reverse() {
        let l = list();
        assert_eq!(l.sorted_asc(0), Some((4, 0.1)));
        assert_eq!(l.sorted_asc(3), Some((2, 0.9)));
        assert_eq!(l.sorted_asc(4), None);
    }

    #[test]
    fn random_access_handles_missing() {
        let l = list();
        assert_eq!(l.random_access(2), Some(0.9));
        assert_eq!(l.random_access(1), None);
        assert_eq!(l.random_access(99), None);
    }

    #[test]
    fn completeness() {
        let l = list();
        assert!(!l.is_complete(5));
        let full = PostingList::from_values(vec![Some(0.1), Some(0.2)]);
        assert!(full.is_complete(2));
        assert!(!full.is_complete(3));
    }

    #[test]
    fn empty_list() {
        let l = PostingList::from_values(vec![]);
        assert!(l.is_empty());
        assert_eq!(l.sorted_desc(0), None);
        assert_eq!(l.sorted_asc(0), None);
    }

    #[test]
    fn update_matches_from_values_rebuild() {
        // Every single-entity transition (set, change, clear, no-op) must
        // leave the list bit-identical to a from-scratch build over the
        // same value table — the invariant the incremental store rests on.
        let starts = vec![
            vec![None, None, None, None],
            vec![Some(0.3), None, Some(0.9), Some(0.3)],
            vec![Some(0.5), Some(0.5), Some(0.5), Some(0.5)],
        ];
        let news = [None, Some(0.0), Some(0.3), Some(0.5), Some(0.9), Some(1.0)];
        for start in starts {
            for e in 0..start.len() as u32 {
                for new in news {
                    let mut values = start.clone();
                    let mut incremental = PostingList::from_values(values.clone());
                    incremental.update(e, new);
                    values[e as usize] = new;
                    let rebuilt = PostingList::from_values(values);
                    assert_eq!(incremental.entries(), rebuilt.entries());
                    for i in 0..start.len() as u32 {
                        assert_eq!(
                            incremental.random_access(i).map(f64::to_bits),
                            rebuilt.random_access(i).map(f64::to_bits)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn update_grows_the_value_table() {
        let mut l = PostingList::from_values(vec![Some(0.2)]);
        l.update(3, Some(0.7));
        assert_eq!(l.sorted_desc(0), Some((3, 0.7)));
        assert_eq!(l.random_access(3), Some(0.7));
        assert_eq!(l.random_access(2), None);
    }
}
