//! The unfairness cube: `d⟨g,q,l⟩` for every (group, query, location)
//! triple of a study, plus the aggregations of §3.4.
//!
//! Cells can be *missing* (`None`): the paper's crawls do not cover every
//! job at every location (Table 7), and a group absent from a result set
//! has no unfairness value there. Aggregations average over the present
//! cells only, exactly as `d⟨g,Q,L⟩ = avg_{q∈Q,l∈L} d⟨g,q,l⟩` does over the
//! cells that exist.

use crate::model::{GroupId, LocationId, QueryId, Universe};
use serde::{Deserialize, Serialize};

/// Dense 3-D array of unfairness values over a [`Universe`]'s dimensions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnfairnessCube {
    n_groups: usize,
    n_queries: usize,
    n_locations: usize,
    data: Vec<Option<f64>>,
}

impl UnfairnessCube {
    /// An all-missing cube with the universe's dimensions.
    pub fn empty(universe: &Universe) -> Self {
        Self::with_dims(universe.n_groups(), universe.n_queries(), universe.n_locations())
    }

    /// An all-missing cube with explicit dimensions.
    pub fn with_dims(n_groups: usize, n_queries: usize, n_locations: usize) -> Self {
        Self {
            n_groups,
            n_queries,
            n_locations,
            data: vec![None; n_groups * n_queries * n_locations],
        }
    }

    fn offset(&self, g: GroupId, q: QueryId, l: LocationId) -> usize {
        let (g, q, l) = (g.0 as usize, q.0 as usize, l.0 as usize);
        assert!(g < self.n_groups, "group id {g} out of range");
        assert!(q < self.n_queries, "query id {q} out of range");
        assert!(l < self.n_locations, "location id {l} out of range");
        (g * self.n_queries + q) * self.n_locations + l
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Number of queries.
    pub fn n_queries(&self) -> usize {
        self.n_queries
    }

    /// Number of locations.
    pub fn n_locations(&self) -> usize {
        self.n_locations
    }

    /// Sets `d⟨g,q,l⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite or not in `[0, 1]` — every measure
    /// in this framework is normalized, so anything else is a bug upstream.
    pub fn set(&mut self, g: GroupId, q: QueryId, l: LocationId, value: f64) {
        assert!(
            value.is_finite() && (0.0..=1.0).contains(&value),
            "unfairness value {value} out of [0,1]"
        );
        let o = self.offset(g, q, l);
        self.data[o] = Some(value);
    }

    /// Sets or clears a cell from an optional measure result.
    pub fn set_opt(&mut self, g: GroupId, q: QueryId, l: LocationId, value: Option<f64>) {
        match value {
            Some(v) => {
                assert!(
                    v.is_finite() && (0.0..=1.0).contains(&v),
                    "unfairness value {v} out of [0,1]"
                );
                self.set(g, q, l, v);
            }
            None => {
                let o = self.offset(g, q, l);
                self.data[o] = None;
            }
        }
    }

    /// Reads `d⟨g,q,l⟩`, `None` if missing.
    pub fn get(&self, g: GroupId, q: QueryId, l: LocationId) -> Option<f64> {
        self.data[self.offset(g, q, l)]
    }

    /// Whether every cell holds a value. The threshold algorithm
    /// ([`crate::algo::topk`]) requires a complete cube.
    pub fn is_complete(&self) -> bool {
        self.data.iter().all(Option::is_some)
    }

    /// Fraction of cells with a value.
    pub fn coverage(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|c| c.is_some()).count() as f64 / self.data.len() as f64
    }

    /// `d⟨g,Q,L⟩` (§3.4): mean over the present cells of `g` across the
    /// given query and location sets. `None` if no cell is present.
    pub fn avg_group(
        &self,
        g: GroupId,
        queries: &[QueryId],
        locations: &[LocationId],
    ) -> Option<f64> {
        self.mean(queries.iter().flat_map(|&q| locations.iter().map(move |&l| self.get(g, q, l))))
    }

    /// `d⟨G,q,L⟩` (§3.4): mean for one query across group and location sets.
    pub fn avg_query(
        &self,
        q: QueryId,
        groups: &[GroupId],
        locations: &[LocationId],
    ) -> Option<f64> {
        self.mean(groups.iter().flat_map(|&g| locations.iter().map(move |&l| self.get(g, q, l))))
    }

    /// `d⟨G,Q,l⟩` (§3.4): mean for one location across group and query sets.
    pub fn avg_location(
        &self,
        l: LocationId,
        groups: &[GroupId],
        queries: &[QueryId],
    ) -> Option<f64> {
        self.mean(groups.iter().flat_map(|&g| queries.iter().map(move |&q| self.get(g, q, l))))
    }

    fn mean(&self, cells: impl Iterator<Item = Option<f64>>) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in cells.flatten() {
            sum += c;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// The raw dense cell array in `(g * n_queries + q) * n_locations + l`
    /// offset order. This is the layout the `fbox-store` snapshot codec
    /// serializes and the layout bit-equality tests compare, so it is part
    /// of the crate's stability surface.
    pub fn raw_data(&self) -> &[Option<f64>] {
        &self.data
    }

    /// Iterates over all present cells.
    pub fn cells(&self) -> impl Iterator<Item = (GroupId, QueryId, LocationId, f64)> + '_ {
        self.data.iter().enumerate().filter_map(move |(o, v)| {
            let v = (*v)?;
            let l = o % self.n_locations;
            let q = (o / self.n_locations) % self.n_queries;
            let g = o / (self.n_locations * self.n_queries);
            Some((GroupId(g as u32), QueryId(q as u32), LocationId(l as u32), v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> (Vec<GroupId>, Vec<QueryId>, Vec<LocationId>) {
        (
            (0..n).map(GroupId).collect(),
            (0..n).map(QueryId).collect(),
            (0..n).map(LocationId).collect(),
        )
    }

    #[test]
    fn set_get_roundtrip() {
        let mut c = UnfairnessCube::with_dims(2, 3, 4);
        assert_eq!(c.get(GroupId(0), QueryId(0), LocationId(0)), None);
        c.set(GroupId(1), QueryId(2), LocationId(3), 0.5);
        assert_eq!(c.get(GroupId(1), QueryId(2), LocationId(3)), Some(0.5));
        // Neighbours untouched.
        assert_eq!(c.get(GroupId(1), QueryId(2), LocationId(2)), None);
        assert_eq!(c.get(GroupId(0), QueryId(2), LocationId(3)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_ids_rejected() {
        let c = UnfairnessCube::with_dims(2, 2, 2);
        c.get(GroupId(2), QueryId(0), LocationId(0));
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn out_of_range_values_rejected() {
        let mut c = UnfairnessCube::with_dims(1, 1, 1);
        c.set(GroupId(0), QueryId(0), LocationId(0), 1.5);
    }

    #[test]
    fn averages_skip_missing_cells() {
        let mut c = UnfairnessCube::with_dims(1, 2, 2);
        let g = GroupId(0);
        c.set(g, QueryId(0), LocationId(0), 0.2);
        c.set(g, QueryId(1), LocationId(1), 0.6);
        // Two of four cells missing → mean of the present two.
        let (_, qs, ls) = ids(2);
        let avg = c.avg_group(g, &qs[..2], &ls[..2]).unwrap();
        assert!((avg - 0.4).abs() < 1e-12);
    }

    #[test]
    fn averages_none_when_all_missing() {
        let c = UnfairnessCube::with_dims(1, 1, 1);
        assert_eq!(c.avg_group(GroupId(0), &[QueryId(0)], &[LocationId(0)]), None);
    }

    #[test]
    fn restricted_aggregation() {
        let mut c = UnfairnessCube::with_dims(2, 2, 2);
        for g in 0..2 {
            for q in 0..2 {
                for l in 0..2 {
                    c.set(GroupId(g), QueryId(q), LocationId(l), (g + q + l) as f64 / 10.0);
                }
            }
        }
        // Restrict to q=1, l∈{0,1} for g=0: cells 0.1 and 0.2.
        let avg = c.avg_group(GroupId(0), &[QueryId(1)], &[LocationId(0), LocationId(1)]).unwrap();
        assert!((avg - 0.15).abs() < 1e-12);
        // avg_query over both groups at l=0, q=1: (0.1 + 0.2)/2.
        let avg_q = c.avg_query(QueryId(1), &[GroupId(0), GroupId(1)], &[LocationId(0)]).unwrap();
        assert!((avg_q - 0.15).abs() < 1e-12);
        // avg_location over both groups, both queries at l=1.
        let avg_l = c
            .avg_location(LocationId(1), &[GroupId(0), GroupId(1)], &[QueryId(0), QueryId(1)])
            .unwrap();
        assert!((avg_l - (0.1 + 0.2 + 0.2 + 0.3) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn completeness_and_coverage() {
        let mut c = UnfairnessCube::with_dims(1, 1, 2);
        assert!(!c.is_complete());
        assert_eq!(c.coverage(), 0.0);
        c.set(GroupId(0), QueryId(0), LocationId(0), 0.5);
        assert!((c.coverage() - 0.5).abs() < 1e-12);
        c.set(GroupId(0), QueryId(0), LocationId(1), 0.7);
        assert!(c.is_complete());
    }

    #[test]
    fn cells_iterator_roundtrips() {
        let mut c = UnfairnessCube::with_dims(2, 3, 4);
        c.set(GroupId(1), QueryId(2), LocationId(3), 0.25);
        c.set(GroupId(0), QueryId(0), LocationId(0), 0.75);
        let cells: Vec<_> = c.cells().collect();
        assert_eq!(cells.len(), 2);
        assert!(cells.contains(&(GroupId(1), QueryId(2), LocationId(3), 0.25)));
        assert!(cells.contains(&(GroupId(0), QueryId(0), LocationId(0), 0.75)));
    }

    #[test]
    fn set_opt_clears() {
        let mut c = UnfairnessCube::with_dims(1, 1, 1);
        c.set(GroupId(0), QueryId(0), LocationId(0), 0.5);
        c.set_opt(GroupId(0), QueryId(0), LocationId(0), None);
        assert_eq!(c.get(GroupId(0), QueryId(0), LocationId(0)), None);
    }
}
