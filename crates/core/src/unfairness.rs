//! The unfairness value `d⟨g,q,l⟩` for one cell, for both site types
//! (paper §3.2–3.3).
//!
//! Both drivers follow Eq. 1/2: contrast group `g` against each of its
//! *comparable groups* and average. Cells where `g` or every comparable
//! group lacks data yield `None` — unfairness against nobody is undefined,
//! and the aggregation layer treats such cells as missing.

use crate::measures::{self, exposure_unfairness, BinConfig, DiscountModel, Histogram};
use crate::model::{GroupId, Universe};
use crate::observations::{MarketRanking, UserList};
use serde::{Deserialize, Serialize};

/// List-distance choice for search-engine unfairness (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchMeasure {
    /// Fagin `K^(p)` Kendall-Tau distance between top-k lists.
    KendallTopK {
        /// Penalty for pairs whose relative order is unknowable; the
        /// framework defaults to the neutral `0.5`.
        penalty: f64,
    },
    /// Jaccard distance (1 − Jaccard index) between result sets.
    JaccardDistance,
}

impl SearchMeasure {
    /// The default Kendall variant (`p = 0.5`).
    pub fn kendall() -> Self {
        SearchMeasure::KendallTopK { penalty: 0.5 }
    }

    /// Distance between two users' result lists.
    pub fn distance(&self, a: &[u64], b: &[u64]) -> f64 {
        match *self {
            SearchMeasure::KendallTopK { penalty } => {
                assert!(
                    penalty.is_finite() && (0.0..=1.0).contains(&penalty),
                    "kendall penalty {penalty} out of [0,1]"
                );
                measures::kendall::top_k_distance(a, b, penalty)
            }
            SearchMeasure::JaccardDistance => measures::jaccard::distance(a, b),
        }
    }

    /// Stable identifier used in telemetry metric names
    /// (`measure.search.<label>`).
    pub fn label(&self) -> &'static str {
        match self {
            SearchMeasure::KendallTopK { .. } => "kendall_top_k",
            SearchMeasure::JaccardDistance => "jaccard",
        }
    }
}

/// Distribution-distance choice for marketplace unfairness (Eq. 2 /
/// §3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MarketMeasure {
    /// Earth Mover's Distance between relevance histograms, normalized to
    /// `[0, 1]`.
    Emd {
        /// Number of histogram bins over the `[0, 1]` relevance range.
        bins: usize,
    },
    /// Exposure-vs-relevance share deviation.
    Exposure {
        /// Position-discount model (the paper uses natural log).
        model: DiscountModel,
    },
}

impl MarketMeasure {
    /// The paper's EMD configuration: ten bins over `[0, 1]`.
    pub fn emd() -> Self {
        MarketMeasure::Emd { bins: 10 }
    }

    /// The paper's exposure configuration: natural-log discount.
    pub fn exposure() -> Self {
        MarketMeasure::Exposure { model: DiscountModel::NaturalLog }
    }

    /// Stable identifier used in telemetry metric names
    /// (`measure.market.<label>`).
    pub fn label(&self) -> &'static str {
        match self {
            MarketMeasure::Emd { .. } => "emd",
            MarketMeasure::Exposure { .. } => "exposure",
        }
    }
}

/// Search-engine unfairness `d⟨g,q,l⟩` (Eq. 1): for each comparable group
/// `g'`, average the list distance over all user pairs `(u ∈ g, u' ∈ g')`,
/// then average over comparable groups.
///
/// Returns `None` when `g` has no users in the sample or no comparable
/// group does.
pub fn search_cell_unfairness(
    universe: &Universe,
    lists: &[UserList],
    g: GroupId,
    measure: SearchMeasure,
) -> Option<f64> {
    let g_label = universe.group(g);
    let members: Vec<&UserList> = lists.iter().filter(|u| g_label.matches(&u.assignment)).collect();
    if members.is_empty() {
        return None;
    }

    let mut per_group = Vec::new();
    for g_cmp in universe.comparable_group_ids(g) {
        let cmp_label = universe.group(g_cmp);
        let others: Vec<&UserList> =
            lists.iter().filter(|u| cmp_label.matches(&u.assignment)).collect();
        if others.is_empty() {
            continue;
        }
        let mut sum = 0.0;
        let mut n = 0usize;
        for u in &members {
            for v in &others {
                sum += measure.distance(&u.results, &v.results);
                n += 1;
            }
        }
        if n == 0 {
            continue; // no member pairs: skip rather than average a NaN
        }
        per_group.push(sum / n as f64);
    }
    average(&per_group)
}

/// Marketplace unfairness `d⟨g,q,l⟩` for one crawled ranking.
///
/// - [`MarketMeasure::Emd`] (Eq. 2): normalized EMD between the relevance
///   histogram of `g` and each comparable group's, averaged.
/// - [`MarketMeasure::Exposure`] (§3.3.2): deviation between `g`'s exposure
///   share and relevance share over the pool `g ∪ comparables(g)`.
///
/// Returns `None` when `g` has no workers in the ranking or no comparable
/// group does.
pub fn market_cell_unfairness(
    universe: &Universe,
    ranking: &MarketRanking,
    g: GroupId,
    measure: MarketMeasure,
) -> Option<f64> {
    match measure {
        MarketMeasure::Emd { bins } => market_emd(universe, ranking, g, bins),
        MarketMeasure::Exposure { model } => market_exposure(universe, ranking, g, model),
    }
}

fn market_emd(
    universe: &Universe,
    ranking: &MarketRanking,
    g: GroupId,
    bins: usize,
) -> Option<f64> {
    let cfg = BinConfig::unit(bins);
    let g_hist = group_histogram(universe, ranking, g, cfg);
    if g_hist.is_empty() {
        return None;
    }
    let mut dists = Vec::new();
    for g_cmp in universe.comparable_group_ids(g) {
        let h = group_histogram(universe, ranking, g_cmp, cfg);
        if let Some(d) = measures::emd_1d_normalized(&g_hist, &h) {
            dists.push(d);
        }
    }
    average(&dists)
}

fn group_histogram(
    universe: &Universe,
    ranking: &MarketRanking,
    g: GroupId,
    cfg: BinConfig,
) -> Histogram {
    let label = universe.group(g);
    let mut h = Histogram::empty(cfg);
    for (i, w) in ranking.workers().iter().enumerate() {
        if label.matches(&w.assignment) {
            h.add(ranking.relevance(i));
        }
    }
    h
}

fn market_exposure(
    universe: &Universe,
    ranking: &MarketRanking,
    g: GroupId,
    model: DiscountModel,
) -> Option<f64> {
    let g_label = universe.group(g);
    let comparables: Vec<_> =
        universe.comparable_group_ids(g).into_iter().map(|c| universe.group(c).clone()).collect();
    if comparables.is_empty() {
        return None;
    }

    let (mut g_exp, mut g_rel) = (0.0f64, 0.0f64);
    let (mut pool_exp, mut pool_rel) = (0.0f64, 0.0f64);
    let mut g_seen = false;
    let mut cmp_seen = false;
    for (i, w) in ranking.workers().iter().enumerate() {
        let in_g = g_label.matches(&w.assignment);
        let in_cmp = comparables.iter().any(|c| c.matches(&w.assignment));
        if !in_g && !in_cmp {
            continue;
        }
        let exp = model.exposure(w.rank);
        let rel = ranking.relevance(i);
        pool_exp += exp;
        pool_rel += rel;
        if in_g {
            g_exp += exp;
            g_rel += rel;
            g_seen = true;
        }
        if in_cmp {
            cmp_seen = true;
        }
    }
    if !g_seen || !cmp_seen {
        return None;
    }
    exposure_unfairness(g_exp, pool_exp, g_rel, pool_rel)
}

fn average(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// The comparability structure of a universe — each group's comparable
/// group ids — resolved once per cube build and shared read-only across
/// the build workers.
///
/// [`search_cell_unfairness`] and [`market_cell_unfairness`] re-resolve
/// this per `(cell, group)` call (label lookups, hash probes, label-vector
/// clones); over the 5,361-cell TaskRabbit grid that is ~59k redundant
/// resolutions of an 11-row table. The context hoists it to one.
#[derive(Debug)]
pub struct MeasureContext<'u> {
    universe: &'u Universe,
    /// `comparables[g]` in the exact order [`Universe::comparable_group_ids`]
    /// returns, so cached evaluation visits groups in the reference order.
    comparables: Vec<Vec<GroupId>>,
}

impl<'u> MeasureContext<'u> {
    /// Resolves the comparability structure of `universe`.
    pub fn new(universe: &'u Universe) -> Self {
        let comparables = universe.group_ids().map(|g| universe.comparable_group_ids(g)).collect();
        Self { universe, comparables }
    }

    /// The underlying universe.
    pub fn universe(&self) -> &'u Universe {
        self.universe
    }

    /// The comparable groups of `g`, in reference order.
    pub fn comparables(&self, g: GroupId) -> &[GroupId] {
        &self.comparables[g.0 as usize]
    }
}

/// All-groups evaluator for one search cell: computes `d⟨g,q,l⟩` for every
/// registered group over one `(q, l)` sample, sharing work the per-group
/// reference function recomputes —
///
/// - group membership of each user list is decided once per `(group,
///   list)` instead of once per `(group, comparable, list)`;
/// - pairwise list distances are memoized per **ordered** `(u, u')` index
///   pair. Overlapping groups (every user is in a gender, an ethnicity,
///   and a full lattice group) request many ordered pairs repeatedly; the
///   ordered key keeps each cached value the exact `f64` the reference
///   computes, without assuming the distance is bitwise symmetric
///   (Kendall's `K^(p)` sums penalties in union order, which swaps with
///   its arguments).
///
/// Equivalence contract, enforced by tests and the parallel-determinism
/// property suite: `eval.group(g)` is bit-for-bit identical to
/// [`search_cell_unfairness`]`(universe, lists, g, measure)`.
#[derive(Debug)]
pub struct SearchCellEval<'a, 'u> {
    ctx: &'a MeasureContext<'u>,
    lists: &'a [UserList],
    measure: SearchMeasure,
    /// Per group: indices into `lists` of its members, in list order.
    members: Vec<Vec<u32>>,
    /// Memoized `measure.distance(lists[i], lists[j])` keyed by `(i, j)`.
    distances: std::collections::HashMap<(u32, u32), f64>,
}

impl<'a, 'u> SearchCellEval<'a, 'u> {
    /// Prepares the evaluator: one membership pass per group.
    pub fn new(ctx: &'a MeasureContext<'u>, lists: &'a [UserList], measure: SearchMeasure) -> Self {
        let members = ctx
            .universe
            .group_ids()
            .map(|g| {
                let label = ctx.universe.group(g);
                lists
                    .iter()
                    .enumerate()
                    .filter_map(|(i, u)| label.matches(&u.assignment).then_some(i as u32))
                    .collect()
            })
            .collect();
        Self { ctx, lists, measure, members, distances: std::collections::HashMap::new() }
    }

    /// `d⟨g,q,l⟩` for this cell — bit-identical to the reference.
    pub fn group(&mut self, g: GroupId) -> Option<f64> {
        let Self { ctx, lists, measure, members, distances } = self;
        let g_members = &members[g.0 as usize];
        if g_members.is_empty() {
            return None;
        }
        let mut per_group = Vec::new();
        for &g_cmp in ctx.comparables(g) {
            let others = &members[g_cmp.0 as usize];
            if others.is_empty() {
                continue;
            }
            let mut sum = 0.0;
            let mut n = 0usize;
            for &ui in g_members {
                for &vi in others {
                    let d = *distances.entry((ui, vi)).or_insert_with(|| {
                        measure.distance(&lists[ui as usize].results, &lists[vi as usize].results)
                    });
                    sum += d;
                    n += 1;
                }
            }
            if n == 0 {
                continue; // no member pairs: skip rather than average a NaN
            }
            per_group.push(sum / n as f64);
        }
        average(&per_group)
    }
}

/// All-groups evaluator for one marketplace cell — the market counterpart
/// of [`SearchCellEval`], sharing per-cell work across the group loop:
///
/// - group membership of each ranked worker is decided once per group
///   (the reference re-matches per comparable);
/// - per-worker exposure (`model.exposure(rank)`, a log) and relevance
///   are computed once per cell instead of once per group;
/// - for EMD, each group's relevance histogram is built once and pairwise
///   distances are memoized under an **unordered** key —
///   [`measures::emd_1d_normalized`] is bitwise symmetric (`|x − y|` per
///   bin in fixed bin order), so `(g, g')` and `(g', g)` share one entry.
///
/// Equivalence contract: `eval.group(g)` is bit-for-bit identical to
/// [`market_cell_unfairness`]`(universe, ranking, g, measure)`.
#[derive(Debug)]
pub struct MarketCellEval<'a, 'u> {
    ctx: &'a MeasureContext<'u>,
    measure: MarketMeasure,
    /// `membership[g][i]`: whether ranked worker `i` is in group `g`.
    membership: Vec<Vec<bool>>,
    /// Per worker `model.exposure(rank)` (exposure measure only).
    exposures: Vec<f64>,
    /// Per worker relevance (exposure measure only).
    relevances: Vec<f64>,
    /// Per group relevance histogram (EMD measure only).
    histograms: Vec<Histogram>,
    /// Memoized normalized EMD keyed by unordered group id pair.
    emd_cache: std::collections::HashMap<(u32, u32), Option<f64>>,
}

impl<'a, 'u> MarketCellEval<'a, 'u> {
    /// Prepares the evaluator: membership masks plus the per-measure
    /// shared tables.
    pub fn new(
        ctx: &'a MeasureContext<'u>,
        ranking: &'a MarketRanking,
        measure: MarketMeasure,
    ) -> Self {
        let membership: Vec<Vec<bool>> = ctx
            .universe
            .group_ids()
            .map(|g| {
                let label = ctx.universe.group(g);
                ranking.workers().iter().map(|w| label.matches(&w.assignment)).collect()
            })
            .collect();
        let (mut exposures, mut relevances, mut histograms) = (Vec::new(), Vec::new(), Vec::new());
        match measure {
            MarketMeasure::Exposure { model } => {
                exposures = ranking.workers().iter().map(|w| model.exposure(w.rank)).collect();
                relevances = (0..ranking.len()).map(|i| ranking.relevance(i)).collect();
            }
            MarketMeasure::Emd { bins } => {
                let cfg = BinConfig::unit(bins);
                histograms = membership
                    .iter()
                    .map(|mask| {
                        let mut h = Histogram::empty(cfg);
                        for (i, &in_g) in mask.iter().enumerate() {
                            if in_g {
                                h.add(ranking.relevance(i));
                            }
                        }
                        h
                    })
                    .collect();
            }
        }
        Self {
            ctx,
            measure,
            membership,
            exposures,
            relevances,
            histograms,
            emd_cache: std::collections::HashMap::new(),
        }
    }

    /// `d⟨g,q,l⟩` for this cell — bit-identical to the reference.
    pub fn group(&mut self, g: GroupId) -> Option<f64> {
        match self.measure {
            MarketMeasure::Emd { .. } => self.group_emd(g),
            MarketMeasure::Exposure { .. } => self.group_exposure(g),
        }
    }

    fn group_emd(&mut self, g: GroupId) -> Option<f64> {
        let g_hist = &self.histograms[g.0 as usize];
        if g_hist.is_empty() {
            return None;
        }
        let mut dists = Vec::new();
        for &g_cmp in self.ctx.comparables(g) {
            let key = (g.0.min(g_cmp.0), g.0.max(g_cmp.0));
            let (histograms, emd_cache) = (&self.histograms, &mut self.emd_cache);
            let d = *emd_cache.entry(key).or_insert_with(|| {
                measures::emd_1d_normalized(
                    &histograms[g.0 as usize],
                    &histograms[g_cmp.0 as usize],
                )
            });
            if let Some(d) = d {
                dists.push(d);
            }
        }
        average(&dists)
    }

    fn group_exposure(&self, g: GroupId) -> Option<f64> {
        let comparables = self.ctx.comparables(g);
        if comparables.is_empty() {
            return None;
        }
        let g_mask = &self.membership[g.0 as usize];
        let (mut g_exp, mut g_rel) = (0.0f64, 0.0f64);
        let (mut pool_exp, mut pool_rel) = (0.0f64, 0.0f64);
        let mut g_seen = false;
        let mut cmp_seen = false;
        for (i, &in_g) in g_mask.iter().enumerate() {
            let in_cmp = comparables.iter().any(|&c| self.membership[c.0 as usize][i]);
            if !in_g && !in_cmp {
                continue;
            }
            let exp = self.exposures[i];
            let rel = self.relevances[i];
            pool_exp += exp;
            pool_rel += rel;
            if in_g {
                g_exp += exp;
                g_rel += rel;
                g_seen = true;
            }
            if in_cmp {
                cmp_seen = true;
            }
        }
        if !g_seen || !cmp_seen {
            return None;
        }
        exposure_unfairness(g_exp, pool_exp, g_rel, pool_rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Schema;
    use crate::observations::RankedWorker;
    use crate::paper_toy;

    /// Search sample with two distinguishable groups.
    fn two_group_lists(identical: bool) -> (Universe, Vec<UserList>) {
        let universe = Universe::with_all_groups(Schema::gender_ethnicity());
        // assignment = [gender, ethnicity]; Male=0/Female=1; Asian=0.
        let male = vec![crate::model::ValueId(0), crate::model::ValueId(0)];
        let female = vec![crate::model::ValueId(1), crate::model::ValueId(0)];
        let list_a = vec![1, 2, 3];
        let list_b = if identical { vec![1, 2, 3] } else { vec![7, 8, 9] };
        let lists = vec![
            UserList { assignment: male.clone(), results: list_a.clone() },
            UserList { assignment: male, results: list_a.clone() },
            UserList { assignment: female.clone(), results: list_b.clone() },
            UserList { assignment: female, results: list_b },
        ];
        (universe, lists)
    }

    #[test]
    fn identical_lists_are_perfectly_fair() {
        let (u, lists) = two_group_lists(true);
        let male = u.group_id_by_text("gender=Male").unwrap();
        for m in [SearchMeasure::kendall(), SearchMeasure::JaccardDistance] {
            let d = search_cell_unfairness(&u, &lists, male, m).unwrap();
            assert!(d.abs() < 1e-12, "{m:?} gave {d}");
        }
    }

    #[test]
    fn disjoint_lists_are_maximally_unfair() {
        let (u, lists) = two_group_lists(false);
        let male = u.group_id_by_text("gender=Male").unwrap();
        for m in [SearchMeasure::kendall(), SearchMeasure::JaccardDistance] {
            let d = search_cell_unfairness(&u, &lists, male, m).unwrap();
            assert!((d - 1.0).abs() < 1e-12, "{m:?} gave {d}");
        }
    }

    #[test]
    fn missing_group_yields_none() {
        let (u, lists) = two_group_lists(true);
        // No Black users in the sample.
        let black = u.group_id_by_text("ethnicity=Black").unwrap();
        assert_eq!(search_cell_unfairness(&u, &lists, black, SearchMeasure::JaccardDistance), None);
    }

    #[test]
    fn figure5_exposure_value_reproduced() {
        // The paper's Figure 5: Black Females in the Table 3 ranking have
        // exposure unfairness ≈ 0.04.
        let (universe, ranking) = paper_toy::table3_ranking();
        let bf = universe.group_id_by_text("gender=Female & ethnicity=Black").unwrap();
        let d = market_cell_unfairness(&universe, &ranking, bf, MarketMeasure::exposure()).unwrap();
        assert!((d - 0.04).abs() < 0.005, "got {d}");
    }

    #[test]
    fn emd_zero_for_interleaved_groups() {
        // Alternating Male/Female down the ranking → near-identical
        // relevance histograms → EMD ≈ 0.
        let universe = Universe::with_all_groups(Schema::gender_ethnicity());
        let workers: Vec<RankedWorker> = (1..=10)
            .map(|rank| RankedWorker {
                assignment: vec![
                    crate::model::ValueId((rank % 2) as u16),
                    crate::model::ValueId(0),
                ],
                rank,
                score: None,
            })
            .collect();
        let ranking = MarketRanking::new(workers);
        let male = universe.group_id_by_text("gender=Male").unwrap();
        let d = market_cell_unfairness(&universe, &ranking, male, MarketMeasure::emd()).unwrap();
        assert!(d < 0.15, "interleaved groups should be nearly fair, got {d}");
    }

    #[test]
    fn emd_large_for_segregated_groups() {
        // All Males on top, all Females at the bottom.
        let universe = Universe::with_all_groups(Schema::gender_ethnicity());
        let workers: Vec<RankedWorker> = (1..=10)
            .map(|rank| RankedWorker {
                assignment: vec![
                    crate::model::ValueId(if rank <= 5 { 0 } else { 1 }),
                    crate::model::ValueId(0),
                ],
                rank,
                score: None,
            })
            .collect();
        let ranking = MarketRanking::new(workers);
        let male = universe.group_id_by_text("gender=Male").unwrap();
        let d = market_cell_unfairness(&universe, &ranking, male, MarketMeasure::emd()).unwrap();
        assert!(d > 0.4, "segregated groups should be clearly unfair, got {d}");
    }

    #[test]
    fn search_cell_eval_matches_reference_bit_for_bit() {
        for identical in [true, false] {
            let (u, lists) = two_group_lists(identical);
            let ctx = MeasureContext::new(&u);
            for m in [SearchMeasure::kendall(), SearchMeasure::JaccardDistance] {
                let mut eval = SearchCellEval::new(&ctx, &lists, m);
                for g in u.group_ids() {
                    let fast = eval.group(g);
                    let reference = search_cell_unfairness(&u, &lists, g, m);
                    assert_eq!(
                        fast.map(f64::to_bits),
                        reference.map(f64::to_bits),
                        "{m:?} group {g:?} identical={identical}"
                    );
                }
            }
        }
    }

    #[test]
    fn market_cell_eval_matches_reference_bit_for_bit() {
        let (u, ranking) = paper_toy::table3_ranking();
        let ctx = MeasureContext::new(&u);
        for m in [MarketMeasure::emd(), MarketMeasure::exposure()] {
            let mut eval = MarketCellEval::new(&ctx, &ranking, m);
            for g in u.group_ids() {
                let fast = eval.group(g);
                let reference = market_cell_unfairness(&u, &ranking, g, m);
                assert_eq!(
                    fast.map(f64::to_bits),
                    reference.map(f64::to_bits),
                    "{m:?} group {g:?}"
                );
            }
        }
    }

    #[test]
    fn exposure_none_when_group_absent() {
        let universe = Universe::with_all_groups(Schema::gender_ethnicity());
        let workers = vec![RankedWorker {
            assignment: vec![crate::model::ValueId(0), crate::model::ValueId(0)],
            rank: 1,
            score: None,
        }];
        let ranking = MarketRanking::new(workers);
        let female = universe.group_id_by_text("gender=Female").unwrap();
        assert_eq!(
            market_cell_unfairness(&universe, &ranking, female, MarketMeasure::exposure()),
            None
        );
    }
}
