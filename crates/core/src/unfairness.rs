//! The unfairness value `d⟨g,q,l⟩` for one cell, for both site types
//! (paper §3.2–3.3).
//!
//! Both drivers follow Eq. 1/2: contrast group `g` against each of its
//! *comparable groups* and average. Cells where `g` or every comparable
//! group lacks data yield `None` — unfairness against nobody is undefined,
//! and the aggregation layer treats such cells as missing.

use crate::measures::{self, exposure_unfairness, BinConfig, DiscountModel, Histogram};
use crate::model::{GroupId, Universe};
use crate::observations::{MarketRanking, UserList};
use serde::{Deserialize, Serialize};

/// List-distance choice for search-engine unfairness (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchMeasure {
    /// Fagin `K^(p)` Kendall-Tau distance between top-k lists.
    KendallTopK {
        /// Penalty for pairs whose relative order is unknowable; the
        /// framework defaults to the neutral `0.5`.
        penalty: f64,
    },
    /// Jaccard distance (1 − Jaccard index) between result sets.
    JaccardDistance,
}

impl SearchMeasure {
    /// The default Kendall variant (`p = 0.5`).
    pub fn kendall() -> Self {
        SearchMeasure::KendallTopK { penalty: 0.5 }
    }

    /// Distance between two users' result lists.
    pub fn distance(&self, a: &[u64], b: &[u64]) -> f64 {
        match *self {
            SearchMeasure::KendallTopK { penalty } => {
                measures::kendall::top_k_distance(a, b, penalty)
            }
            SearchMeasure::JaccardDistance => measures::jaccard::distance(a, b),
        }
    }

    /// Stable identifier used in telemetry metric names
    /// (`measure.search.<label>`).
    pub fn label(&self) -> &'static str {
        match self {
            SearchMeasure::KendallTopK { .. } => "kendall_top_k",
            SearchMeasure::JaccardDistance => "jaccard",
        }
    }
}

/// Distribution-distance choice for marketplace unfairness (Eq. 2 /
/// §3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MarketMeasure {
    /// Earth Mover's Distance between relevance histograms, normalized to
    /// `[0, 1]`.
    Emd {
        /// Number of histogram bins over the `[0, 1]` relevance range.
        bins: usize,
    },
    /// Exposure-vs-relevance share deviation.
    Exposure {
        /// Position-discount model (the paper uses natural log).
        model: DiscountModel,
    },
}

impl MarketMeasure {
    /// The paper's EMD configuration: ten bins over `[0, 1]`.
    pub fn emd() -> Self {
        MarketMeasure::Emd { bins: 10 }
    }

    /// The paper's exposure configuration: natural-log discount.
    pub fn exposure() -> Self {
        MarketMeasure::Exposure { model: DiscountModel::NaturalLog }
    }

    /// Stable identifier used in telemetry metric names
    /// (`measure.market.<label>`).
    pub fn label(&self) -> &'static str {
        match self {
            MarketMeasure::Emd { .. } => "emd",
            MarketMeasure::Exposure { .. } => "exposure",
        }
    }
}

/// Search-engine unfairness `d⟨g,q,l⟩` (Eq. 1): for each comparable group
/// `g'`, average the list distance over all user pairs `(u ∈ g, u' ∈ g')`,
/// then average over comparable groups.
///
/// Returns `None` when `g` has no users in the sample or no comparable
/// group does.
pub fn search_cell_unfairness(
    universe: &Universe,
    lists: &[UserList],
    g: GroupId,
    measure: SearchMeasure,
) -> Option<f64> {
    let g_label = universe.group(g);
    let members: Vec<&UserList> = lists.iter().filter(|u| g_label.matches(&u.assignment)).collect();
    if members.is_empty() {
        return None;
    }

    let mut per_group = Vec::new();
    for g_cmp in universe.comparable_group_ids(g) {
        let cmp_label = universe.group(g_cmp);
        let others: Vec<&UserList> =
            lists.iter().filter(|u| cmp_label.matches(&u.assignment)).collect();
        if others.is_empty() {
            continue;
        }
        let mut sum = 0.0;
        let mut n = 0usize;
        for u in &members {
            for v in &others {
                sum += measure.distance(&u.results, &v.results);
                n += 1;
            }
        }
        per_group.push(sum / n as f64);
    }
    average(&per_group)
}

/// Marketplace unfairness `d⟨g,q,l⟩` for one crawled ranking.
///
/// - [`MarketMeasure::Emd`] (Eq. 2): normalized EMD between the relevance
///   histogram of `g` and each comparable group's, averaged.
/// - [`MarketMeasure::Exposure`] (§3.3.2): deviation between `g`'s exposure
///   share and relevance share over the pool `g ∪ comparables(g)`.
///
/// Returns `None` when `g` has no workers in the ranking or no comparable
/// group does.
pub fn market_cell_unfairness(
    universe: &Universe,
    ranking: &MarketRanking,
    g: GroupId,
    measure: MarketMeasure,
) -> Option<f64> {
    match measure {
        MarketMeasure::Emd { bins } => market_emd(universe, ranking, g, bins),
        MarketMeasure::Exposure { model } => market_exposure(universe, ranking, g, model),
    }
}

fn market_emd(
    universe: &Universe,
    ranking: &MarketRanking,
    g: GroupId,
    bins: usize,
) -> Option<f64> {
    let cfg = BinConfig::unit(bins);
    let g_hist = group_histogram(universe, ranking, g, cfg);
    if g_hist.is_empty() {
        return None;
    }
    let mut dists = Vec::new();
    for g_cmp in universe.comparable_group_ids(g) {
        let h = group_histogram(universe, ranking, g_cmp, cfg);
        if let Some(d) = measures::emd_1d_normalized(&g_hist, &h) {
            dists.push(d);
        }
    }
    average(&dists)
}

fn group_histogram(
    universe: &Universe,
    ranking: &MarketRanking,
    g: GroupId,
    cfg: BinConfig,
) -> Histogram {
    let label = universe.group(g);
    let mut h = Histogram::empty(cfg);
    for (i, w) in ranking.workers().iter().enumerate() {
        if label.matches(&w.assignment) {
            h.add(ranking.relevance(i));
        }
    }
    h
}

fn market_exposure(
    universe: &Universe,
    ranking: &MarketRanking,
    g: GroupId,
    model: DiscountModel,
) -> Option<f64> {
    let g_label = universe.group(g);
    let comparables: Vec<_> =
        universe.comparable_group_ids(g).into_iter().map(|c| universe.group(c).clone()).collect();
    if comparables.is_empty() {
        return None;
    }

    let (mut g_exp, mut g_rel) = (0.0f64, 0.0f64);
    let (mut pool_exp, mut pool_rel) = (0.0f64, 0.0f64);
    let mut g_seen = false;
    let mut cmp_seen = false;
    for (i, w) in ranking.workers().iter().enumerate() {
        let in_g = g_label.matches(&w.assignment);
        let in_cmp = comparables.iter().any(|c| c.matches(&w.assignment));
        if !in_g && !in_cmp {
            continue;
        }
        let exp = model.exposure(w.rank);
        let rel = ranking.relevance(i);
        pool_exp += exp;
        pool_rel += rel;
        if in_g {
            g_exp += exp;
            g_rel += rel;
            g_seen = true;
        }
        if in_cmp {
            cmp_seen = true;
        }
    }
    if !g_seen || !cmp_seen {
        return None;
    }
    exposure_unfairness(g_exp, pool_exp, g_rel, pool_rel)
}

fn average(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Schema;
    use crate::observations::RankedWorker;
    use crate::paper_toy;

    /// Search sample with two distinguishable groups.
    fn two_group_lists(identical: bool) -> (Universe, Vec<UserList>) {
        let universe = Universe::with_all_groups(Schema::gender_ethnicity());
        // assignment = [gender, ethnicity]; Male=0/Female=1; Asian=0.
        let male = vec![crate::model::ValueId(0), crate::model::ValueId(0)];
        let female = vec![crate::model::ValueId(1), crate::model::ValueId(0)];
        let list_a = vec![1, 2, 3];
        let list_b = if identical { vec![1, 2, 3] } else { vec![7, 8, 9] };
        let lists = vec![
            UserList { assignment: male.clone(), results: list_a.clone() },
            UserList { assignment: male, results: list_a.clone() },
            UserList { assignment: female.clone(), results: list_b.clone() },
            UserList { assignment: female, results: list_b },
        ];
        (universe, lists)
    }

    #[test]
    fn identical_lists_are_perfectly_fair() {
        let (u, lists) = two_group_lists(true);
        let male = u.group_id_by_text("gender=Male").unwrap();
        for m in [SearchMeasure::kendall(), SearchMeasure::JaccardDistance] {
            let d = search_cell_unfairness(&u, &lists, male, m).unwrap();
            assert!(d.abs() < 1e-12, "{m:?} gave {d}");
        }
    }

    #[test]
    fn disjoint_lists_are_maximally_unfair() {
        let (u, lists) = two_group_lists(false);
        let male = u.group_id_by_text("gender=Male").unwrap();
        for m in [SearchMeasure::kendall(), SearchMeasure::JaccardDistance] {
            let d = search_cell_unfairness(&u, &lists, male, m).unwrap();
            assert!((d - 1.0).abs() < 1e-12, "{m:?} gave {d}");
        }
    }

    #[test]
    fn missing_group_yields_none() {
        let (u, lists) = two_group_lists(true);
        // No Black users in the sample.
        let black = u.group_id_by_text("ethnicity=Black").unwrap();
        assert_eq!(search_cell_unfairness(&u, &lists, black, SearchMeasure::JaccardDistance), None);
    }

    #[test]
    fn figure5_exposure_value_reproduced() {
        // The paper's Figure 5: Black Females in the Table 3 ranking have
        // exposure unfairness ≈ 0.04.
        let (universe, ranking) = paper_toy::table3_ranking();
        let bf = universe.group_id_by_text("gender=Female & ethnicity=Black").unwrap();
        let d = market_cell_unfairness(&universe, &ranking, bf, MarketMeasure::exposure()).unwrap();
        assert!((d - 0.04).abs() < 0.005, "got {d}");
    }

    #[test]
    fn emd_zero_for_interleaved_groups() {
        // Alternating Male/Female down the ranking → near-identical
        // relevance histograms → EMD ≈ 0.
        let universe = Universe::with_all_groups(Schema::gender_ethnicity());
        let workers: Vec<RankedWorker> = (1..=10)
            .map(|rank| RankedWorker {
                assignment: vec![
                    crate::model::ValueId((rank % 2) as u16),
                    crate::model::ValueId(0),
                ],
                rank,
                score: None,
            })
            .collect();
        let ranking = MarketRanking::new(workers);
        let male = universe.group_id_by_text("gender=Male").unwrap();
        let d = market_cell_unfairness(&universe, &ranking, male, MarketMeasure::emd()).unwrap();
        assert!(d < 0.15, "interleaved groups should be nearly fair, got {d}");
    }

    #[test]
    fn emd_large_for_segregated_groups() {
        // All Males on top, all Females at the bottom.
        let universe = Universe::with_all_groups(Schema::gender_ethnicity());
        let workers: Vec<RankedWorker> = (1..=10)
            .map(|rank| RankedWorker {
                assignment: vec![
                    crate::model::ValueId(if rank <= 5 { 0 } else { 1 }),
                    crate::model::ValueId(0),
                ],
                rank,
                score: None,
            })
            .collect();
        let ranking = MarketRanking::new(workers);
        let male = universe.group_id_by_text("gender=Male").unwrap();
        let d = market_cell_unfairness(&universe, &ranking, male, MarketMeasure::emd()).unwrap();
        assert!(d > 0.4, "segregated groups should be clearly unfair, got {d}");
    }

    #[test]
    fn exposure_none_when_group_absent() {
        let universe = Universe::with_all_groups(Schema::gender_ethnicity());
        let workers = vec![RankedWorker {
            assignment: vec![crate::model::ValueId(0), crate::model::ValueId(0)],
            rank: 1,
            score: None,
        }];
        let ranking = MarketRanking::new(workers);
        let female = universe.group_id_by_text("gender=Female").unwrap();
        assert_eq!(
            market_cell_unfairness(&universe, &ranking, female, MarketMeasure::exposure()),
            None
        );
    }
}
