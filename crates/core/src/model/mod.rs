//! Data model: protected attributes, group labels, and the study universe
//! (paper §3.1).

mod attribute;
mod group;
mod universe;

pub use attribute::{AttrId, Attribute, Schema, ValueId};
pub use group::{all_groups, full_groups, GroupLabel};
pub use universe::{GroupId, LocationDef, LocationId, QueryDef, QueryId, Universe};
