//! The three dimensions of a fairness study: groups `G`, job-related
//! queries `Q`, and locations `L` (paper §3.1).
//!
//! A [`Universe`] registers the concrete groups, queries, and locations a
//! study covers and hands out dense ids used by the unfairness cube, the
//! indices, and the algorithms. Queries may carry a *category* (on
//! TaskRabbit a query often denotes a set of jobs in one category, and the
//! location-comparison experiment of Table 15 breaks a category down into
//! its sub-queries); locations may carry a *region* tag (used for
//! restrictions like "the West Coast" in the paper's §4.1 examples).

use super::attribute::Schema;
use super::group::{self, GroupLabel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense id of a group within a [`Universe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

/// Dense id of a query within a [`Universe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u32);

/// Dense id of a location within a [`Universe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocationId(pub u32);

/// A job-related query, optionally tagged with the job category it belongs
/// to (e.g. query "Organize Closet" in category "General Cleaning").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryDef {
    pub name: String,
    pub category: Option<String>,
}

/// A geographic location, optionally tagged with a region (e.g. "West
/// Coast", "UK").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocationDef {
    pub name: String,
    pub region: Option<String>,
}

/// Registry of the groups, queries, and locations of one study.
///
/// Ids are assigned densely in insertion order and never change, so they
/// can index arrays. Lookups by name are O(1) via side maps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Universe {
    schema: Schema,
    groups: Vec<GroupLabel>,
    group_ids: HashMap<GroupLabel, GroupId>,
    queries: Vec<QueryDef>,
    query_ids: HashMap<String, QueryId>,
    locations: Vec<LocationDef>,
    location_ids: HashMap<String, LocationId>,
}

impl Universe {
    /// Creates an empty universe over a schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            groups: Vec::new(),
            group_ids: HashMap::new(),
            queries: Vec::new(),
            query_ids: HashMap::new(),
            locations: Vec::new(),
            location_ids: HashMap::new(),
        }
    }

    /// Creates a universe pre-populated with *every* group expressible over
    /// the schema (the full group lattice — 11 groups for gender ×
    /// ethnicity, matching the rows of the paper's Table 8).
    pub fn with_all_groups(schema: Schema) -> Self {
        let mut u = Self::new(schema.clone());
        for g in group::all_groups(&schema) {
            u.add_group(g);
        }
        u
    }

    /// The protected-attribute schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Registers a group, returning its id. Idempotent: re-adding an
    /// existing label returns the original id.
    pub fn add_group(&mut self, label: GroupLabel) -> GroupId {
        if let Some(&id) = self.group_ids.get(&label) {
            return id;
        }
        let n = self.groups.len();
        assert!(n <= u32::MAX as usize, "group id space exhausted");
        let id = GroupId(n as u32);
        self.group_ids.insert(label.clone(), id);
        self.groups.push(label);
        id
    }

    /// Registers a query (idempotent by name; the category of the first
    /// registration wins).
    pub fn add_query(&mut self, name: impl Into<String>, category: Option<&str>) -> QueryId {
        let name = name.into();
        if let Some(&id) = self.query_ids.get(&name) {
            return id;
        }
        let n = self.queries.len();
        assert!(n <= u32::MAX as usize, "query id space exhausted");
        let id = QueryId(n as u32);
        self.query_ids.insert(name.clone(), id);
        self.queries.push(QueryDef { name, category: category.map(str::to_string) });
        id
    }

    /// Registers a location (idempotent by name).
    pub fn add_location(&mut self, name: impl Into<String>, region: Option<&str>) -> LocationId {
        let name = name.into();
        if let Some(&id) = self.location_ids.get(&name) {
            return id;
        }
        let n = self.locations.len();
        assert!(n <= u32::MAX as usize, "location id space exhausted");
        let id = LocationId(n as u32);
        self.location_ids.insert(name.clone(), id);
        self.locations.push(LocationDef { name, region: region.map(str::to_string) });
        id
    }

    /// Number of registered groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of registered queries.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of registered locations.
    pub fn n_locations(&self) -> usize {
        self.locations.len()
    }

    /// The label of a group id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids are only minted by this
    /// universe, so an out-of-range id is a logic error).
    pub fn group(&self, id: GroupId) -> &GroupLabel {
        &self.groups[id.0 as usize]
    }

    /// The definition of a query id.
    pub fn query(&self, id: QueryId) -> &QueryDef {
        &self.queries[id.0 as usize]
    }

    /// The definition of a location id.
    pub fn location(&self, id: LocationId) -> &LocationDef {
        &self.locations[id.0 as usize]
    }

    /// Looks up a group id by label.
    pub fn group_id(&self, label: &GroupLabel) -> Option<GroupId> {
        self.group_ids.get(label).copied()
    }

    /// Looks up a group id by label text, e.g.
    /// `"gender=Female & ethnicity=Black"`.
    pub fn group_id_by_text(&self, text: &str) -> Option<GroupId> {
        let label = GroupLabel::parse(&self.schema, text)?;
        self.group_id(&label)
    }

    /// Looks up a query id by name.
    pub fn query_id(&self, name: &str) -> Option<QueryId> {
        self.query_ids.get(name).copied()
    }

    /// Looks up a location id by name.
    pub fn location_id(&self, name: &str) -> Option<LocationId> {
        self.location_ids.get(name).copied()
    }

    /// All group ids in registration order.
    pub fn group_ids(&self) -> impl Iterator<Item = GroupId> {
        let n = self.groups.len();
        debug_assert!(n <= u32::MAX as usize, "group id space exhausted");
        (0..n as u32).map(GroupId)
    }

    /// All query ids in registration order.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> {
        let n = self.queries.len();
        debug_assert!(n <= u32::MAX as usize, "query id space exhausted");
        (0..n as u32).map(QueryId)
    }

    /// All location ids in registration order.
    pub fn location_ids(&self) -> impl Iterator<Item = LocationId> {
        let n = self.locations.len();
        debug_assert!(n <= u32::MAX as usize, "location id space exhausted");
        (0..n as u32).map(LocationId)
    }

    /// Queries belonging to a category (for breakdowns like Table 15, which
    /// breaks "General Cleaning" down into its sub-queries).
    pub fn queries_in_category(&self, category: &str) -> Vec<QueryId> {
        self.query_ids().filter(|&q| self.query(q).category.as_deref() == Some(category)).collect()
    }

    /// Locations within a region tag (e.g. `"West Coast"`).
    pub fn locations_in_region(&self, region: &str) -> Vec<LocationId> {
        self.location_ids()
            .filter(|&l| self.location(l).region.as_deref() == Some(region))
            .collect()
    }

    /// The comparable groups of `g` *that are registered in this universe*.
    ///
    /// Unfairness (Eq. 1 and 2) contrasts `g` against its comparable
    /// groups; any comparable group absent from the universe simply has no
    /// data and is skipped.
    pub fn comparable_group_ids(&self, g: GroupId) -> Vec<GroupId> {
        self.group(g)
            .comparable_groups(&self.schema)
            .iter()
            .filter_map(|label| self.group_id(label))
            .collect()
    }

    /// Short display name of a group (e.g. `"Female Black"`).
    pub fn group_name(&self, g: GroupId) -> String {
        self.group(g).short_name(&self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> Universe {
        Universe::with_all_groups(Schema::gender_ethnicity())
    }

    #[test]
    fn with_all_groups_has_table8_rows() {
        let u = universe();
        assert_eq!(u.n_groups(), 11);
    }

    #[test]
    fn add_group_is_idempotent() {
        let mut u = universe();
        let label = GroupLabel::parse(u.schema(), "gender=Male").unwrap();
        let id1 = u.group_id(&label).unwrap();
        let id2 = u.add_group(label);
        assert_eq!(id1, id2);
        assert_eq!(u.n_groups(), 11);
    }

    #[test]
    fn query_and_location_registry() {
        let mut u = universe();
        let q1 = u.add_query("Organize Closet", Some("General Cleaning"));
        let q2 = u.add_query("Lawn Mowing", Some("Yard Work"));
        let q1b = u.add_query("Organize Closet", None);
        assert_eq!(q1, q1b);
        assert_ne!(q1, q2);
        // First registration's category wins.
        assert_eq!(u.query(q1).category.as_deref(), Some("General Cleaning"));
        assert_eq!(u.queries_in_category("General Cleaning"), vec![q1]);

        let sf = u.add_location("San Francisco, CA", Some("West Coast"));
        let nyc = u.add_location("New York City, NY", Some("East Coast"));
        assert_eq!(u.locations_in_region("West Coast"), vec![sf]);
        assert_eq!(u.location_id("New York City, NY"), Some(nyc));
        assert_eq!(u.location_id("Atlantis"), None);
    }

    #[test]
    fn comparable_group_ids_resolve() {
        let u = universe();
        let bf = u.group_id_by_text("gender=Female & ethnicity=Black").unwrap();
        let cmp = u.comparable_group_ids(bf);
        // Black Males, Asian Females, White Females — all registered.
        assert_eq!(cmp.len(), 3);
        let names: Vec<String> = cmp.iter().map(|&g| u.group_name(g)).collect();
        assert!(names.contains(&"Male Black".to_string()));
        assert!(names.contains(&"Female Asian".to_string()));
        assert!(names.contains(&"Female White".to_string()));
    }

    #[test]
    fn comparable_groups_skip_unregistered() {
        let mut u = Universe::new(Schema::gender_ethnicity());
        let bf =
            u.add_group(GroupLabel::parse(u.schema(), "gender=Female & ethnicity=Black").unwrap());
        let bm =
            u.add_group(GroupLabel::parse(u.schema(), "gender=Male & ethnicity=Black").unwrap());
        // Asian/White Females are not registered → only Black Males remain.
        assert_eq!(u.comparable_group_ids(bf), vec![bm]);
    }
}
