//! Group labels, variants, and comparable groups (paper §3.1).
//!
//! A group `g` is described by a label `label(g)`: a conjunction of
//! predicates `a = val`. `A(g)` is the set of attributes mentioned in the
//! label. For an attribute `a ∈ A(g)`, `variants(g, a)` is the set of groups
//! whose label differs from `g` *only* on the value of `a`. The *comparable
//! groups* of `g` are `∪_{a ∈ A(g)} variants(g, a)` — the groups one
//! attribute-flip away. Unfairness of `g` is always measured against its
//! comparable groups.

use super::attribute::{AttrId, Schema, ValueId};
use serde::{Deserialize, Serialize};

/// A conjunction of `attribute = value` predicates identifying a group.
///
/// Predicates are stored sorted by attribute id and each attribute appears
/// at most once, so labels have a canonical form and can be compared and
/// hashed directly.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupLabel {
    predicates: Vec<(AttrId, ValueId)>,
}

impl GroupLabel {
    /// Builds a label from predicates.
    ///
    /// # Panics
    ///
    /// Panics if the same attribute appears twice: `gender = Male ∧
    /// gender = Female` is unsatisfiable and `gender = Male ∧ gender = Male`
    /// is redundant.
    pub fn new(mut predicates: Vec<(AttrId, ValueId)>) -> Self {
        predicates.sort_unstable();
        for w in predicates.windows(2) {
            assert!(
                w[0].0 != w[1].0,
                "attribute {:?} appears more than once in group label",
                w[0].0
            );
        }
        Self { predicates }
    }

    /// Parses a label like `"gender=Female & ethnicity=Black"` against a schema.
    ///
    /// Returns `None` if any attribute or value is unknown.
    pub fn parse(schema: &Schema, text: &str) -> Option<Self> {
        let mut predicates = Vec::new();
        for part in text.split('&') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (attr, value) = part.split_once('=')?;
            predicates.push(schema.resolve(attr.trim(), value.trim())?);
        }
        if predicates.is_empty() {
            return None;
        }
        // Reject duplicate attributes without panicking on user input.
        let mut sorted = predicates.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0].0 == w[1].0) {
            return None;
        }
        Some(Self::new(predicates))
    }

    /// The predicates, sorted by attribute id.
    pub fn predicates(&self) -> &[(AttrId, ValueId)] {
        &self.predicates
    }

    /// `A(g)`: the attributes mentioned in the label, in id order.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.predicates.iter().map(|&(a, _)| a)
    }

    /// Number of predicates in the conjunction.
    pub fn arity(&self) -> usize {
        self.predicates.len()
    }

    /// The value this label fixes for `attr`, if any.
    pub fn value_of(&self, attr: AttrId) -> Option<ValueId> {
        self.predicates.iter().find(|&&(a, _)| a == attr).map(|&(_, v)| v)
    }

    /// Whether an individual with the given full attribute assignment
    /// belongs to this group.
    ///
    /// `assignment[a]` must hold the individual's value for attribute id
    /// `a`; the label matches if every predicate agrees.
    pub fn matches(&self, assignment: &[ValueId]) -> bool {
        self.predicates.iter().all(|&(a, v)| assignment.get(a.0 as usize) == Some(&v))
    }

    /// `variants(g, a)` (paper §3.1): groups identical to `g` except for the
    /// value of `a`, which takes every *other* value in `a`'s domain.
    ///
    /// # Panics
    ///
    /// Panics if `attr ∉ A(g)` — variants are only defined for attributes the
    /// label mentions.
    pub fn variants(&self, schema: &Schema, attr: AttrId) -> Vec<GroupLabel> {
        let current = self.value_of(attr).expect("variants(g, a) requires a ∈ A(g)");
        let domain = schema.attribute(attr).cardinality();
        debug_assert!(domain <= u16::MAX as usize, "attribute domain must fit u16 value ids");
        let domain = domain as u16;
        (0..domain)
            .map(ValueId)
            .filter(|&v| v != current)
            .map(|v| {
                let predicates = self
                    .predicates
                    .iter()
                    .map(|&(a, old)| if a == attr { (a, v) } else { (a, old) })
                    .collect();
                GroupLabel::new(predicates)
            })
            .collect()
    }

    /// The comparable groups of `g`: `∪_{a ∈ A(g)} variants(g, a)`.
    ///
    /// The result is deduplicated (it cannot actually contain duplicates,
    /// since variants on different attributes differ on different
    /// coordinates) and excludes `g` itself.
    pub fn comparable_groups(&self, schema: &Schema) -> Vec<GroupLabel> {
        let mut out = Vec::new();
        for attr in self.attrs().collect::<Vec<_>>() {
            out.extend(self.variants(schema, attr));
        }
        out
    }

    /// Renders the label against a schema, e.g. `"gender=Female & ethnicity=Black"`.
    pub fn display(&self, schema: &Schema) -> String {
        self.predicates
            .iter()
            .map(|&(a, v)| {
                let attr = schema.attribute(a);
                format!("{}={}", attr.name(), attr.value_name(v))
            })
            .collect::<Vec<_>>()
            .join(" & ")
    }

    /// Short human name: just the value names, e.g. `"Female Black"`.
    ///
    /// This matches the paper's narrative style ("Black Females"), modulo
    /// word order which follows attribute declaration order.
    pub fn short_name(&self, schema: &Schema) -> String {
        self.predicates
            .iter()
            .map(|&(a, v)| schema.attribute(a).value_name(v).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Enumerates *all* groups expressible over a schema: every conjunction of
/// predicates over every non-empty subset of attributes.
///
/// For the paper's gender × ethnicity schema this yields the 11 groups of
/// Table 8: 6 two-attribute groups (Asian Female, …) plus 5 single-attribute
/// groups (Asian, Black, White, Male, Female).
///
/// Order: by subset of attributes (in bitmask order), then lexicographically
/// by value ids — deterministic, so callers can rely on stable group ids.
pub fn all_groups(schema: &Schema) -> Vec<GroupLabel> {
    let n = schema.len();
    assert!(n <= 16, "group lattice enumeration supports at most 16 attributes");
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        let attrs: Vec<AttrId> =
            (0..n).filter(|&i| mask & (1 << i) != 0).map(|i| AttrId(i as u16)).collect();
        let n_attrs = attrs.len();
        if n_attrs == 0 {
            continue; // unreachable: every mask in 1..(1<<n) selects a bit
        }
        // Odometer over the value domains of the chosen attributes
        // (last attribute varies fastest).
        let mut counters = vec![0u16; n_attrs];
        'odometer: loop {
            out.push(GroupLabel::new(
                attrs.iter().zip(&counters).map(|(&a, &c)| (a, ValueId(c))).collect(),
            ));
            let mut i = n_attrs - 1;
            loop {
                counters[i] += 1;
                if (counters[i] as usize) < schema.attribute(attrs[i]).cardinality() {
                    break;
                }
                counters[i] = 0;
                if i == 0 {
                    break 'odometer;
                }
                i -= 1;
            }
        }
    }
    out
}

/// Enumerates only the "full" groups: conjunctions fixing *every* attribute
/// of the schema (e.g. the 6 gender × ethnicity pairs).
pub fn full_groups(schema: &Schema) -> Vec<GroupLabel> {
    all_groups(schema).into_iter().filter(|g| g.arity() == schema.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::gender_ethnicity()
    }

    fn label(s: &Schema, text: &str) -> GroupLabel {
        GroupLabel::parse(s, text).unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let s = schema();
        let g = label(&s, "ethnicity=Black & gender=Female");
        // Canonical order is attribute-id order (gender first).
        assert_eq!(g.display(&s), "gender=Female & ethnicity=Black");
        assert_eq!(g.short_name(&s), "Female Black");
        assert_eq!(g.arity(), 2);
    }

    #[test]
    fn parse_rejects_bad_input() {
        let s = schema();
        assert!(GroupLabel::parse(&s, "gender=Robot").is_none());
        assert!(GroupLabel::parse(&s, "age=5").is_none());
        assert!(GroupLabel::parse(&s, "").is_none());
        assert!(GroupLabel::parse(&s, "gender=Male & gender=Female").is_none());
    }

    #[test]
    fn variants_match_paper_example() {
        // Paper §3.1: for label (gender=male) ∧ (ethnicity=black),
        // variants(g, gender) = {(female, black)},
        // variants(g, ethnicity) = {(male, asian), (male, white)}.
        let s = schema();
        let g = label(&s, "gender=Male & ethnicity=Black");
        let gender = s.attr_id("gender").unwrap();
        let ethnicity = s.attr_id("ethnicity").unwrap();

        let v_gender = g.variants(&s, gender);
        assert_eq!(v_gender, vec![label(&s, "gender=Female & ethnicity=Black")]);

        let v_eth = g.variants(&s, ethnicity);
        assert_eq!(
            v_eth,
            vec![
                label(&s, "gender=Male & ethnicity=Asian"),
                label(&s, "gender=Male & ethnicity=White"),
            ]
        );
    }

    #[test]
    fn comparable_groups_of_black_females() {
        // Paper §1: comparable groups of "Black Females" are "Black Males",
        // "White Females" and "Asian Females".
        let s = schema();
        let g = label(&s, "gender=Female & ethnicity=Black");
        let cmp = g.comparable_groups(&s);
        let names: Vec<String> = cmp.iter().map(|c| c.short_name(&s)).collect();
        assert_eq!(cmp.len(), 3);
        assert!(names.contains(&"Male Black".to_string()));
        assert!(names.contains(&"Female Asian".to_string()));
        assert!(names.contains(&"Female White".to_string()));
    }

    #[test]
    fn comparable_groups_of_single_attribute_group() {
        let s = schema();
        let g = label(&s, "gender=Male");
        let cmp = g.comparable_groups(&s);
        assert_eq!(cmp, vec![label(&s, "gender=Female")]);
    }

    #[test]
    fn matches_full_assignment() {
        let s = schema();
        let g = label(&s, "gender=Female & ethnicity=Black");
        // assignment: [gender value, ethnicity value]
        let female = s.attribute(AttrId(0)).value_id("Female").unwrap();
        let male = s.attribute(AttrId(0)).value_id("Male").unwrap();
        let black = s.attribute(AttrId(1)).value_id("Black").unwrap();
        assert!(g.matches(&[female, black]));
        assert!(!g.matches(&[male, black]));
        // Single-attribute group matches any ethnicity.
        let m = label(&s, "gender=Male");
        assert!(m.matches(&[male, black]));
    }

    #[test]
    fn all_groups_counts_match_table8() {
        // gender (2 values) × ethnicity (3 values):
        // subsets {gender}: 2 groups, {ethnicity}: 3, {both}: 6 → 11 total,
        // exactly the 11 rows of the paper's Table 8.
        let s = schema();
        let groups = all_groups(&s);
        assert_eq!(groups.len(), 11);
        // All labels distinct.
        let mut sorted = groups.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 11);
    }

    #[test]
    fn full_groups_are_the_six_pairs() {
        let s = schema();
        let groups = full_groups(&s);
        assert_eq!(groups.len(), 6);
        assert!(groups.iter().all(|g| g.arity() == 2));
    }

    #[test]
    fn all_groups_deterministic_order() {
        let s = schema();
        assert_eq!(all_groups(&s), all_groups(&s));
    }
}
