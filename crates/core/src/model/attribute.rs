//! Protected attributes and the schema that declares them.
//!
//! The paper (§3.1) models each group label as a conjunction of predicates
//! `a = val` over *protected attributes* such as gender, ethnicity,
//! nationality, neighborhood, or income. A [`Schema`] declares the set of
//! attributes a study uses and the finite value domain of each; everything
//! downstream (group labels, variants, comparable groups) is expressed in
//! terms of compact ids into the schema.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a protected attribute within a [`Schema`].
///
/// Attribute ids are dense indices in declaration order, so they can be used
/// directly to index per-attribute arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u16);

/// Identifier of a value within an attribute's domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ValueId(pub u16);

/// A protected attribute: a name plus its finite value domain.
///
/// Example: `gender = {Male, Female}` or `ethnicity = {Asian, Black, White}`
/// (the two attributes used in the paper's case study, §5.1.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    values: Vec<String>,
}

impl Attribute {
    /// Creates an attribute with the given name and value domain.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains duplicates — an attribute
    /// with no values (or ambiguous values) cannot label any group.
    pub fn new(
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        let name = name.into();
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        assert!(!values.is_empty(), "attribute {name:?} must have at least one value");
        for (i, v) in values.iter().enumerate() {
            assert!(!values[..i].contains(v), "attribute {name:?} has duplicate value {v:?}");
        }
        Self { name, values }
    }

    /// The attribute's name, e.g. `"gender"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The value domain in declaration order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Number of values in the domain.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Looks up a value by name.
    pub fn value_id(&self, value: &str) -> Option<ValueId> {
        self.values.iter().position(|v| v == value).map(|i| ValueId(i as u16))
    }

    /// The name of a value id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this attribute's domain.
    pub fn value_name(&self, id: ValueId) -> &str {
        &self.values[id.0 as usize]
    }
}

/// The set of protected attributes a fairness study is defined over.
///
/// A schema is immutable once built; group labels borrow ids from it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from a list of attributes.
    ///
    /// # Panics
    ///
    /// Panics if two attributes share a name.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        for (i, a) in attributes.iter().enumerate() {
            assert!(
                !attributes[..i].iter().any(|b| b.name() == a.name()),
                "duplicate attribute name {:?}",
                a.name()
            );
        }
        Self { attributes }
    }

    /// The schema used throughout the paper's case study (§5.1.2):
    /// `gender = {Male, Female}`, `ethnicity = {Asian, Black, White}`.
    pub fn gender_ethnicity() -> Self {
        Self::new(vec![
            Attribute::new("gender", ["Male", "Female"]),
            Attribute::new("ethnicity", ["Asian", "Black", "White"]),
        ])
    }

    /// All attributes, in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema declares no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Looks up an attribute by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attributes.iter().position(|a| a.name() == name).map(|i| AttrId(i as u16))
    }

    /// The attribute for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.0 as usize]
    }

    /// Resolves `(attribute name, value name)` to ids.
    pub fn resolve(&self, attr: &str, value: &str) -> Option<(AttrId, ValueId)> {
        let aid = self.attr_id(attr)?;
        let vid = self.attribute(aid).value_id(value)?;
        Some((aid, vid))
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {{{}}}", self.name, self.values.join(", "))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_lookup_roundtrip() {
        let a = Attribute::new("ethnicity", ["Asian", "Black", "White"]);
        assert_eq!(a.cardinality(), 3);
        let id = a.value_id("Black").unwrap();
        assert_eq!(id, ValueId(1));
        assert_eq!(a.value_name(id), "Black");
        assert_eq!(a.value_id("Martian"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate value")]
    fn attribute_rejects_duplicate_values() {
        Attribute::new("gender", ["Male", "Male"]);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn attribute_rejects_empty_domain() {
        Attribute::new("gender", Vec::<String>::new());
    }

    #[test]
    fn schema_resolution() {
        let s = Schema::gender_ethnicity();
        assert_eq!(s.len(), 2);
        let (aid, vid) = s.resolve("ethnicity", "White").unwrap();
        assert_eq!(aid, AttrId(1));
        assert_eq!(s.attribute(aid).value_name(vid), "White");
        assert_eq!(s.resolve("income", "high"), None);
        assert_eq!(s.resolve("gender", "Other"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn schema_rejects_duplicate_attribute() {
        Schema::new(vec![
            Attribute::new("gender", ["Male", "Female"]),
            Attribute::new("gender", ["M", "F"]),
        ]);
    }

    #[test]
    fn display_formats() {
        let s = Schema::gender_ethnicity();
        let text = s.to_string();
        assert!(text.contains("gender = {Male, Female}"));
        assert!(text.contains("ethnicity = {Asian, Black, White}"));
    }
}
