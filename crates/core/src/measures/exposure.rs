//! Exposure-based unfairness (paper §3.3.2, after Singh & Joachims 2018 and
//! Biega et al. 2018).
//!
//! Higher-ranked workers receive more attention, so each worker gets an
//! *exposure* inversely proportional to her rank: the paper uses
//! `exp(w) = 1 / ln(1 + rank(w))` (the Figure 5 worked example pins the
//! logarithm to base *e*). A group's exposure share should match its
//! relevance share; the deviation `|exp_share(g) − rel_share(g)|` is the
//! group's unfairness. Shares are normalized over `g ∪ comparables(g)`.

use serde::{Deserialize, Serialize};

/// Position-discount model mapping a 1-based rank to an exposure weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DiscountModel {
    /// `1 / ln(1 + rank)` — the paper's model (Figure 5).
    #[default]
    NaturalLog,
    /// `1 / log₂(1 + rank)` — the DCG convention.
    Log2,
    /// `1 / rank` — the reciprocal-rank convention.
    Reciprocal,
}

impl DiscountModel {
    /// Exposure of the worker at `rank` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`; ranks are 1-based throughout the framework.
    pub fn exposure(self, rank: usize) -> f64 {
        assert!(rank >= 1, "ranks are 1-based");
        match self {
            // ln(1 + 1) = ln 2 ≈ 0.693 → top rank gets exposure ≈ 1.44.
            DiscountModel::NaturalLog => 1.0 / ((1 + rank) as f64).ln(),
            DiscountModel::Log2 => 1.0 / ((1 + rank) as f64).log2(),
            DiscountModel::Reciprocal => 1.0 / rank as f64,
        }
    }
}

/// Sum of exposures of a set of ranks under a discount model.
pub fn total_exposure(model: DiscountModel, ranks: impl IntoIterator<Item = usize>) -> f64 {
    ranks.into_iter().map(|r| model.exposure(r)).sum()
}

/// The exposure-vs-relevance unfairness of one group against the pooled
/// comparable population:
///
/// `| group_exposure / pool_exposure − group_relevance / pool_relevance |`
///
/// where the pool is `g ∪ comparables(g)`. Returns `None` when either pool
/// total is zero (no exposure or no relevance mass to apportion), or when a
/// group total exceeds its pool total beyond [`EPS`](super::float::EPS) —
/// a group is a subset of its pool, so such inputs are inconsistent and
/// any "share" computed from them would be meaningless (> 1). The check is
/// a real branch, not a `debug_assert`, so debug and release builds agree.
pub fn exposure_unfairness(
    group_exposure: f64,
    pool_exposure: f64,
    group_relevance: f64,
    pool_relevance: f64,
) -> Option<f64> {
    if pool_exposure <= 0.0 || pool_relevance <= 0.0 {
        return None;
    }
    if group_exposure > pool_exposure + super::float::EPS
        || group_relevance > pool_relevance + super::float::EPS
    {
        return None;
    }
    Some((group_exposure / pool_exposure - group_relevance / pool_relevance).abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_log_matches_figure5() {
        // Figure 5 / Table 3: Black Females at ranks 7 and 8 have total
        // exposure 1/ln 8 + 1/ln 9 ≈ 0.94.
        let m = DiscountModel::NaturalLog;
        let bf = total_exposure(m, [7, 8]);
        assert!((bf - 0.94).abs() < 0.005, "got {bf}");
        // Comparable-group workers at ranks 3, 2, 5, 1, 10 have total ≈ 4.0.
        let cmp = total_exposure(m, [3, 2, 5, 1, 10]);
        assert!((cmp - 4.05).abs() < 0.01, "got {cmp}");
    }

    #[test]
    fn figure5_share_computation() {
        // exposure share 0.94/(0.94+4.05) ≈ 0.19; relevance share
        // 0.5/(0.5+2.9) ≈ 0.147; unfairness ≈ 0.04.
        let m = DiscountModel::NaturalLog;
        let g_exp = total_exposure(m, [7, 8]);
        let pool_exp = g_exp + total_exposure(m, [3, 2, 5, 1, 10]);
        let g_rel = 0.3 + 0.2;
        let pool_rel = g_rel + (0.7 + 0.8 + 0.5 + 0.9 + 0.0);
        let d = exposure_unfairness(g_exp, pool_exp, g_rel, pool_rel).unwrap();
        assert!((g_exp / pool_exp - 0.19).abs() < 0.005);
        assert!((g_rel / pool_rel - 0.147).abs() < 0.001);
        assert!((d - 0.04).abs() < 0.005, "got {d}");
    }

    #[test]
    fn exposure_decreases_with_rank() {
        for m in [DiscountModel::NaturalLog, DiscountModel::Log2, DiscountModel::Reciprocal] {
            let e: Vec<f64> = (1..=10).map(|r| m.exposure(r)).collect();
            for w in e.windows(2) {
                assert!(w[0] > w[1], "{m:?} not strictly decreasing");
            }
            assert!(e.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn reciprocal_and_log2_values() {
        assert_eq!(DiscountModel::Reciprocal.exposure(4), 0.25);
        assert!((DiscountModel::Log2.exposure(1) - 1.0).abs() < 1e-12);
        assert!((DiscountModel::Log2.exposure(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn rank_zero_rejected() {
        DiscountModel::NaturalLog.exposure(0);
    }

    #[test]
    fn unfairness_zero_when_shares_match() {
        // Group holds half the exposure and half the relevance.
        let d = exposure_unfairness(1.0, 2.0, 3.0, 6.0).unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn unfairness_none_for_empty_pools() {
        assert_eq!(exposure_unfairness(0.0, 0.0, 1.0, 2.0), None);
        assert_eq!(exposure_unfairness(1.0, 2.0, 0.0, 0.0), None);
    }

    #[test]
    fn unfairness_none_on_inconsistent_inputs_in_every_build() {
        // A group total above its pool total is impossible for a subset;
        // the old code only debug_asserted, so release builds silently
        // returned shares > 1. Pinned: both build profiles return None.
        assert_eq!(exposure_unfairness(3.0, 2.0, 1.0, 2.0), None, "exposure exceeds pool");
        assert_eq!(exposure_unfairness(1.0, 2.0, 5.0, 2.0), None, "relevance exceeds pool");
        // Accumulated float noise within EPS is still tolerated.
        let d = exposure_unfairness(2.0 + 1e-10, 2.0, 1.0, 2.0).unwrap();
        assert!((d - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unfairness_bounded_by_one() {
        // Group has all the exposure and none of the relevance.
        let d = exposure_unfairness(2.0, 2.0, 0.0, 5.0).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }
}
