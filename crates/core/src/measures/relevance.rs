//! Rank-derived relevance scores (paper §3.3.1).
//!
//! Marketplaces rarely publish the internal score `f_q^l(w)` that produced
//! a ranking, but the rank itself is observable. The paper therefore
//! derives a relevance score from the rank:
//!
//! `rel_q^l(w) = 1 − rank(w, q, l) / N`
//!
//! where `N` is the result-set size. With ranks 1-based this maps rank 1 to
//! `1 − 1/N` (0.9 in the paper's Table 3 with `N = 10`) and rank `N` to 0.

/// Relevance of the worker at 1-based `rank` within a result set of `n`
/// workers: `1 − rank/n`.
///
/// # Panics
///
/// Panics if `rank` is 0 or exceeds `n`.
pub fn relevance_from_rank(rank: usize, n: usize) -> f64 {
    assert!(rank >= 1, "ranks are 1-based");
    assert!(rank <= n, "rank {rank} exceeds result-set size {n}");
    // `rank ∈ 1..=n` makes `n ≥ 1`; the clamp keeps the divisor visibly
    // nonzero on every path.
    1.0 - rank as f64 / n.max(1) as f64
}

/// Relevance scores for a full result set of size `n`, indexed by rank − 1.
pub fn relevance_vector(n: usize) -> Vec<f64> {
    (1..=n).map(|r| relevance_from_rank(r, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table3() {
        // Table 3: N = 10; rank 1 → 0.9, rank 2 → 0.8, …, rank 10 → 0.0.
        for rank in 1..=10 {
            let expected = (10 - rank) as f64 / 10.0;
            assert!((relevance_from_rank(rank, 10) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn top_rank_never_reaches_one() {
        assert!(relevance_from_rank(1, 50) < 1.0);
    }

    #[test]
    fn bottom_rank_is_zero() {
        assert_eq!(relevance_from_rank(50, 50), 0.0);
    }

    #[test]
    fn vector_is_strictly_decreasing() {
        let v = relevance_vector(50);
        assert_eq!(v.len(), 50);
        for w in v.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds result-set size")]
    fn rank_beyond_n_rejected() {
        relevance_from_rank(11, 10);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn rank_zero_rejected() {
        relevance_from_rank(0, 10);
    }
}
