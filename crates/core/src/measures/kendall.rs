//! Kendall Tau distances between ranked lists.
//!
//! The paper (§3.2) compares the personalized result lists of two users with
//! Kendall Tau, following Hannak et al.'s web-search personalization
//! methodology. Real result lists are *top-k lists*: they are truncated and
//! may contain different items, so the classic permutation statistic does
//! not directly apply. We provide:
//!
//! - [`tau_distance`]: the classic normalized Kendall Tau distance between
//!   two rankings of the *same* item set (fraction of discordant pairs),
//!   computed in O(n log n) by inversion counting;
//! - [`tau_b`]: the tie-aware Tau-b correlation between two score vectors;
//! - [`top_k_distance`]: Fagin–Kumar–Sivakumar's `K^(p)` distance between
//!   two top-k lists with penalty parameter `p` for pairs whose relative
//!   order is unknowable, normalized to `[0, 1]`.
//!
//! All distances are 0 for identical inputs and grow toward 1 as the lists
//! diverge — i.e. *higher = more unfair* under Eq. 1.

use std::collections::HashMap;
use std::hash::Hash;

use super::float::approx_zero;

/// Classic normalized Kendall Tau distance between two rankings of the same
/// item set: the fraction of item pairs the two rankings order differently.
///
/// `a` and `b` must be permutations of one another (same items, no
/// duplicates). Returns a value in `[0, 1]`: 0 iff the rankings are
/// identical, 1 iff one is the reverse of the other.
///
/// Runs in O(n log n) via merge-sort inversion counting.
///
/// # Panics
///
/// Panics if the lists differ in length, contain duplicates, or are not
/// permutations of the same items.
pub fn tau_distance<T: Eq + Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "tau_distance requires equal-length rankings");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let pos_b: HashMap<&T, usize> = b.iter().enumerate().map(|(i, x)| (x, i)).collect();
    assert_eq!(pos_b.len(), n, "tau_distance requires distinct items");
    // Map a's order into b's positions; inversions of this sequence are
    // exactly the discordant pairs.
    let mut seq: Vec<usize> = a
        .iter()
        .map(|x| *pos_b.get(x).expect("tau_distance requires identical item sets"))
        .collect();
    {
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "tau_distance requires distinct items in `a`");
    }
    let inversions = count_inversions(&mut seq);
    let pairs = n * (n - 1) / 2;
    inversions as f64 / pairs as f64
}

/// Counts inversions in `seq` (pairs `i < j` with `seq[i] > seq[j]`) using
/// bottom-up merge sort. `seq` is sorted in place as a side effect.
fn count_inversions(seq: &mut [usize]) -> u64 {
    let n = seq.len();
    let mut buf = vec![0usize; n];
    let mut count = 0u64;
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo + width < n {
            let mid = lo + width;
            let hi = usize::min(lo + 2 * width, n);
            count += merge_count(&seq[lo..mid], &seq[mid..hi], &mut buf[lo..hi]);
            seq[lo..hi].copy_from_slice(&buf[lo..hi]);
            lo += 2 * width;
        }
        width *= 2;
    }
    count
}

fn merge_count(left: &[usize], right: &[usize], out: &mut [usize]) -> u64 {
    let (mut i, mut j, mut k) = (0, 0, 0);
    let mut count = 0u64;
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            out[k] = left[i];
            i += 1;
        } else {
            out[k] = right[j];
            j += 1;
            // right[j] jumps ahead of everything left in `left`.
            count += (left.len() - i) as u64;
        }
        k += 1;
    }
    while i < left.len() {
        out[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        out[k] = right[j];
        j += 1;
        k += 1;
    }
    count
}

/// Kendall Tau-b correlation between two paired score vectors, with tie
/// correction. Returns a value in `[-1, 1]`, or `None` when either vector
/// is constant (Tau-b is undefined then).
///
/// NaN scores are ordered by IEEE 754 total order (`f64::total_cmp`):
/// every NaN compares above every real score, so a list containing NaN
/// relevances degrades to treating them as maximal rather than panicking.
///
/// O(n²); intended for the short (≤ 50 item) lists this framework handles.
pub fn tau_b(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "tau_b requires paired vectors");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let (mut concordant, mut discordant) = (0i64, 0i64);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i].total_cmp(&x[j]);
            let dy = y[i].total_cmp(&y[j]);
            use std::cmp::Ordering::*;
            match (dx, dy) {
                (Equal, _) | (_, Equal) => {}
                (a, b) if a == b => concordant += 1,
                _ => discordant += 1,
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - tied_pairs(x)) as f64) * ((n0 - tied_pairs(y)) as f64)).sqrt();
    if approx_zero(denom) {
        return None;
    }
    Some((concordant - discordant) as f64 / denom)
}

/// Number of tied pairs within a single vector (the `n1`/`n2` term of the
/// Tau-b denominator).
fn tied_pairs(v: &[f64]) -> i64 {
    let mut sorted: Vec<f64> = v.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut total = 0i64;
    let mut run = 1i64;
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            run += 1;
        } else {
            total += run * (run - 1) / 2;
            run = 1;
        }
    }
    total + run * (run - 1) / 2
}

/// Fagin–Kumar–Sivakumar `K^(p)` distance between two top-k lists,
/// normalized to `[0, 1]`.
///
/// The two lists may have different lengths and different items. Every
/// unordered pair `{i, j}` of items appearing in either list contributes a
/// penalty:
///
/// 1. both items in both lists: 1 if the lists order them differently,
///    else 0;
/// 2. both in one list, one of them in the other: 1 if the shared item is
///    ranked *below* the non-shared item in the list containing both
///    (the other list implies the opposite order), else 0;
/// 3. one item only in the first list, the other only in the second: 1
///    (the lists necessarily disagree);
/// 4. both items in one list only: `p` (their order in the other list is
///    unknowable). `p = 0` is the optimistic variant, `p = 1/2` the
///    neutral one used by default in this crate.
///
/// The total is divided by its value for two fully disjoint lists of the
/// same lengths (the maximum for `p ≤ 1`), giving 0 for identical lists
/// and 1 for disjoint ones.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or a list contains duplicates.
pub fn top_k_distance<T: Eq + Hash + Clone>(a: &[T], b: &[T], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "penalty p must be in [0, 1]");
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let pos_a: HashMap<&T, usize> = a.iter().enumerate().map(|(i, x)| (x, i)).collect();
    let pos_b: HashMap<&T, usize> = b.iter().enumerate().map(|(i, x)| (x, i)).collect();
    assert_eq!(pos_a.len(), a.len(), "top_k_distance: duplicate item in first list");
    assert_eq!(pos_b.len(), b.len(), "top_k_distance: duplicate item in second list");

    // Union of items, deduplicated.
    let mut universe: Vec<&T> = a.iter().collect();
    universe.extend(b.iter().filter(|x| !pos_a.contains_key(*x)));

    let mut penalty = 0.0f64;
    for i in 0..universe.len() {
        for j in (i + 1)..universe.len() {
            let (x, y) = (universe[i], universe[j]);
            penalty += pair_penalty(pos_a.get(x), pos_b.get(x), pos_a.get(y), pos_b.get(y), p);
        }
    }

    let max = max_penalty(a.len(), b.len(), p);
    if approx_zero(max) {
        0.0
    } else {
        (penalty / max).clamp(0.0, 1.0)
    }
}

fn pair_penalty(
    xa: Option<&usize>,
    xb: Option<&usize>,
    ya: Option<&usize>,
    yb: Option<&usize>,
    p: f64,
) -> f64 {
    match (xa, xb, ya, yb) {
        // Case 1: both items in both lists.
        (Some(&xa), Some(&xb), Some(&ya), Some(&yb)) => {
            if (xa < ya) == (xb < yb) {
                0.0
            } else {
                1.0
            }
        }
        // Case 2: both in list A; exactly one (x) also in B → B implies
        // x ahead of y; disagreement iff A ranks y ahead of x.
        (Some(&xa), Some(_), Some(&ya), None) => {
            if ya < xa {
                1.0
            } else {
                0.0
            }
        }
        (Some(&xa), None, Some(&ya), Some(_)) => {
            if xa < ya {
                1.0
            } else {
                0.0
            }
        }
        // Mirror of case 2 for list B.
        (Some(_), Some(&xb), None, Some(&yb)) => {
            if yb < xb {
                1.0
            } else {
                0.0
            }
        }
        (None, Some(&xb), Some(_), Some(&yb)) => {
            if xb < yb {
                1.0
            } else {
                0.0
            }
        }
        // Case 3: one item exclusive to each list — necessarily discordant.
        (Some(_), None, None, Some(_)) | (None, Some(_), Some(_), None) => 1.0,
        // Case 4: both items exclusive to the same list.
        (Some(_), None, Some(_), None) | (None, Some(_), None, Some(_)) => p,
        // A pair drawn from the union always has each item in ≥ 1 list.
        _ => unreachable!("item in neither list cannot appear in the union"),
    }
}

/// `K^(p)` of two fully disjoint lists of lengths `ka` and `kb` — the
/// normalizing constant.
fn max_penalty(ka: usize, kb: usize, p: f64) -> f64 {
    let cross = (ka * kb) as f64; // case 3 pairs
    let within = (ka * ka.saturating_sub(1) / 2 + kb * kb.saturating_sub(1) / 2) as f64; // case 4
    cross + p * within
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_distance_identity_and_reverse() {
        let a = vec!["a", "b", "c", "d"];
        let mut r = a.clone();
        r.reverse();
        assert_eq!(tau_distance(&a, &a), 0.0);
        assert_eq!(tau_distance(&a, &r), 1.0);
    }

    #[test]
    fn tau_distance_single_swap() {
        // One adjacent swap = 1 discordant pair out of C(4,2)=6.
        let a = vec![1, 2, 3, 4];
        let b = vec![2, 1, 3, 4];
        assert!((tau_distance(&a, &b) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn tau_distance_symmetry() {
        let a = vec![3, 1, 4, 2, 5];
        let b = vec![5, 4, 3, 2, 1];
        assert!((tau_distance(&a, &b) - tau_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn tau_distance_matches_bruteforce() {
        // Cross-check the O(n log n) inversion count against the O(n²)
        // definition on a fixed permutation.
        let a: Vec<u32> = (0..12).collect();
        let b = vec![7u32, 2, 9, 0, 4, 11, 1, 5, 10, 3, 8, 6];
        let mut discordant = 0;
        for i in 0..b.len() {
            for j in (i + 1)..b.len() {
                let pi = b.iter().position(|&x| x == a[i]).unwrap();
                let pj = b.iter().position(|&x| x == a[j]).unwrap();
                if pi > pj {
                    discordant += 1;
                }
            }
        }
        let expected = discordant as f64 / 66.0;
        assert!((tau_distance(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "identical item sets")]
    fn tau_distance_rejects_different_items() {
        tau_distance(&["a", "b"], &["a", "c"]);
    }

    #[test]
    fn tau_b_perfect_and_inverse() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y_up = vec![10.0, 20.0, 30.0, 40.0];
        let y_down = vec![4.0, 3.0, 2.0, 1.0];
        assert!((tau_b(&x, &y_up).unwrap() - 1.0).abs() < 1e-12);
        assert!((tau_b(&x, &y_down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_b_undefined_for_constant_vector() {
        assert_eq!(tau_b(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(tau_b(&[1.0], &[2.0]), None);
    }

    #[test]
    fn tau_b_tolerates_nan_scores() {
        // Regression: the comparator used to be
        // `partial_cmp().expect("NaN score")`, so one NaN relevance
        // panicked the whole measure. Under total order NaN ranks as a
        // maximal score and the statistic stays defined and in range.
        let x = vec![1.0, f64::NAN, 2.0, 0.5];
        let y = vec![0.2, 0.9, f64::NAN, 0.1];
        let t = tau_b(&x, &y).expect("non-constant vectors have a tau-b");
        assert!((-1.0..=1.0).contains(&t));
        // An all-NaN vector yields no concordant or discordant pairs
        // (every comparison is Equal under total order) → correlation 0.
        assert_eq!(tau_b(&[f64::NAN, f64::NAN], &[1.0, 2.0]), Some(0.0));
    }

    #[test]
    fn tau_b_with_ties_stays_in_range() {
        let x = vec![1.0, 1.0, 2.0, 3.0, 3.0];
        let y = vec![2.0, 1.0, 1.0, 3.0, 2.0];
        let t = tau_b(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&t));
    }

    #[test]
    fn top_k_identical_lists() {
        let a = vec!["x", "y", "z"];
        assert_eq!(top_k_distance(&a, &a, 0.5), 0.0);
    }

    #[test]
    fn top_k_disjoint_lists_are_maximal() {
        let a = vec![1, 2, 3];
        let b = vec![4, 5, 6];
        assert!((top_k_distance(&a, &b, 0.0) - 1.0).abs() < 1e-12);
        assert!((top_k_distance(&a, &b, 0.5) - 1.0).abs() < 1e-12);
        assert!((top_k_distance(&a, &b, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_same_items_reduces_to_tau() {
        // When the two lists hold the same items, K^(p) / k(k-1)... is the
        // plain discordant-pair count; normalization differs (max is the
        // disjoint value), so compare against the hand-computed penalty.
        let a = vec![1, 2, 3, 4];
        let b = vec![2, 1, 3, 4];
        // 1 discordant pair; max penalty for k=4,k=4,p=0.5: 16 + 0.5*12 = 22.
        assert!((top_k_distance(&a, &b, 0.5) - 1.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_symmetry() {
        let a = vec![1, 2, 3, 4, 5];
        let b = vec![4, 2, 9, 1];
        for &p in &[0.0, 0.3, 0.5, 1.0] {
            assert!((top_k_distance(&a, &b, p) - top_k_distance(&b, &a, p)).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn top_k_partial_overlap_monotone_in_divergence() {
        let a = vec![1, 2, 3, 4, 5];
        let near = vec![1, 2, 3, 4, 6];
        let far = vec![9, 8, 7, 6, 1];
        let d_near = top_k_distance(&a, &near, 0.5);
        let d_far = top_k_distance(&a, &far, 0.5);
        assert!(d_near < d_far);
        assert!(d_near > 0.0);
        assert!(d_far < 1.0);
    }

    #[test]
    fn top_k_empty_lists() {
        let e: Vec<u8> = vec![];
        assert_eq!(top_k_distance(&e, &e, 0.5), 0.0);
        let a = vec![1u8, 2];
        // One list empty: only case-4 pairs within `a` → penalty p each,
        // max = p * C(2,2 pairs) → distance 1 (or 0 if p = 0 avoided by max).
        assert!((top_k_distance(&a, &e, 0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_case2_detects_implied_disagreement() {
        // a = [x, y], b = [y] : b implies y ahead of x; a says x ahead of y.
        let a = vec!["x", "y"];
        let b = vec!["y"];
        let d = top_k_distance(&a, &b, 0.0);
        // Pairs: {x,y}: case 2 with shared item y ranked below x in a → 1.
        // max penalty: cross = 2*1 = 2, within = C(2,2)=1 * p=0 → 2.
        assert!((d - 0.5).abs() < 1e-12);
    }
}
