//! Score histograms for EMD-based unfairness (paper §3.3.1).
//!
//! The EMD notion of unfairness compares the *distribution* of scores (or
//! rank-derived relevances) of a group against each comparable group. A
//! [`Histogram`] bins values from a closed range into equal-width bins and
//! can be normalized to a unit-mass distribution so that two groups of
//! different sizes are comparable.

use serde::{Deserialize, Serialize};

/// Binning configuration shared by the histograms being compared.
///
/// EMD between histograms is only meaningful when both use the same range
/// and bin count; bundling the configuration makes that explicit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinConfig {
    /// Inclusive lower bound of the value range.
    pub lo: f64,
    /// Inclusive upper bound of the value range.
    pub hi: f64,
    /// Number of equal-width bins (≥ 1).
    pub bins: usize,
}

impl BinConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, `bins == 0`, or either bound is not finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "histogram bounds must be finite");
        assert!(lo < hi, "histogram range must be non-empty (lo < hi)");
        assert!(bins > 0, "histogram needs at least one bin");
        Self { lo, hi, bins }
    }

    /// The canonical configuration for scores and relevances in `[0, 1]`
    /// with ten bins — what the framework uses by default.
    pub fn unit(bins: usize) -> Self {
        let n_bins = bins;
        assert!(n_bins > 0, "histogram needs at least one bin");
        Self::new(0.0, 1.0, n_bins)
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins as f64
    }

    /// Index of the bin containing `v`. Values are clamped into the range,
    /// so out-of-range values land in the first/last bin; `hi` itself lands
    /// in the last bin.
    pub fn bin_of(&self, v: f64) -> usize {
        assert!(!v.is_nan(), "cannot bin NaN");
        let clamped = v.clamp(self.lo, self.hi);
        let scaled = (clamped - self.lo) / self.bin_width();
        // `clamped` is finite in `[lo, hi]` and the width is positive, so
        // the quotient is already finite and non-negative; the guard makes
        // that invariant local instead of a whole-struct argument.
        let scaled = if scaled.is_finite() && scaled >= 0.0 { scaled } else { 0.0 };
        let raw = scaled as usize;
        raw.min(self.bins - 1)
    }

    /// Center value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins);
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }
}

/// A histogram of values over a [`BinConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    config: BinConfig,
    counts: Vec<f64>,
    total: f64,
}

impl Histogram {
    /// An empty histogram over `config`.
    pub fn empty(config: BinConfig) -> Self {
        Self { counts: vec![0.0; config.bins], config, total: 0.0 }
    }

    /// Builds a histogram from raw values.
    #[must_use]
    pub fn from_values(config: BinConfig, values: impl IntoIterator<Item = f64>) -> Self {
        let mut h = Self::empty(config);
        for v in values {
            h.add(v);
        }
        h
    }

    /// Adds one observation.
    pub fn add(&mut self, v: f64) {
        let b = self.config.bin_of(v);
        self.counts[b] += 1.0;
        self.total += 1.0;
    }

    /// Adds a weighted observation (used when aggregating pre-counted
    /// data).
    pub fn add_weighted(&mut self, v: f64, w: f64) {
        assert!(w >= 0.0 && w.is_finite(), "weight must be non-negative and finite");
        let b = self.config.bin_of(v);
        self.counts[b] += w;
        self.total += w;
    }

    /// The binning configuration.
    pub fn config(&self) -> BinConfig {
        self.config
    }

    /// Raw per-bin masses.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Whether the histogram holds no mass (up to accumulated f64
    /// rounding noise — see [`crate::measures::float`]).
    pub fn is_empty(&self) -> bool {
        crate::measures::float::approx_zero(self.total)
    }

    /// Unit-mass copy: each bin holds its *fraction* of the total.
    ///
    /// Returns `None` for an empty histogram — an empty group has no score
    /// distribution, and the unfairness drivers skip such groups rather
    /// than invent one.
    pub fn normalized(&self) -> Option<Histogram> {
        if self.is_empty() {
            return None;
        }
        Some(Histogram {
            config: self.config,
            counts: self.counts.iter().map(|c| c / self.total).collect(),
            total: 1.0,
        })
    }

    /// Cumulative distribution over bins (prefix sums of `counts`).
    pub fn cumulative(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_assignment_covers_range() {
        let c = BinConfig::unit(10);
        assert_eq!(c.bin_of(0.0), 0);
        assert_eq!(c.bin_of(0.05), 0);
        assert_eq!(c.bin_of(0.1), 1);
        assert_eq!(c.bin_of(0.95), 9);
        // hi lands in the last bin, not one past it.
        assert_eq!(c.bin_of(1.0), 9);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let c = BinConfig::unit(4);
        assert_eq!(c.bin_of(-3.0), 0);
        assert_eq!(c.bin_of(42.0), 3);
    }

    #[test]
    fn bin_centers() {
        let c = BinConfig::unit(4);
        assert!((c.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((c.bin_center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn rejects_empty_range() {
        let _ = BinConfig::new(1.0, 1.0, 4);
    }

    #[test]
    fn from_values_and_totals() {
        let c = BinConfig::unit(2);
        let h = Histogram::from_values(c, [0.1, 0.2, 0.8]);
        assert_eq!(h.counts(), &[2.0, 1.0]);
        assert_eq!(h.total(), 3.0);
        assert!(!h.is_empty());
    }

    #[test]
    fn normalization() {
        let c = BinConfig::unit(2);
        let h = Histogram::from_values(c, [0.1, 0.2, 0.8, 0.9]);
        let n = h.normalized().unwrap();
        assert_eq!(n.counts(), &[0.5, 0.5]);
        assert!((n.total() - 1.0).abs() < 1e-12);
        // Empty histograms do not normalize.
        assert!(Histogram::empty(c).normalized().is_none());
    }

    #[test]
    fn cumulative_prefix_sums() {
        let c = BinConfig::unit(3);
        let h = Histogram::from_values(c, [0.1, 0.5, 0.9, 0.95]);
        assert_eq!(h.cumulative(), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn weighted_adds() {
        let c = BinConfig::unit(2);
        let mut h = Histogram::empty(c);
        h.add_weighted(0.2, 2.5);
        h.add_weighted(0.8, 0.5);
        assert_eq!(h.counts(), &[2.5, 0.5]);
        assert_eq!(h.total(), 3.0);
    }
}
