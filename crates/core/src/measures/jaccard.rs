//! Jaccard similarity and distance between result sets.
//!
//! The paper's search-engine unfairness (Eq. 1) can use the Jaccard Index
//! between the result lists of two users. Jaccard ignores order and looks
//! only at *which* results the two users saw — complementary to Kendall
//! Tau, which is order-sensitive.
//!
//! Within the F-Box, unfairness must grow when lists diverge, so the
//! drivers use [`distance`] (= 1 − index). Both directions are exposed.
//!
//! Sets are `BTreeSet`s (`T: Ord`), keeping every walk over them in a
//! deterministic order — this module sits inside the cube-build cone
//! checked by the `det-hash-iter` lint.

use std::collections::BTreeSet;

/// Jaccard index `|A ∩ B| / |A ∪ B|` of the *sets* of items in the two
/// lists (duplicates are collapsed). Two empty lists have index 1
/// (identical) by convention.
pub fn index<T: Ord>(a: &[T], b: &[T]) -> f64 {
    let sa: BTreeSet<&T> = a.iter().collect();
    let sb: BTreeSet<&T> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Jaccard distance `1 − index(a, b)` ∈ `[0, 1]`; 0 for identical sets,
/// 1 for disjoint ones. This is the orientation used in Eq. 1, where higher
/// values mean more divergent result sets and hence more unfairness.
pub fn distance<T: Ord>(a: &[T], b: &[T]) -> f64 {
    1.0 - index(a, b)
}

/// Jaccard index of the top-`k` prefixes of two ranked lists — the usual
/// way to compare truncated search-result pages at a fixed depth.
pub fn index_at_k<T: Ord>(a: &[T], b: &[T], k: usize) -> f64 {
    index(&a[..a.len().min(k)], &b[..b.len().min(k)])
}

/// Jaccard distance of the top-`k` prefixes.
pub fn distance_at_k<T: Ord>(a: &[T], b: &[T], k: usize) -> f64 {
    1.0 - index_at_k(a, b, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets() {
        let a = vec!["x", "y", "z"];
        assert_eq!(index(&a, &a), 1.0);
        assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_sets() {
        let a = vec![1, 2];
        let b = vec![3, 4];
        assert_eq!(index(&a, &b), 0.0);
        assert_eq!(distance(&a, &b), 1.0);
    }

    #[test]
    fn partial_overlap() {
        // {a,b,c} vs {b,c,d}: |∩| = 2, |∪| = 4.
        let a = vec!["a", "b", "c"];
        let b = vec!["b", "c", "d"];
        assert!((index(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn order_is_ignored() {
        let a = vec![1, 2, 3];
        let b = vec![3, 2, 1];
        assert_eq!(index(&a, &b), 1.0);
    }

    #[test]
    fn duplicates_collapse() {
        let a = vec![1, 1, 2];
        let b = vec![1, 2, 2];
        assert_eq!(index(&a, &b), 1.0);
    }

    #[test]
    fn empty_conventions() {
        let e: Vec<u8> = vec![];
        assert_eq!(index(&e, &e), 1.0);
        assert_eq!(index(&e, &[1u8]), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = vec![1, 2, 3, 4];
        let b = vec![3, 4, 5];
        assert_eq!(index(&a, &b), index(&b, &a));
    }

    #[test]
    fn at_k_truncates() {
        let a = vec![1, 2, 3, 4, 5];
        let b = vec![1, 2, 9, 9, 9];
        // Top-2 prefixes identical.
        assert_eq!(index_at_k(&a, &b, 2), 1.0);
        assert!(index_at_k(&a, &b, 5) < 1.0);
        // k beyond list length behaves like the full list.
        assert_eq!(index_at_k(&a, &b, 100), index(&a, &b));
        assert_eq!(distance_at_k(&a, &b, 2), 0.0);
    }
}
