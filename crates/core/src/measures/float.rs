//! Epsilon comparisons and audited float→integer conversions for the
//! measure layer.
//!
//! # Why an epsilon, and why this one
//!
//! Every quantity the unfairness definitions compare is built by
//! accumulating f64 terms: EMD operates on unit-mass histograms (paper
//! §3.3.1, Eq. 1 context), exposure sums position discounts over a
//! ranking (Eq. 2, §3.3.2), and Kendall/Jaccard denominators are sums of
//! pair counts. A histogram total that is *mathematically* zero can
//! therefore surface as `1e-17`-ish noise, and a raw `== 0.0` test
//! misclassifies it — silently corrupting every cube cell derived from
//! it.
//!
//! [`EPS`] is `1e-9`, chosen against those formulas:
//!
//! - **Below it is noise.** Summing `n ≤ 10⁶` unit-scale terms (a
//!   large-city group's histogram mass, an exposure total over a full
//!   ranking) accumulates at most `n · ε_machine ≈ 10⁶ · 2.2·10⁻¹⁶ ≈
//!   2.2·10⁻¹⁰` of rounding error — safely under `EPS`.
//! - **Above it is signal.** The smallest meaningful mass difference is
//!   one observation out of `n`: at least `10⁻⁶` of a unit-mass
//!   histogram for `n ≤ 10⁶`, and the smallest exposure discount
//!   (`1/log₂(1+k)` at `k ≤ 10³`) is ≈ `0.1`. Both sit more than three
//!   orders of magnitude above `EPS`.
//!
//! # Why the conversion helpers
//!
//! `expr as usize` on a float truncates toward zero, saturates on
//! overflow, and maps NaN to 0 — all silently. Quota allocation and EMD
//! mass scaling are exactly the places where that skews counts, so the
//! casts live here, once, behind debug assertions (the `float-int-cast`
//! lint denies them anywhere else).

/// Absolute tolerance for unit-scale measure arithmetic (see module
/// docs for the derivation).
pub const EPS: f64 = 1e-9;

/// Whether `x` is zero up to accumulated f64 rounding noise.
#[must_use]
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= EPS
}

/// Whether `a` and `b` are equal up to [`EPS`], scaled by magnitude for
/// values above 1 so the tolerance stays relative where sums grow large.
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * a.abs().max(b.abs()).max(1.0)
}

/// Floors a non-negative finite float to a `usize` index or count
/// (quota seats, bin indices).
#[must_use]
pub fn floor_index(x: f64) -> usize {
    debug_assert!(x.is_finite() && x >= 0.0, "floor_index needs a non-negative finite value");
    x.max(0.0).floor() as usize
}

/// Floors a non-negative finite float to `u64` units (time buckets,
/// hash material).
#[must_use]
pub fn floor_units(x: f64) -> u64 {
    debug_assert!(x.is_finite() && x >= 0.0, "floor_units needs a non-negative finite value");
    x.max(0.0).floor() as u64
}

/// Rounds a non-negative finite float to the nearest `u64` unit count
/// (EMD integer mass scaling).
#[must_use]
pub fn round_units(x: f64) -> u64 {
    debug_assert!(x.is_finite() && x >= 0.0, "round_units needs a non-negative finite value");
    x.max(0.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_zero_separates_noise_from_signal() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(2.2e-10)); // worst-case accumulation noise
        assert!(approx_zero(-2.2e-10));
        assert!(!approx_zero(1e-6)); // one observation in a million
        assert!(!approx_zero(f64::NAN));
    }

    #[test]
    fn approx_eq_is_absolute_below_one_and_relative_above() {
        assert!(approx_eq(0.5, 0.5 + 1e-12));
        assert!(!approx_eq(0.5, 0.5 + 1e-6));
        // At magnitude 1e6 the tolerance scales up accordingly.
        assert!(approx_eq(1e6, 1e6 + 1e-4));
        assert!(!approx_eq(1e6, 1e6 + 1.0));
        assert!(!approx_eq(f64::NAN, f64::NAN));
    }

    #[test]
    fn conversions_floor_round_and_clamp() {
        assert_eq!(floor_index(3.9), 3);
        assert_eq!(floor_index(0.0), 0);
        assert_eq!(floor_units(61.5), 61);
        assert_eq!(round_units(2.5), 3);
        assert_eq!(round_units(2.4), 2);
    }
}
