//! Distance and exposure measures used by the unfairness definitions
//! (paper §3.2–3.3).

pub mod emd;
pub mod exposure;
pub mod float;
pub mod histogram;
pub mod jaccard;
pub mod kendall;
pub mod relevance;

pub use emd::{emd_1d, emd_1d_normalized, emd_general, emd_general_1d, transport_plan};
pub use exposure::{exposure_unfairness, total_exposure, DiscountModel};
pub use float::{approx_eq, approx_zero};
pub use histogram::{BinConfig, Histogram};
pub use relevance::{relevance_from_rank, relevance_vector};
