//! Earth Mover's Distance between score histograms (paper §3.3.1).
//!
//! Two solvers are provided:
//!
//! - [`emd_1d`]: the closed-form EMD for one-dimensional histograms over a
//!   shared equal-width binning — the L1 distance between the two CDFs
//!   scaled by the bin width. This is what the unfairness drivers use.
//! - [`emd_general`]: an exact transportation solver (integer-scaled
//!   min-cost max-flow with Dijkstra + potentials) for arbitrary ground
//!   costs, in the spirit of the fast-EMD solvers the paper cites (Pele &
//!   Werman 2009). It exists to validate the closed form and to support
//!   non-uniform ground distances.
//!
//! Both operate on *unit-mass* distributions: inputs are normalized
//! internally and empty histograms yield `None` (an empty group has no
//! score distribution to compare).

use super::histogram::Histogram;

/// Closed-form 1-D EMD between two histograms sharing a [`BinConfig`]
/// (`Σ_i |CDF_a(i) − CDF_b(i)| · bin_width`), on unit-mass normalizations.
///
/// Returns `None` if either histogram is empty.
///
/// # Panics
///
/// Panics if the histograms use different binning configurations — EMD
/// between incompatible binnings is meaningless.
///
/// [`BinConfig`]: super::histogram::BinConfig
pub fn emd_1d(a: &Histogram, b: &Histogram) -> Option<f64> {
    assert!(a.config() == b.config(), "emd_1d requires identical bin configurations");
    let na = a.normalized()?;
    let nb = b.normalized()?;
    let ca = na.cumulative();
    let cb = nb.cumulative();
    let width = a.config().bin_width();
    Some(ca.iter().zip(&cb).map(|(x, y)| (x - y).abs()).sum::<f64>() * width)
}

/// [`emd_1d`] rescaled to `[0, 1]`: divided by the maximum possible EMD for
/// the binning (all mass in the first bin vs. all mass in the last,
/// `(bins − 1) · bin_width`). Single-bin histograms always compare equal.
pub fn emd_1d_normalized(a: &Histogram, b: &Histogram) -> Option<f64> {
    let raw = emd_1d(a, b)?;
    let cfg = a.config();
    if cfg.bins <= 1 {
        return Some(0.0);
    }
    let max = (cfg.bins - 1) as f64 * cfg.bin_width();
    Some((raw / max).clamp(0.0, 1.0))
}

/// Exact EMD between two unit-mass distributions with an arbitrary ground
/// cost `cost(i, j) ≥ 0` between supply bin `i` and demand bin `j`.
///
/// `supply` and `demand` are non-negative masses; each is normalized to
/// total mass 1 before solving. Returns `None` if either side has zero
/// total mass.
///
/// Masses are scaled to integers (2³² resolution) and the resulting
/// balanced transportation problem is solved exactly with successive
/// shortest augmenting paths over Johnson potentials, so the result is the
/// true optimum of the discretized problem (absolute mass error ≤ 2⁻³²
/// per bin).
///
/// # Panics
///
/// Panics if any mass or cost is negative or non-finite.
pub fn emd_general(
    supply: &[f64],
    demand: &[f64],
    cost: impl Fn(usize, usize) -> f64,
) -> Option<f64> {
    let s = normalize_to_units(supply)?;
    let d = normalize_to_units(demand)?;
    let n = s.len();
    let m = d.len();

    // Pre-evaluate costs and validate them.
    let mut costs = vec![0.0f64; n * m];
    for i in 0..n {
        for j in 0..m {
            let c = cost(i, j);
            assert!(c >= 0.0 && c.is_finite(), "ground cost must be non-negative and finite");
            costs[i * m + j] = c;
        }
    }

    let total_cost = transport(&s, &d, &costs, m);
    Some(total_cost / SCALE as f64)
}

/// EMD between two histograms with ground distance = |bin center
/// difference|, solved by the general transportation solver. Agrees with
/// [`emd_1d`] (property-tested) but works for any non-negative cost.
pub fn emd_general_1d(a: &Histogram, b: &Histogram) -> Option<f64> {
    assert!(a.config() == b.config(), "emd_general_1d requires identical bin configurations");
    let cfg = a.config();
    emd_general(a.counts(), b.counts(), |i, j| (cfg.bin_center(i) - cfg.bin_center(j)).abs())
}

const SCALE: u64 = 1 << 32;

/// Normalizes non-negative masses to integers summing exactly to [`SCALE`].
fn normalize_to_units(masses: &[f64]) -> Option<Vec<u64>> {
    for &x in masses {
        assert!(x >= 0.0 && x.is_finite(), "mass must be non-negative and finite");
    }
    let total: f64 = masses.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut units: Vec<u64> =
        masses.iter().map(|&x| super::float::round_units((x / total) * SCALE as f64)).collect();
    // Fix rounding drift on the largest bin so the total is exact.
    let sum: u64 = units.iter().sum();
    let largest = units
        .iter()
        .enumerate()
        .max_by_key(|&(_, &u)| u)
        .map(|(i, _)| i)
        .expect("masses is non-empty when total > 0");
    if sum > SCALE {
        units[largest] -= sum - SCALE;
    } else {
        units[largest] += SCALE - sum;
    }
    Some(units)
}

/// Solves the balanced transportation problem exactly.
///
/// Successive shortest augmenting paths with Dijkstra over reduced costs
/// (Johnson potentials). Node layout: `0` source, `1..=n` supplies,
/// `n+1..=n+m` demands, `n+m+1` sink.
fn transport(supply: &[u64], demand: &[u64], costs: &[f64], m: usize) -> f64 {
    let n = supply.len();
    let nodes = n + m + 2;
    let source = 0usize;
    let sink = n + m + 1;

    // Residual graph as an adjacency list of directed edges; each edge
    // stores its reverse-edge index for residual updates.
    #[derive(Clone)]
    struct Edge {
        to: usize,
        cap: u64,
        cost: f64,
        rev: usize,
    }
    let mut graph: Vec<Vec<Edge>> = vec![Vec::new(); nodes];
    let add_edge = |graph: &mut Vec<Vec<Edge>>, from: usize, to: usize, cap: u64, cost: f64| {
        let rev_from = graph[to].len();
        let rev_to = graph[from].len();
        graph[from].push(Edge { to, cap, cost, rev: rev_from });
        graph[to].push(Edge { to: from, cap: 0, cost: -cost, rev: rev_to });
    };

    for (i, &s) in supply.iter().enumerate() {
        if s > 0 {
            add_edge(&mut graph, source, 1 + i, s, 0.0);
        }
    }
    for (j, &d) in demand.iter().enumerate() {
        if d > 0 {
            add_edge(&mut graph, 1 + n + j, sink, d, 0.0);
        }
    }
    for i in 0..n {
        if supply[i] == 0 {
            continue;
        }
        for j in 0..m {
            if demand[j] == 0 {
                continue;
            }
            add_edge(&mut graph, 1 + i, 1 + n + j, u64::MAX / 4, costs[i * m + j]);
        }
    }

    let mut potential = vec![0.0f64; nodes];
    let mut total_cost = 0.0f64;
    let mut remaining: u64 = supply.iter().sum();

    while remaining > 0 {
        // Dijkstra on reduced costs from source.
        let mut dist = vec![f64::INFINITY; nodes];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; nodes]; // (node, edge idx)
        dist[source] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(HeapEntry { dist: 0.0, node: source });
        while let Some(HeapEntry { dist: du, node: u }) = heap.pop() {
            if du > dist[u] {
                continue;
            }
            for (ei, e) in graph[u].iter().enumerate() {
                if e.cap == 0 {
                    continue;
                }
                let reduced = e.cost + potential[u] - potential[e.to];
                // Reduced costs are ≥ 0 up to rounding; clamp tiny negatives.
                let reduced = reduced.max(0.0);
                let nd = du + reduced;
                if nd + 1e-15 < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = Some((u, ei));
                    heap.push(HeapEntry { dist: nd, node: e.to });
                }
            }
        }
        assert!(
            dist[sink].is_finite(),
            "transportation problem infeasible: sink unreachable with {remaining} units left"
        );
        for v in 0..nodes {
            if dist[v].is_finite() {
                potential[v] += dist[v];
            }
        }
        // Find bottleneck along the path.
        let mut bottleneck = remaining;
        let mut v = sink;
        while let Some((u, ei)) = prev[v] {
            bottleneck = bottleneck.min(graph[u][ei].cap);
            v = u;
        }
        // Augment.
        let mut v = sink;
        while let Some((u, ei)) = prev[v] {
            total_cost += graph[u][ei].cost * bottleneck as f64;
            graph[u][ei].cap -= bottleneck;
            let rev = graph[u][ei].rev;
            graph[v][rev].cap += bottleneck;
            v = u;
        }
        remaining -= bottleneck;
    }
    total_cost
}

/// Max-heap entry ordered by *smallest* distance (reversed comparison).
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want smallest dist first.
        // Total order keeps the heap invariants even if a cost ever goes
        // NaN, instead of panicking mid-solve.
        other.dist.total_cmp(&self.dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::histogram::BinConfig;

    fn hist(values: &[f64]) -> Histogram {
        Histogram::from_values(BinConfig::unit(10), values.iter().copied())
    }

    #[test]
    fn identical_histograms_have_zero_emd() {
        let h = hist(&[0.1, 0.5, 0.9]);
        assert_eq!(emd_1d(&h, &h), Some(0.0));
        assert_eq!(emd_1d_normalized(&h, &h), Some(0.0));
    }

    #[test]
    fn extreme_histograms_have_max_emd() {
        let lo = hist(&[0.0, 0.01]);
        let hi = hist(&[0.99, 1.0]);
        // All mass moves 9 bins of width 0.1.
        let d = emd_1d(&lo, &hi).unwrap();
        assert!((d - 0.9).abs() < 1e-12);
        assert!((emd_1d_normalized(&lo, &hi).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emd_shift_by_one_bin() {
        let a = hist(&[0.05]); // bin 0
        let b = hist(&[0.15]); // bin 1
        let d = emd_1d(&a, &b).unwrap();
        assert!((d - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = hist(&[0.5]);
        let e = Histogram::empty(BinConfig::unit(10));
        assert_eq!(emd_1d(&h, &e), None);
        assert_eq!(emd_1d(&e, &h), None);
        assert_eq!(emd_general_1d(&e, &h), None);
    }

    #[test]
    #[should_panic(expected = "identical bin configurations")]
    fn mismatched_configs_rejected() {
        let a = Histogram::from_values(BinConfig::unit(10), [0.5]);
        let b = Histogram::from_values(BinConfig::unit(5), [0.5]);
        emd_1d(&a, &b);
    }

    #[test]
    fn emd_is_symmetric() {
        let a = hist(&[0.1, 0.2, 0.9]);
        let b = hist(&[0.4, 0.5]);
        assert!((emd_1d(&a, &b).unwrap() - emd_1d(&b, &a).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn normalization_makes_group_size_irrelevant() {
        // Same shape, different sizes → zero distance.
        let a = hist(&[0.1, 0.9]);
        let b = hist(&[0.1, 0.1, 0.9, 0.9]);
        assert!(emd_1d(&a, &b).unwrap().abs() < 1e-12);
    }

    #[test]
    fn general_solver_matches_closed_form() {
        let pairs = [
            (vec![0.1, 0.5, 0.9], vec![0.2, 0.6, 0.95]),
            (vec![0.05, 0.05, 0.95], vec![0.5]),
            (vec![0.0, 1.0], vec![0.5, 0.5]),
            (vec![0.3, 0.3, 0.3], vec![0.7, 0.7, 0.7, 0.7]),
        ];
        for (va, vb) in pairs {
            let a = hist(&va);
            let b = hist(&vb);
            let closed = emd_1d(&a, &b).unwrap();
            let general = emd_general_1d(&a, &b).unwrap();
            assert!(
                (closed - general).abs() < 1e-6,
                "closed={closed} general={general} for {va:?} vs {vb:?}"
            );
        }
    }

    #[test]
    fn general_solver_with_custom_cost() {
        // Two bins, unit cost between different bins: EMD = total mass that
        // must move = |p_a(0) - p_b(0)|.
        let d =
            emd_general(&[1.0, 0.0], &[0.25, 0.75], |i, j| if i == j { 0.0 } else { 1.0 }).unwrap();
        assert!((d - 0.75).abs() < 1e-6);
    }

    #[test]
    fn general_solver_zero_mass_side() {
        assert_eq!(emd_general(&[0.0, 0.0], &[1.0], |_, _| 1.0), None);
        assert_eq!(emd_general(&[1.0], &[0.0], |_, _| 1.0), None);
    }

    #[test]
    fn triangle_inequality_on_sample() {
        let a = hist(&[0.1, 0.2]);
        let b = hist(&[0.5, 0.6]);
        let c = hist(&[0.9, 0.95]);
        let ab = emd_1d(&a, &b).unwrap();
        let bc = emd_1d(&b, &c).unwrap();
        let ac = emd_1d(&a, &c).unwrap();
        assert!(ac <= ab + bc + 1e-12);
    }
}
