//! Earth Mover's Distance between score histograms (paper §3.3.1).
//!
//! Two solvers are provided:
//!
//! - [`emd_1d`]: the closed-form EMD for one-dimensional histograms over a
//!   shared equal-width binning — the L1 distance between the two CDFs
//!   scaled by the bin width. This is what the unfairness drivers use.
//! - [`emd_general`]: an exact transportation solver (integer-scaled
//!   min-cost max-flow with Dijkstra + potentials) for arbitrary ground
//!   costs, in the spirit of the fast-EMD solvers the paper cites (Pele &
//!   Werman 2009). It exists to validate the closed form and to support
//!   non-uniform ground distances.
//!
//! Both operate on *unit-mass* distributions: inputs are normalized
//! internally and empty histograms yield `None` (an empty group has no
//! score distribution to compare).

use super::histogram::Histogram;

/// Closed-form 1-D EMD between two histograms sharing a [`BinConfig`]
/// (`Σ_i |CDF_a(i) − CDF_b(i)| · bin_width`), on unit-mass normalizations.
///
/// Returns `None` if either histogram is empty.
///
/// # Panics
///
/// Panics if the histograms use different binning configurations — EMD
/// between incompatible binnings is meaningless.
///
/// [`BinConfig`]: super::histogram::BinConfig
pub fn emd_1d(a: &Histogram, b: &Histogram) -> Option<f64> {
    assert!(a.config() == b.config(), "emd_1d requires identical bin configurations");
    let na = a.normalized()?;
    let nb = b.normalized()?;
    let ca = na.cumulative();
    let cb = nb.cumulative();
    let width = a.config().bin_width();
    Some(ca.iter().zip(&cb).map(|(x, y)| (x - y).abs()).sum::<f64>() * width)
}

/// [`emd_1d`] rescaled to `[0, 1]`: divided by the maximum possible EMD for
/// the binning (all mass in the first bin vs. all mass in the last,
/// `(bins − 1) · bin_width`). Single-bin histograms always compare equal.
pub fn emd_1d_normalized(a: &Histogram, b: &Histogram) -> Option<f64> {
    let raw = emd_1d(a, b)?;
    let cfg = a.config();
    if cfg.bins <= 1 {
        return Some(0.0);
    }
    let max = (cfg.bins - 1) as f64 * cfg.bin_width();
    Some((raw / max).clamp(0.0, 1.0))
}

/// Exact EMD between two unit-mass distributions with an arbitrary ground
/// cost `cost(i, j) ≥ 0` between supply bin `i` and demand bin `j`.
///
/// `supply` and `demand` are non-negative masses; each is normalized to
/// total mass 1 before solving. Returns `None` if either side has zero
/// total mass.
///
/// Masses are scaled to integers (2³² resolution) and the resulting
/// balanced transportation problem is solved exactly with successive
/// shortest augmenting paths over Johnson potentials, so the result is the
/// true optimum of the discretized problem (absolute mass error ≤ 2⁻³²
/// per bin).
///
/// # Panics
///
/// Panics if any mass or cost is negative or non-finite.
pub fn emd_general(
    supply: &[f64],
    demand: &[f64],
    cost: impl Fn(usize, usize) -> f64,
) -> Option<f64> {
    let s = normalize_to_units(supply)?;
    let d = normalize_to_units(demand)?;
    let n = s.len();
    let m = d.len();

    // Pre-evaluate costs and validate them.
    let mut costs = vec![0.0f64; n * m];
    for i in 0..n {
        for j in 0..m {
            let c = cost(i, j);
            assert!(c >= 0.0 && c.is_finite(), "ground cost must be non-negative and finite");
            costs[i * m + j] = c;
        }
    }

    let total_cost = transport(&s, &d, &costs, m).cost;
    Some(total_cost / SCALE as f64)
}

/// EMD between two histograms with ground distance = |bin center
/// difference|, solved by the general transportation solver. Agrees with
/// [`emd_1d`] (property-tested) but works for any non-negative cost.
pub fn emd_general_1d(a: &Histogram, b: &Histogram) -> Option<f64> {
    assert!(a.config() == b.config(), "emd_general_1d requires identical bin configurations");
    let cfg = a.config();
    emd_general(a.counts(), b.counts(), |i, j| (cfg.bin_center(i) - cfg.bin_center(j)).abs())
}

const SCALE: u64 = 1 << 32;

/// Normalizes non-negative masses to integers summing exactly to [`SCALE`],
/// by largest-remainder apportionment: floor every scaled mass, then hand
/// the missing units to the bins with the largest fractional remainders
/// (ties broken by lower index).
///
/// The drift is never dumped on a single bin: with thousands of near-equal
/// tiny masses the combined rounding drift can exceed any one bin's units,
/// and the old "fix the largest bin" correction underflowed there (panic in
/// debug, wrap in release). Largest-remainder spreads at most one unit per
/// bin per pass, so every intermediate value stays in range.
fn normalize_to_units(masses: &[f64]) -> Option<Vec<u64>> {
    for &x in masses {
        assert!(x >= 0.0 && x.is_finite(), "mass must be non-negative and finite");
    }
    let total: f64 = masses.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let scaled: Vec<f64> = masses.iter().map(|&x| (x / total) * SCALE as f64).collect();
    let mut units: Vec<u64> = scaled.iter().map(|&x| super::float::floor_units(x)).collect();
    let sum: u64 = units.iter().sum();
    if sum == SCALE {
        return Some(units);
    }
    // Bins ordered by descending fractional remainder, ties by lower index
    // (`sort_by` is stable), so the apportionment is deterministic.
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = scaled[a] - units[a] as f64;
        let rb = scaled[b] - units[b] as f64;
        rb.total_cmp(&ra)
    });
    if sum < SCALE {
        // Flooring loses < 1 unit per bin, so the deficit fits in one
        // cyclic pass in practice; the cycle guards against float-sum
        // drift ever pushing it past one unit per bin.
        let mut deficit = SCALE - sum;
        for &i in order.iter().cycle() {
            if deficit == 0 {
                break;
            }
            units[i] += 1;
            deficit -= 1;
        }
    } else {
        // Unreachable with flooring up to float-sum drift (each floor is
        // ≤ its exact share, so the integer sum cannot exceed SCALE by a
        // whole unit), but handled symmetrically: drain the excess from
        // the smallest remainders that still hold units.
        let mut excess = sum - SCALE;
        for &i in order.iter().rev().cycle() {
            if excess == 0 {
                break;
            }
            if units[i] > 0 {
                units[i] -= 1;
                excess -= 1;
            }
        }
    }
    Some(units)
}

/// An exact integer transportation plan: the minimum-cost routing of
/// `supply` units onto `demand` slots under a non-negative ground cost.
///
/// `flow[i][j]` is the number of units moved from supply bin `i` to demand
/// bin `j`; row sums equal `supply`, column sums equal `demand`, and the
/// total cost `Σ flow[i][j] · cost(i, j)` is minimal. Built for the
/// mitigation layer's exposure-optimal re-ranker (groups → rank positions),
/// which needs the *assignment*, not just the optimal cost that
/// [`emd_general`] reports.
///
/// # Panics
///
/// Panics if the supply and demand totals differ (the transportation
/// problem must be balanced) or any cost is negative or non-finite.
#[must_use]
pub fn transport_plan(
    supply: &[u64],
    demand: &[u64],
    cost: impl Fn(usize, usize) -> f64,
) -> Vec<Vec<u64>> {
    let supply_total: u64 = supply.iter().sum();
    let demand_total: u64 = demand.iter().sum();
    assert!(
        supply_total == demand_total,
        "transport_plan requires balanced totals: supply {supply_total} vs demand {demand_total}"
    );
    let n = supply.len();
    let m = demand.len();
    let mut costs = vec![0.0f64; n * m];
    for i in 0..n {
        for j in 0..m {
            let c = cost(i, j);
            assert!(c >= 0.0 && c.is_finite(), "ground cost must be non-negative and finite");
            costs[i * m + j] = c;
        }
    }
    transport(supply, demand, &costs, m).flow
}

/// What [`transport`] solves for: the optimal cost and the realizing flow.
struct TransportSolution {
    /// Total cost of the optimal plan (in cost × unit terms).
    cost: f64,
    /// `flow[i][j]`: units routed from supply bin `i` to demand bin `j`.
    flow: Vec<Vec<u64>>,
}

/// Solves the balanced transportation problem exactly.
///
/// Successive shortest augmenting paths with Dijkstra over reduced costs
/// (Johnson potentials). Node layout: `0` source, `1..=n` supplies,
/// `n+1..=n+m` demands, `n+m+1` sink.
/// Capacity of a supply→demand arc: effectively unbounded, while leaving
/// headroom so residual updates cannot overflow.
const EDGE_CAP: u64 = u64::MAX / 4;

fn transport(supply: &[u64], demand: &[u64], costs: &[f64], m: usize) -> TransportSolution {
    let n = supply.len();
    let nodes = n + m + 2;
    let source = 0usize;
    let sink = n + m + 1;

    // Residual graph as an adjacency list of directed edges; each edge
    // stores its reverse-edge index for residual updates.
    #[derive(Clone)]
    struct Edge {
        to: usize,
        cap: u64,
        cost: f64,
        rev: usize,
    }
    let mut graph: Vec<Vec<Edge>> = vec![Vec::new(); nodes];
    let add_edge = |graph: &mut Vec<Vec<Edge>>, from: usize, to: usize, cap: u64, cost: f64| {
        let rev_from = graph[to].len();
        let rev_to = graph[from].len();
        graph[from].push(Edge { to, cap, cost, rev: rev_from });
        graph[to].push(Edge { to: from, cap: 0, cost: -cost, rev: rev_to });
    };

    for (i, &s) in supply.iter().enumerate() {
        if s > 0 {
            add_edge(&mut graph, source, 1 + i, s, 0.0);
        }
    }
    for (j, &d) in demand.iter().enumerate() {
        if d > 0 {
            add_edge(&mut graph, 1 + n + j, sink, d, 0.0);
        }
    }
    for i in 0..n {
        if supply[i] == 0 {
            continue;
        }
        for j in 0..m {
            if demand[j] == 0 {
                continue;
            }
            add_edge(&mut graph, 1 + i, 1 + n + j, EDGE_CAP, costs[i * m + j]);
        }
    }

    let mut potential = vec![0.0f64; nodes];
    let mut total_cost = 0.0f64;
    let mut remaining: u64 = supply.iter().sum();

    while remaining > 0 {
        // Dijkstra on reduced costs from source.
        let mut dist = vec![f64::INFINITY; nodes];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; nodes]; // (node, edge idx)
        dist[source] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(HeapEntry { dist: 0.0, node: source });
        while let Some(HeapEntry { dist: du, node: u }) = heap.pop() {
            if du > dist[u] {
                continue;
            }
            for (ei, e) in graph[u].iter().enumerate() {
                if e.cap == 0 {
                    continue;
                }
                let reduced = e.cost + potential[u] - potential[e.to];
                // Reduced costs are ≥ 0 up to rounding; clamp tiny negatives.
                let reduced = reduced.max(0.0);
                let nd = du + reduced;
                if nd + 1e-15 < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = Some((u, ei));
                    heap.push(HeapEntry { dist: nd, node: e.to });
                }
            }
        }
        assert!(
            dist[sink].is_finite(),
            "transportation problem infeasible: sink unreachable with {remaining} units left"
        );
        for v in 0..nodes {
            if dist[v].is_finite() {
                potential[v] += dist[v];
            }
        }
        // Find bottleneck along the path.
        let mut bottleneck = remaining;
        let mut v = sink;
        while let Some((u, ei)) = prev[v] {
            bottleneck = bottleneck.min(graph[u][ei].cap);
            v = u;
        }
        // Augment.
        let mut v = sink;
        while let Some((u, ei)) = prev[v] {
            total_cost += graph[u][ei].cost * bottleneck as f64;
            let cap = graph[u][ei].cap;
            debug_assert!(bottleneck <= cap, "bottleneck exceeds residual capacity");
            graph[u][ei].cap = cap - bottleneck;
            let rev = graph[u][ei].rev;
            graph[v][rev].cap += bottleneck;
            v = u;
        }
        debug_assert!(bottleneck <= remaining, "pushed more flow than supply left");
        remaining -= bottleneck;
    }

    // Read the optimal plan back out of the residual graph: a
    // supply→demand edge started at `EDGE_CAP`, so its spent capacity is
    // the flow routed across it.
    let mut flow = vec![vec![0u64; m]; n];
    let base = 1 + n;
    for (i, row) in flow.iter_mut().enumerate() {
        for e in &graph[1 + i] {
            let to = e.to;
            if (base..base + m).contains(&to) {
                debug_assert!(base <= to, "contains() bounds the demand-node id");
                let cap = e.cap;
                debug_assert!(cap <= EDGE_CAP, "residual capacity grew past the initial cap");
                row[to - base] = EDGE_CAP - cap;
            }
        }
    }
    TransportSolution { cost: total_cost, flow }
}

/// Max-heap entry ordered by *smallest* distance (reversed comparison).
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want smallest dist first.
        // Total order keeps the heap invariants even if a cost ever goes
        // NaN, instead of panicking mid-solve.
        other.dist.total_cmp(&self.dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::histogram::BinConfig;

    fn hist(values: &[f64]) -> Histogram {
        Histogram::from_values(BinConfig::unit(10), values.iter().copied())
    }

    #[test]
    fn identical_histograms_have_zero_emd() {
        let h = hist(&[0.1, 0.5, 0.9]);
        assert_eq!(emd_1d(&h, &h), Some(0.0));
        assert_eq!(emd_1d_normalized(&h, &h), Some(0.0));
    }

    #[test]
    fn extreme_histograms_have_max_emd() {
        let lo = hist(&[0.0, 0.01]);
        let hi = hist(&[0.99, 1.0]);
        // All mass moves 9 bins of width 0.1.
        let d = emd_1d(&lo, &hi).unwrap();
        assert!((d - 0.9).abs() < 1e-12);
        assert!((emd_1d_normalized(&lo, &hi).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emd_shift_by_one_bin() {
        let a = hist(&[0.05]); // bin 0
        let b = hist(&[0.15]); // bin 1
        let d = emd_1d(&a, &b).unwrap();
        assert!((d - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = hist(&[0.5]);
        let e = Histogram::empty(BinConfig::unit(10));
        assert_eq!(emd_1d(&h, &e), None);
        assert_eq!(emd_1d(&e, &h), None);
        assert_eq!(emd_general_1d(&e, &h), None);
    }

    #[test]
    #[should_panic(expected = "identical bin configurations")]
    fn mismatched_configs_rejected() {
        let a = Histogram::from_values(BinConfig::unit(10), [0.5]);
        let b = Histogram::from_values(BinConfig::unit(5), [0.5]);
        emd_1d(&a, &b);
    }

    #[test]
    fn emd_is_symmetric() {
        let a = hist(&[0.1, 0.2, 0.9]);
        let b = hist(&[0.4, 0.5]);
        assert!((emd_1d(&a, &b).unwrap() - emd_1d(&b, &a).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn normalization_makes_group_size_irrelevant() {
        // Same shape, different sizes → zero distance.
        let a = hist(&[0.1, 0.9]);
        let b = hist(&[0.1, 0.1, 0.9, 0.9]);
        assert!(emd_1d(&a, &b).unwrap().abs() < 1e-12);
    }

    #[test]
    fn general_solver_matches_closed_form() {
        let pairs = [
            (vec![0.1, 0.5, 0.9], vec![0.2, 0.6, 0.95]),
            (vec![0.05, 0.05, 0.95], vec![0.5]),
            (vec![0.0, 1.0], vec![0.5, 0.5]),
            (vec![0.3, 0.3, 0.3], vec![0.7, 0.7, 0.7, 0.7]),
        ];
        for (va, vb) in pairs {
            let a = hist(&va);
            let b = hist(&vb);
            let closed = emd_1d(&a, &b).unwrap();
            let general = emd_general_1d(&a, &b).unwrap();
            assert!(
                (closed - general).abs() < 1e-6,
                "closed={closed} general={general} for {va:?} vs {vb:?}"
            );
        }
    }

    #[test]
    fn general_solver_with_custom_cost() {
        // Two bins, unit cost between different bins: EMD = total mass that
        // must move = |p_a(0) - p_b(0)|.
        let d =
            emd_general(&[1.0, 0.0], &[0.25, 0.75], |i, j| if i == j { 0.0 } else { 1.0 }).unwrap();
        assert!((d - 0.75).abs() < 1e-6);
    }

    #[test]
    fn general_solver_zero_mass_side() {
        assert_eq!(emd_general(&[0.0, 0.0], &[1.0], |_, _| 1.0), None);
        assert_eq!(emd_general(&[1.0], &[0.0], |_, _| 1.0), None);
    }

    #[test]
    fn normalize_survives_drift_larger_than_any_bin() {
        // 300 000 equal masses: each bin's share is SCALE / 300 000 ≈
        // 14 316.56, so flooring loses ≈ 0.56 units per bin — a combined
        // drift of ≈ 167 000 units, an order of magnitude more than any
        // single bin holds. The old "subtract the drift from the largest
        // bin" correction underflowed here (debug panic, release wrap).
        let masses = vec![1.0; 300_000];
        let units = normalize_to_units(&masses).unwrap();
        assert_eq!(units.iter().sum::<u64>(), SCALE);
        // Largest-remainder keeps every bin within one unit of its share.
        let share = SCALE / 300_000;
        assert!(units.iter().all(|&u| u == share || u == share + 1));
    }

    #[test]
    fn normalize_handles_hundreds_of_equal_masses() {
        for n in [100usize, 300, 997] {
            let units = normalize_to_units(&vec![0.25; n]).unwrap();
            assert_eq!(units.iter().sum::<u64>(), SCALE, "n = {n}");
        }
    }

    #[test]
    fn normalize_is_exact_on_zero_and_tiny_mixes() {
        let units = normalize_to_units(&[0.0, 1e-300, 1.0, 0.0, 1e-12]).unwrap();
        assert_eq!(units.iter().sum::<u64>(), SCALE);
        assert_eq!(units[0], 0, "a zero mass stays a zero bin up to drift units");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        #[test]
        fn normalize_sums_to_scale(
            masses in proptest::collection::vec(0.0f64..1e12, 1..400),
        ) {
            if let Some(units) = normalize_to_units(&masses) {
                proptest::prop_assert_eq!(units.iter().sum::<u64>(), SCALE);
                proptest::prop_assert_eq!(units.len(), masses.len());
            } else {
                proptest::prop_assert!(masses.iter().sum::<f64>() <= 0.0);
            }
        }

        #[test]
        fn normalize_sums_to_scale_on_equal_masses(
            mass in 1e-9f64..1e9,
            n in 1usize..3000,
        ) {
            let units = normalize_to_units(&vec![mass; n]).unwrap();
            proptest::prop_assert_eq!(units.iter().sum::<u64>(), SCALE);
        }
    }

    #[test]
    fn transport_plan_routes_identity_for_free() {
        // Matching supply and demand with zero diagonal cost: everything
        // stays put.
        let plan = transport_plan(&[3, 5], &[3, 5], |i, j| if i == j { 0.0 } else { 1.0 });
        assert_eq!(plan, vec![vec![3, 0], vec![0, 5]]);
    }

    #[test]
    fn transport_plan_is_a_balanced_minimal_plan() {
        let supply = [4u64, 2, 3];
        let demand = [1u64, 1, 1, 1, 1, 1, 1, 1, 1];
        let cost = |i: usize, j: usize| (i as f64 - j as f64 / 3.0).abs();
        let plan = transport_plan(&supply, &demand, cost);
        for (i, row) in plan.iter().enumerate() {
            assert_eq!(row.iter().sum::<u64>(), supply[i], "row {i} sum");
        }
        for j in 0..demand.len() {
            assert_eq!(plan.iter().map(|r| r[j]).sum::<u64>(), demand[j], "col {j} sum");
        }
        // Cross-check the plan's cost against the cost-only solver on the
        // same (normalized) problem.
        let plan_cost: f64 = plan
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().map(move |(j, &f)| f as f64 * cost(i, j)))
            .sum();
        let supply_f: Vec<f64> = supply.iter().map(|&s| s as f64).collect();
        let demand_f: Vec<f64> = demand.iter().map(|&d| d as f64).collect();
        let optimum = emd_general(&supply_f, &demand_f, cost).unwrap() * 9.0;
        assert!((plan_cost - optimum).abs() < 1e-5, "plan {plan_cost} vs optimum {optimum}");
    }

    #[test]
    #[should_panic(expected = "balanced")]
    fn transport_plan_rejects_unbalanced_totals() {
        let _ = transport_plan(&[2], &[1], |_, _| 0.0);
    }

    #[test]
    fn triangle_inequality_on_sample() {
        let a = hist(&[0.1, 0.2]);
        let b = hist(&[0.5, 0.6]);
        let c = hist(&[0.9, 0.95]);
        let ab = emd_1d(&a, &b).unwrap();
        let bc = emd_1d(&b, &c).unwrap();
        let ac = emd_1d(&a, &c).unwrap();
        assert!(ac <= ab + bc + 1e-12);
    }
}
