//! # fbox-par — deterministic scoped data-parallelism over `std::thread`
//!
//! The unfairness-cube build, the index build, and the two crawls are
//! embarrassingly parallel: every `(q, l)` cell (and every posting list)
//! is computed independently. The build environment is offline — no rayon
//! — so this crate hand-rolls the small slice of a work-stealing pool the
//! workspace actually needs:
//!
//! - [`scope`]: scoped threads (workers may borrow from the caller's
//!   stack);
//! - [`par_map`]: map a slice through a function on all workers, with a
//!   **guaranteed deterministic merge order** — the output is element `i`
//!   of the input mapped to slot `i`, regardless of which worker computed
//!   it or when it finished, so parallel output is byte-identical to the
//!   serial `items.iter().map(f).collect()`;
//! - [`par_chunks`]: the same over contiguous chunks, for work too fine
//!   to schedule per element.
//!
//! ## Worker count
//!
//! [`max_threads`] resolves, in order: a scoped [`with_threads`] override
//! (used by tests and benchmarks so they never mutate the process
//! environment), the `FBOX_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`]. A resolved count of 1 runs the
//! closure inline on the caller's thread — no spawn, no channel, nothing
//! to deschedule.
//!
//! ## Scheduling
//!
//! Workers pull the next unclaimed element index from a shared atomic
//! counter, so a slow cell (a large result page, a dense histogram) does
//! not stall a statically assigned partition. Each worker accumulates
//! `(index, result)` pairs privately; the caller's thread merges them by
//! index after the scope joins. Worker panics are re-raised on the caller
//! via [`std::panic::resume_unwind`] after all workers have stopped.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Scoped worker-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker count parallel operations on this thread will use:
/// a [`with_threads`] override if one is active, else `FBOX_THREADS`,
/// else the machine's available parallelism (1 if unknown).
pub fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Some(n) = threads_from_env(std::env::var("FBOX_THREADS").ok().as_deref()) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Parses an `FBOX_THREADS` value; `None` for unset, empty, zero, or
/// non-numeric input (which all fall back to auto-detection).
fn threads_from_env(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Runs `f` with the worker count pinned to `n` on this thread (nested
/// parallel calls included), restoring the previous setting afterwards —
/// also on unwind. This is how tests compare `FBOX_THREADS ∈ {1, 2, 8}`
/// without racing on the process environment.
#[must_use = "with_threads returns the closure's result"]
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Scoped threads: workers spawned on `s` may borrow from the enclosing
/// stack frame and are all joined before `scope` returns. Thin, deliberate
/// wrapper over [`std::thread::scope`] so call sites stay within this
/// crate's API (and its determinism conventions).
///
/// Trace context does **not** cross `scope` automatically — only
/// [`par_map`]/[`par_chunks`] do that. Hand-rolled fan-outs should
/// capture a [`fbox_trace::Fork`] before spawning, call
/// `fork.branch(slot)` with a deterministic slot on each worker, and
/// finish each worker with [`fbox_trace::flush_thread`] (worker TLS
/// destructors are not guaranteed to have run when `scope` returns).
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

/// Maps every element of `items` through `f` on up to [`max_threads`]
/// workers and returns the results **in input order** — byte-identical to
/// `items.iter().map(f).collect()` for any pure `f`, at any worker count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // Captured before the serial/parallel split: branch slot `i` is the
    // item index in both paths, so the recorded span tree is identical
    // at any worker count.
    let fork = fbox_trace::Fork::capture(items.len());
    let workers = max_threads().min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let _task = fork.branch(i);
                f(item)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let run = |out: &mut Vec<(usize, R)>| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(item) = items.get(i) else { break };
        let _task = fork.branch(i);
        out.push((i, f(item)));
    };
    let parts: Vec<Vec<(usize, R)>> = scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    run(&mut out);
                    fbox_trace::flush_thread();
                    out
                })
            })
            .collect();
        handles.into_iter().map(join_propagating).collect()
    });
    merge_indexed(parts, items.len())
}

/// Maps contiguous chunks of `items` (each at most `chunk_size` long)
/// through `f`, one result per chunk, returned in chunk order. Use when
/// per-element work is too small to schedule individually.
///
/// # Panics
///
/// Panics if `chunk_size` is 0.
pub fn par_chunks<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be at least 1");
    let n_chunks = items.len().div_ceil(chunk_size);
    // Branch slot = chunk index in both paths (see `par_map`).
    let fork = fbox_trace::Fork::capture(n_chunks);
    let workers = max_threads().min(n_chunks);
    if workers <= 1 {
        return items
            .chunks(chunk_size)
            .enumerate()
            .map(|(c, chunk)| {
                let _task = fork.branch(c);
                f(chunk)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let lo = c * chunk_size;
                        let hi = usize::min(lo + chunk_size, items.len());
                        let _task = fork.branch(c);
                        out.push((c, f(&items[lo..hi])));
                    }
                    fbox_trace::flush_thread();
                    out
                })
            })
            .collect();
        handles.into_iter().map(join_propagating).collect()
    });
    merge_indexed(parts, n_chunks)
}

/// Joins a scoped worker, re-raising its panic payload on the caller.
fn join_propagating<R>(handle: std::thread::ScopedJoinHandle<'_, R>) -> R {
    match handle.join() {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Flattens per-worker `(index, result)` batches into index order — the
/// deterministic-merge step. `expected` is the total result count; every
/// index in `0..expected` must appear exactly once (guaranteed by the
/// atomic counter handing each index to exactly one worker).
fn merge_indexed<R>(parts: Vec<Vec<(usize, R)>>, expected: usize) -> Vec<R> {
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(expected);
    for part in parts {
        indexed.extend(part);
    }
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert!(indexed.iter().enumerate().all(|(slot, &(i, _))| slot == i));
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let parallel = with_threads(threads, || par_map(&items, |&x| x * x));
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(with_threads(4, || par_map(&[7u32], |&x| x + 1)), vec![8]);
    }

    #[test]
    fn par_map_runs_every_element_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = with_threads(4, || {
            par_map(&items, |&x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x
            })
        });
        assert_eq!(out.len(), 257);
        assert_eq!(calls.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn par_chunks_matches_serial_chunking() {
        let items: Vec<u64> = (0..103).collect();
        let serial: Vec<u64> = items.chunks(10).map(|c| c.iter().sum()).collect();
        for threads in [1, 2, 8] {
            let parallel =
                with_threads(threads, || par_chunks(&items, 10, |c| c.iter().sum::<u64>()));
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be at least 1")]
    fn par_chunks_rejects_zero_chunk() {
        par_chunks(&[1u8, 2, 3], 0, |c| c.len());
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate_to_caller() {
        let items: Vec<u32> = (0..64).collect();
        let _ = with_threads(4, || {
            par_map(&items, |&x| {
                assert!(x != 13, "worker boom");
                x
            })
        });
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = max_threads();
        let inner = with_threads(3, || {
            assert_eq!(max_threads(), 3);
            assert_eq!(with_threads(5, max_threads), 5);
            max_threads()
        });
        assert_eq!(inner, 3);
        assert_eq!(max_threads(), outer);
    }

    #[test]
    fn with_threads_restores_on_unwind() {
        let before = max_threads();
        let caught = std::panic::catch_unwind(|| with_threads(7, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(max_threads(), before);
    }

    #[test]
    fn with_threads_clamps_zero_to_one() {
        assert_eq!(with_threads(0, max_threads), 1);
    }

    #[test]
    fn env_parsing_rules() {
        assert_eq!(threads_from_env(None), None);
        assert_eq!(threads_from_env(Some("")), None);
        assert_eq!(threads_from_env(Some("0")), None);
        assert_eq!(threads_from_env(Some("banana")), None);
        assert_eq!(threads_from_env(Some("4")), Some(4));
        assert_eq!(threads_from_env(Some(" 12 ")), Some(12));
    }

    #[test]
    fn scope_joins_borrowing_workers() {
        let data = [1u64, 2, 3, 4];
        let total = AtomicU64::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|| total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed));
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }
}
