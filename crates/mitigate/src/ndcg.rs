//! Normalized discounted cumulative gain — the utility yardstick for
//! every intervention.
//!
//! A re-ranking that fixes exposure by shredding relevance order is not a
//! mitigation, it is a different kind of damage. Each re-ranked list is
//! therefore scored with standard NDCG (Järvelin & Kekäläinen 2002):
//! `DCG = Σ gain_i / log₂(i + 2)` over 0-based positions, normalized by
//! the DCG of the ideal (descending-gain) arrangement of the same pool.

/// Discounted cumulative gain of gains already in rank order (position 0
/// = top rank): `Σ gains[i] / log₂(i + 2)`.
#[must_use]
pub fn dcg(gains: &[f64]) -> f64 {
    gains.iter().enumerate().map(|(i, &g)| g / (i as f64 + 2.0).log2()).sum()
}

/// NDCG of a ranked prefix against the ideal arrangement of `gain_pool`:
/// `DCG(gains_in_order) / DCG(top |gains_in_order| of pool, descending)`.
///
/// The pool may be larger than the ranked prefix (a truncated list judged
/// against everything it *could* have shown). A pool with no gain mass
/// has nothing to rank and scores a vacuous `1.0`.
///
/// # Panics
///
/// Panics if the prefix is longer than the pool.
#[must_use]
pub fn ndcg(gains_in_order: &[f64], gain_pool: &[f64]) -> f64 {
    assert!(
        gains_in_order.len() <= gain_pool.len(),
        "ranked prefix cannot exceed its candidate pool"
    );
    let mut ideal: Vec<f64> = gain_pool.to_vec();
    ideal.sort_by(|a, b| b.total_cmp(a));
    ideal.truncate(gains_in_order.len());
    let ideal_dcg = dcg(&ideal);
    if ideal_dcg <= 1e-12 {
        return 1.0;
    }
    dcg(gains_in_order) / ideal_dcg
}

/// NDCG of a permutation of one list: `perm[pos]` is the index (into
/// `gains`) placed at rank `pos + 1`. The ideal is the descending sort of
/// `gains` itself.
///
/// # Panics
///
/// Panics if `perm` is not index-compatible with `gains`.
#[must_use]
pub fn ndcg_of_permutation(gains: &[f64], perm: &[usize]) -> f64 {
    let reordered: Vec<f64> = perm.iter().map(|&i| gains[i]).collect();
    ndcg(&reordered, gains)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcg_matches_hand_computation() {
        // Gains [3, 2, 1] in rank order:
        //   3/log₂2 + 2/log₂3 + 1/log₂4
        // = 3/1 + 2/1.5849625 + 1/2
        // = 3 + 1.2618595 + 0.5 = 4.7618595.
        let d = dcg(&[3.0, 2.0, 1.0]);
        assert!((d - 4.761_859_5).abs() < 1e-6, "got {d}");
    }

    #[test]
    fn ideal_order_scores_one() {
        assert!((ndcg(&[3.0, 2.0, 1.0], &[3.0, 2.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((ndcg_of_permutation(&[0.4, 0.3, 0.1], &[0, 1, 2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_order_matches_hand_computation() {
        // Gains [3, 2, 1], permutation [2, 0, 1] puts gain 1 on top:
        //   DCG = 1/1 + 3/1.5849625 + 2/2 = 1 + 1.8927893 + 1 = 3.8927893
        //   ideal = 4.7618595 (previous test)
        //   NDCG = 3.8927893 / 4.7618595 = 0.8174935.
        let v = ndcg_of_permutation(&[3.0, 2.0, 1.0], &[2, 0, 1]);
        assert!((v - 0.817_493_5).abs() < 1e-5, "got {v}");
    }

    #[test]
    fn truncated_prefix_judged_against_pool_ideal() {
        // Prefix shows gains [1, 3] out of pool {3, 2, 1, 0}:
        //   DCG = 1/1 + 3/1.5849625 = 2.8927893
        //   ideal@2 = 3/1 + 2/1.5849625 = 4.2618595
        //   NDCG = 2.8927893 / 4.2618595 = 0.6787622.
        let v = ndcg(&[1.0, 3.0], &[3.0, 2.0, 1.0, 0.0]);
        assert!((v - 0.678_762_2).abs() < 1e-5, "got {v}");
    }

    #[test]
    fn zero_gain_pool_is_vacuously_perfect() {
        assert!((ndcg(&[0.0, 0.0], &[0.0, 0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_order_still_positive_and_below_one() {
        let v = ndcg_of_permutation(&[5.0, 0.0, 0.0, 4.0], &[1, 2, 0, 3]);
        assert!(v > 0.0 && v < 1.0, "got {v}");
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn prefix_longer_than_pool_rejected() {
        let _ = ndcg(&[1.0, 2.0], &[1.0]);
    }
}
