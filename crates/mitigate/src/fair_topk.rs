//! FA\*IR re-ranking (Zehlike et al., *FA\*IR: A Fair Top-k Ranking
//! Algorithm*, CIKM 2017).
//!
//! A ranking satisfies *ranked group fairness* at protected proportion `p`
//! and significance `α` when every prefix of length `k` contains at least
//! [`min_protected`]`(k, p, α)` protected items — the largest minimum that
//! a fair Bernoulli(p) lottery over ranks would still violate with
//! probability at most `α`. The greedy re-ranker walks the positions
//! top-down, placing the best remaining protected candidate whenever the
//! table demands one and the best remaining candidate overall otherwise;
//! Zehlike et al. prove this is utility-optimal among rankings satisfying
//! the constraint.
//!
//! The binomial inverse-CDF table is computed in place: at worst a few
//! dozen multiply-adds per prefix length, so no external statistics crate
//! (and no caching) is warranted.

use crate::Candidate;

/// The minimum number of protected items any fair ranking must place in a
/// prefix of length `k`, given protected proportion `p` and significance
/// `α`: the smallest `m` with `BinomialCDF(m; k, p) > α`.
///
/// Degenerate proportions short-circuit: `p ≤ 0` never requires protected
/// items, `p ≥ 1` requires the whole prefix.
#[must_use]
pub fn min_protected(k: usize, p: f64, alpha: f64) -> usize {
    if p <= 0.0 || k == 0 {
        return 0;
    }
    if p >= 1.0 {
        return k;
    }
    let q = 1.0 - p;
    // pmf(0) = q^k, then pmf(m+1) = pmf(m) · (k−m)/(m+1) · p/q.
    // k is a list prefix (tens), so q^k cannot underflow meaningfully.
    let mut pmf = q.powi(i32::try_from(k).expect("prefix lengths fit in i32"));
    let mut cdf = pmf;
    let mut m = 0usize;
    while cdf <= alpha && m < k {
        pmf *= (k - m) as f64 / (m + 1) as f64 * (p / q);
        cdf += pmf;
        m += 1;
    }
    m
}

/// FA\*IR greedy re-ranking. `protected[i]` flags candidate `i`; the
/// target proportion is the protected share of `cands` itself. Returns
/// the new order as indices into `cands`.
///
/// # Panics
///
/// Panics if `protected` is not aligned with `cands`.
#[must_use = "the permutation is the entire point of re-ranking"]
pub fn fair_rerank(cands: &[Candidate], protected: &[bool], alpha: f64) -> Vec<usize> {
    assert_eq!(protected.len(), cands.len(), "one protected flag per candidate");
    let n = cands.len();
    if n == 0 {
        return Vec::new();
    }
    let n_protected = protected.iter().filter(|&&f| f).count();
    let p = n_protected as f64 / n as f64;

    // Two queues, each best-first (relevance desc, original index asc).
    let mut by_flag: Vec<std::collections::VecDeque<usize>> = {
        let classed: Vec<Candidate> = cands
            .iter()
            .enumerate()
            .map(|(i, c)| Candidate {
                index: c.index,
                class: usize::from(protected[i]),
                relevance: c.relevance,
            })
            .collect();
        crate::class_queues(&classed, 2)
    };
    let mut non = std::mem::take(&mut by_flag[0]);
    let mut prot = std::mem::take(&mut by_flag[1]);

    let mut out = Vec::with_capacity(n);
    let mut placed_protected = 0usize;
    for k in 1..=n {
        let need = min_protected(k, p, alpha);
        let take_protected = match (prot.front(), non.front()) {
            (Some(_), None) => true,
            (None, _) => false,
            (Some(&hp), Some(&hn)) => {
                placed_protected < need
                    || cands[hp]
                        .relevance
                        .total_cmp(&cands[hn].relevance)
                        .then(cands[hn].index.cmp(&cands[hp].index))
                        .is_gt()
            }
        };
        let next = if take_protected {
            placed_protected += 1;
            prot.pop_front()
        } else {
            non.pop_front()
        };
        out.push(next.expect("one queue is non-empty while positions remain"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(index: usize, relevance: f64) -> Candidate {
        Candidate { index, class: 0, relevance }
    }

    #[test]
    fn binomial_table_matches_zehlike_p_half() {
        // Hand-computed for p = 0.5, α = 0.1 (FA*IR Table 1 column):
        //  k=1: F(0) = 0.5      > 0.1           → m = 0
        //  k=3: F(0) = 0.125    > 0.1           → m = 0
        //  k=4: F(0) = 0.0625, F(1) = 0.3125    → m = 1
        //  k=6: F(1) = 7/64 ≈ 0.109             → m = 1
        //  k=7: F(1) = 0.0625, F(2) = 0.2266    → m = 2
        //  k=9: F(2) ≈ 0.0898, F(3) ≈ 0.2539    → m = 3
        let table: Vec<usize> = (1..=10).map(|k| min_protected(k, 0.5, 0.1)).collect();
        assert_eq!(table, vec![0, 0, 0, 1, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn binomial_table_matches_hand_computed_low_p() {
        // p = 0.3, α = 0.1: F(0; 6, .3) = 0.7⁶ ≈ 0.1176 > 0.1 but
        // F(0; 7, .3) = 0.7⁷ ≈ 0.0824, F(1; 7, .3) ≈ 0.3294 → first 1 at k=7.
        assert_eq!(min_protected(6, 0.3, 0.1), 0);
        assert_eq!(min_protected(7, 0.3, 0.1), 1);
        // p = 0.1, α = 0.1: 0.9^21 ≈ 0.1094 > 0.1 ≥ 0.9^22 ≈ 0.0985.
        assert_eq!(min_protected(21, 0.1, 0.1), 0);
        assert_eq!(min_protected(22, 0.1, 0.1), 1);
    }

    #[test]
    fn binomial_table_degenerate_proportions() {
        assert_eq!(min_protected(10, 0.0, 0.1), 0);
        assert_eq!(min_protected(10, 1.0, 0.1), 10);
        assert_eq!(min_protected(0, 0.5, 0.1), 0);
    }

    #[test]
    fn table_is_monotone_in_k() {
        for &(p, alpha) in &[(0.3, 0.1), (0.5, 0.1), (0.5, 0.05), (0.7, 0.15)] {
            let mut prev = 0;
            for k in 1..=60 {
                let m = min_protected(k, p, alpha);
                assert!(m >= prev, "m(k) must not decrease: p={p} α={alpha} k={k}");
                assert!(m <= k);
                prev = m;
            }
        }
    }

    #[test]
    fn rerank_promotes_protected_into_demanded_prefixes() {
        // Six candidates, relevance strictly decreasing with index; the
        // last three are protected (p = 0.5). With α = 0.1 the table
        // demands the first protected item by k = 4 — without FA*IR the
        // prefix of 4 would hold only one (index 3).
        let cands: Vec<Candidate> = (0..6).map(|i| cand(i, 1.0 - i as f64 / 10.0)).collect();
        let protected = [false, false, false, true, true, true];
        let order = fair_rerank(&cands, &protected, 0.1);
        // Greedy: ranks 1–3 go to the best overall (0, 1, 2 — protected
        // not yet demanded: m(1..3) = 0... but m(4) = 1 arrives with
        // protected count 0 only if none placed; index 3 is the best
        // protected and the best remaining overall at k=4 anyway.
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);

        // Depress the protected candidates' relevance so merit alone
        // would bury them; the table must still pull them up.
        let weak: Vec<Candidate> =
            (0..6).map(|i| cand(i, if i < 3 { 1.0 - i as f64 / 10.0 } else { 0.1 })).collect();
        let order = fair_rerank(&weak, &protected, 0.1);
        for k in 1..=6 {
            let placed = order[..k].iter().filter(|&&i| protected[i]).count();
            let need = min_protected(k, 0.5, 0.1);
            assert!(placed >= need, "prefix {k} holds {placed} protected, needs {need}");
        }
        // Within each group, relative order is by relevance (stable).
        let prot_positions: Vec<usize> = order.iter().copied().filter(|&i| protected[i]).collect();
        assert_eq!(prot_positions, vec![3, 4, 5]);
        // The first protected item is forced into the top-4 prefix.
        assert!(order[..4].iter().any(|&i| protected[i]));
    }

    #[test]
    fn rerank_with_everyone_protected_is_identity_order() {
        let cands: Vec<Candidate> = (0..5).map(|i| cand(i, 1.0 - i as f64 / 10.0)).collect();
        let order = fair_rerank(&cands, &[true; 5], 0.1);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rerank_empty_is_empty() {
        assert!(fair_rerank(&[], &[], 0.1).is_empty());
    }
}
