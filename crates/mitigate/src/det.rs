//! Deterministic constrained re-ranking (Geyik, Ambler & Kenthapadi,
//! *Fairness-Aware Ranking in Search & Recommendation Systems*, KDD 2019).
//!
//! All three variants walk positions top-down keeping, for every
//! demographic class `a` with target proportion `p_a`, the running count
//! inside `[⌊k·p_a⌋, ⌈k·p_a⌉]`. Whenever some class has fallen below its
//! floor it must be served first; the variants differ in how they choose
//! among classes that are merely below their ceiling:
//!
//! - **DetGreedy** takes the class whose best remaining candidate has the
//!   highest relevance — maximal utility, but it can paint itself into a
//!   corner when several floors arrive at once;
//! - **DetCons** takes the most *urgent* class — the one whose floor will
//!   next demand an item soonest (smallest `(placed_a + 1) / p_a`);
//! - **DetRelaxed** rounds that urgency up to an integer position first,
//!   then resolves the resulting ties by relevance — conservative where it
//!   matters, greedy where it does not.
//!
//! Target proportions here are always the class shares of the candidate
//! list itself (`count_a / n`), which keeps every bound computable in
//! exact integer arithmetic: `⌊k·p_a⌋ = (k·count_a) div n` — no float
//! rounding, no epsilon, bit-identical everywhere.

use crate::Candidate;

/// Which of the three KDD'19 interleaving policies to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetVariant {
    /// Utility-greedy among feasible classes.
    Greedy,
    /// Most-constrained-first (exact rational urgency).
    Cons,
    /// Integer-relaxed urgency, ties broken by utility.
    Relaxed,
}

/// Urgency of class `a`: the first position `k` at which the floor
/// constraint `⌊k · count_a/n⌋ ≥ placed_a + 1` starts to bind, i.e.
/// `⌈(placed_a + 1) · n / count_a⌉`. Exposed as an exact rational
/// `(numerator, divisor) = ((placed_a + 1) · n, count_a)` so DetCons can
/// compare without rounding while DetRelaxed rounds up first.
fn urgency(placed: usize, count: usize, n: usize) -> (u64, u64) {
    ((placed as u64 + 1) * n as u64, count as u64)
}

/// Deterministic constrained re-ranking. Target proportions are the class
/// shares of `cands` itself. Returns the new order as indices into
/// `cands`.
///
/// # Panics
///
/// Panics if a candidate's class is `≥ n_classes`.
#[must_use = "the permutation is the entire point of re-ranking"]
pub fn det_rerank(cands: &[Candidate], n_classes: usize, variant: DetVariant) -> Vec<usize> {
    let n = cands.len();
    if n == 0 {
        return Vec::new();
    }
    let mut queues = crate::class_queues(cands, n_classes);
    let counts: Vec<usize> = queues.iter().map(std::collections::VecDeque::len).collect();
    let mut placed = vec![0usize; n_classes];
    let mut out = Vec::with_capacity(n);

    for k in 1..=n {
        // Integer floor/ceil of k·p_a with p_a = count_a / n.
        let below = |a: usize, bound: usize| queues[a].front().is_some() && placed[a] < bound;
        let floor_k = |a: usize| (k * counts[a]) / n;
        let ceil_k = |a: usize| (k * counts[a]).div_ceil(n);

        let mut pool: Vec<usize> = (0..n_classes).filter(|&a| below(a, floor_k(a))).collect();
        if pool.is_empty() {
            pool = (0..n_classes).filter(|&a| below(a, ceil_k(a))).collect();
        }
        if pool.is_empty() {
            // Every in-bounds class is exhausted (rounding slack); fall
            // back to any class with candidates left.
            pool = (0..n_classes).filter(|&a| queues[a].front().is_some()).collect();
        }

        // (head relevance desc, head original index asc) — the utility
        // order shared by all three variants' tie-breaking.
        let head_order = |&a: &usize, &b: &usize| {
            let (ha, hb) = (queues[a][0], queues[b][0]);
            cands[hb]
                .relevance
                .total_cmp(&cands[ha].relevance)
                .then(cands[ha].index.cmp(&cands[hb].index))
        };
        let chosen = match variant {
            DetVariant::Greedy => pool
                .iter()
                .min_by(|a, b| head_order(a, b))
                .copied()
                .expect("pool is non-empty while positions remain"),
            DetVariant::Cons => pool
                .iter()
                .min_by(|&&a, &&b| {
                    let (na, da) = urgency(placed[a], counts[a], n);
                    let (nb, db) = urgency(placed[b], counts[b], n);
                    // a/da < b/db  ⇔  a·db < b·da (denominators positive).
                    (na * db).cmp(&(nb * da)).then_with(|| head_order(&a, &b))
                })
                .copied()
                .expect("pool is non-empty while positions remain"),
            DetVariant::Relaxed => pool
                .iter()
                .min_by(|&&a, &&b| {
                    let (na, da) = urgency(placed[a], counts[a], n);
                    let (nb, db) = urgency(placed[b], counts[b], n);
                    na.div_ceil(da).cmp(&nb.div_ceil(db)).then_with(|| head_order(&a, &b))
                })
                .copied()
                .expect("pool is non-empty while positions remain"),
        };
        placed[chosen] += 1;
        out.push(queues[chosen].pop_front().expect("chosen class has a candidate"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Candidates with relevance decreasing in index; `classes[i]` gives
    /// the class of candidate `i`.
    fn roster(classes: &[usize]) -> Vec<Candidate> {
        classes
            .iter()
            .enumerate()
            .map(|(i, &class)| Candidate {
                index: i,
                class,
                relevance: 1.0 - i as f64 / classes.len() as f64,
            })
            .collect()
    }

    fn check_bounds(order: &[usize], cands: &[Candidate], n_classes: usize) {
        let n = cands.len();
        let counts: Vec<usize> =
            (0..n_classes).map(|a| cands.iter().filter(|c| c.class == a).count()).collect();
        let mut placed = vec![0usize; n_classes];
        for (pos, &i) in order.iter().enumerate() {
            let k = pos + 1;
            placed[cands[i].class] += 1;
            for a in 0..n_classes {
                let floor = (k * counts[a]) / n;
                let ceil = (k * counts[a]).div_ceil(n);
                // The floor can lag while another class is also below its
                // own floor; it may never lag by more than the positions
                // still owed. The ceiling is a hard bound only when other
                // classes still have candidates to give.
                assert!(
                    placed[a] + (n - k) >= floor,
                    "class {a} can no longer reach its floor at k={k}"
                );
                let others_left = (0..n_classes)
                    .filter(|&b| b != a)
                    .map(|b| counts[b] - placed[b])
                    .sum::<usize>();
                if others_left > 0 {
                    assert!(placed[a] <= ceil, "class {a} exceeds ceil {ceil} at k={k}");
                }
            }
        }
    }

    #[test]
    fn all_variants_respect_floor_and_ceiling() {
        // Three classes with shares 1/2, 1/3, 1/6 over 12 candidates, the
        // minority classes buried at the bottom by relevance.
        let classes = [0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2];
        let cands = roster(&classes);
        for v in [DetVariant::Greedy, DetVariant::Cons, DetVariant::Relaxed] {
            let order = det_rerank(&cands, 3, v);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..12).collect::<Vec<_>>(), "{v:?} must permute");
            check_bounds(&order, &cands, 3);
        }
    }

    #[test]
    fn greedy_keeps_merit_order_until_a_floor_binds() {
        // Shares 2/4 and 2/4; floors: k=2 → ⌊2·½⌋ = 1 each, so the
        // second position must already switch class.
        let cands = roster(&[0, 0, 1, 1]);
        let order = det_rerank(&cands, 2, DetVariant::Greedy);
        assert_eq!(order, vec![0, 2, 1, 3]);
    }

    #[test]
    fn cons_serves_the_most_urgent_class_first() {
        // Class 1 holds 1 of 5 (p = 0.2, first floor at k = 5); class 0
        // holds 4 of 5. DetCons places class 0 until its own floor
        // pressure wins: urgency(0 placed, count 4) = 5/4 < 5/1.
        let cands = roster(&[0, 0, 0, 0, 1]);
        let order = det_rerank(&cands, 2, DetVariant::Cons);
        check_bounds(&order, &cands, 2);
        // The singleton minority lands exactly at its floor position (5th
        // place ⌊5·0.2⌋ = 1), not earlier: the majority stays more urgent
        // the whole way down.
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn variants_disagree_where_urgency_rounding_differs() {
        // Two classes, 3 + 3 over 6. At k = 1 both are below their
        // ceilings with urgencies 6/3 = 2 (exact). DetGreedy takes the
        // best head (class of candidate 0). DetCons compares exact
        // urgencies — tied — and falls back to the same head order, so
        // all three agree here; the interesting split needs asymmetric
        // shares.
        let sym = roster(&[0, 1, 0, 1, 0, 1]);
        let g = det_rerank(&sym, 2, DetVariant::Greedy);
        let c = det_rerank(&sym, 2, DetVariant::Cons);
        let r = det_rerank(&sym, 2, DetVariant::Relaxed);
        assert_eq!(g, c);
        assert_eq!(c, r);

        // Shares 4/6 vs 2/6, minority on top by relevance. At k = 1:
        // exact urgencies 6/4 = 1.5 (majority) vs 6/2 = 3 (minority), so
        // DetCons opens with the *majority's* best (index 1) even though
        // the minority head (index 0) has higher relevance. DetRelaxed
        // rounds urgencies to ⌈1.5⌉ = 2 and ⌈3⌉ = 3 — still distinct, so
        // it follows DetCons — while DetGreedy takes pure merit.
        let asym = roster(&[1, 0, 0, 1, 0, 0]);
        let g = det_rerank(&asym, 2, DetVariant::Greedy);
        let c = det_rerank(&asym, 2, DetVariant::Cons);
        assert_eq!(g[0], 0, "greedy opens with the best candidate");
        assert_eq!(c[0], 1, "cons opens with the most urgent class");
        for order in [g, c] {
            check_bounds(&order, &asym, 2);
        }
    }

    #[test]
    fn relaxed_breaks_rounded_urgency_ties_by_merit() {
        // Shares 3/6 vs 3/6 but heads interleaved: rounded urgencies tie
        // at every step, so DetRelaxed must reproduce DetGreedy exactly.
        let cands = roster(&[1, 0, 1, 0, 1, 0]);
        assert_eq!(
            det_rerank(&cands, 2, DetVariant::Relaxed),
            det_rerank(&cands, 2, DetVariant::Greedy),
        );
    }

    #[test]
    fn single_class_is_pure_merit_order() {
        let cands = roster(&[0, 0, 0, 0]);
        for v in [DetVariant::Greedy, DetVariant::Cons, DetVariant::Relaxed] {
            assert_eq!(det_rerank(&cands, 1, v), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn empty_and_missing_classes_are_tolerated() {
        assert!(det_rerank(&[], 3, DetVariant::Greedy).is_empty());
        // Class 1 of 3 has no members at all.
        let cands = roster(&[0, 2, 0, 2]);
        let order = det_rerank(&cands, 3, DetVariant::Cons);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
