//! Fairness interventions: re-ranking mitigations that close the loop the
//! paper opens.
//!
//! The F-Box *quantifies* unfairness (paper §3–4) but stops short of
//! *acting* on it. This crate implements three families of post-processing
//! interventions from the fair-ranking literature, re-ranks a platform's
//! observations with them, and hands the result back to
//! [`FBox::from_market`] / [`FBox::from_search`] so the same measures that
//! diagnosed the bias can audit the cure:
//!
//! - **FA\*IR** (Zehlike et al., CIKM 2017): per-prefix minimum counts for
//!   a binary protected group, derived from inverse binomial CDF tables —
//!   see [`fair_topk`];
//! - **DetGreedy / DetCons / DetRelaxed** (Geyik et al., KDD 2019):
//!   deterministic constrained interleaving over any number of demographic
//!   classes — see [`det`];
//! - **exposure-optimal re-ranking** (after Singh & Joachims, KDD 2018):
//!   position exposure apportioned to each class in proportion to its
//!   relevance mass, solved exactly as a transportation problem on
//!   [`fbox_core::measures::transport_plan`] — see [`exposure_opt`].
//!
//! Everything is hand-rolled on the standard library: the binomial tables,
//! the constrained interleavers, and the assignment LP all have
//! closed-form or combinatorial solutions small enough that an external
//! solver would be pure liability in an offline build.
//!
//! Determinism is a hard contract, matching the cube builds: every
//! intervention breaks relevance ties by original position, the per-cell
//! fan-out in [`rerank`] runs under [`fbox_par::par_map`] with a
//! deterministic merge, and the output is byte-identical at any
//! `FBOX_THREADS`.
//!
//! [`FBox::from_market`]: fbox_core::FBox::from_market
//! [`FBox::from_search`]: fbox_core::FBox::from_search

pub mod det;
pub mod exposure_opt;
pub mod fair_topk;
pub mod ndcg;
pub mod rerank;

pub use rerank::{
    rerank_market, rerank_search, MarketRerank, RerankConfig, RerankStats, SearchRerank,
};

/// One ranked item as the interventions see it: its position in the
/// original list, its demographic class, and its relevance.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Identity: 0-based position in the original ranking. Also the
    /// deterministic tie-breaker everywhere relevance ties.
    pub index: usize,
    /// Demographic class id, `0..n_classes`.
    pub class: usize,
    /// Relevance (platform score or rank-derived, §3.3.1). Higher is
    /// better.
    pub relevance: f64,
}

/// The re-ranking interventions this crate implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intervention {
    /// FA\*IR ranked-group-fairness re-ranking (binary protected group).
    FaStarIr,
    /// DetGreedy: feasible interleaving, greediest on utility.
    DetGreedy,
    /// DetCons: feasible interleaving, favors the most constrained class.
    DetCons,
    /// DetRelaxed: DetCons with integer-relaxed urgency, breaking ties on
    /// utility.
    DetRelaxed,
    /// Exposure-optimal assignment via the transportation problem.
    ExposureOptimal,
}

impl Intervention {
    /// Every intervention, in report order.
    pub const ALL: [Intervention; 5] = [
        Intervention::FaStarIr,
        Intervention::DetGreedy,
        Intervention::DetCons,
        Intervention::DetRelaxed,
        Intervention::ExposureOptimal,
    ];

    /// Stable label used in reports, telemetry names, and trace spans.
    pub fn label(self) -> &'static str {
        match self {
            Intervention::FaStarIr => "fair",
            Intervention::DetGreedy => "det-greedy",
            Intervention::DetCons => "det-cons",
            Intervention::DetRelaxed => "det-relaxed",
            Intervention::ExposureOptimal => "exposure-opt",
        }
    }
}

impl std::fmt::Display for Intervention {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Re-ranks one candidate list with one intervention, returning the new
/// order as indices into `cands` (position 0 of the result is the new top
/// rank).
///
/// `protected[c]` flags which classes FA\*IR treats as protected; the
/// other interventions use all `n_classes` classes with target proportions
/// equal to each class's share of `cands` itself (the intervention
/// enforces *representation*, it does not import external quotas).
///
/// # Panics
///
/// Panics if a candidate's class is out of range or `protected` is not
/// `n_classes` long.
#[must_use = "the permutation is the entire point of re-ranking"]
pub fn rerank_candidates(
    cands: &[Candidate],
    n_classes: usize,
    protected: &[bool],
    intervention: Intervention,
    config: &RerankConfig,
) -> Vec<usize> {
    assert_eq!(protected.len(), n_classes, "one protected flag per class");
    assert!(cands.iter().all(|c| c.class < n_classes), "candidate class out of range");
    match intervention {
        Intervention::FaStarIr => {
            let flags: Vec<bool> = cands.iter().map(|c| protected[c.class]).collect();
            fair_topk::fair_rerank(cands, &flags, config.alpha)
        }
        Intervention::DetGreedy => det::det_rerank(cands, n_classes, det::DetVariant::Greedy),
        Intervention::DetCons => det::det_rerank(cands, n_classes, det::DetVariant::Cons),
        Intervention::DetRelaxed => det::det_rerank(cands, n_classes, det::DetVariant::Relaxed),
        Intervention::ExposureOptimal => {
            exposure_opt::exposure_rerank(cands, n_classes, config.discount)
        }
    }
}

/// Splits candidate indices into per-class queues, each sorted by
/// descending relevance with the original index as the deterministic
/// tie-breaker. Queues are stored best-first; consumers pop from the
/// front.
pub(crate) fn class_queues(
    cands: &[Candidate],
    n_classes: usize,
) -> Vec<std::collections::VecDeque<usize>> {
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        cands[b].relevance.total_cmp(&cands[a].relevance).then(cands[a].index.cmp(&cands[b].index))
    });
    let mut queues = vec![std::collections::VecDeque::new(); n_classes];
    for i in order {
        queues[cands[i].class].push_back(i);
    }
    queues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(index: usize, class: usize, relevance: f64) -> Candidate {
        Candidate { index, class, relevance }
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<&str> = Intervention::ALL.iter().map(|i| i.label()).collect();
        assert_eq!(labels, ["fair", "det-greedy", "det-cons", "det-relaxed", "exposure-opt"]);
        assert_eq!(Intervention::ExposureOptimal.to_string(), "exposure-opt");
    }

    #[test]
    fn class_queues_sort_by_relevance_then_index() {
        let cands = vec![
            cand(0, 0, 0.5),
            cand(1, 1, 0.9),
            cand(2, 0, 0.5), // ties with index 0 → index 0 first
            cand(3, 0, 0.8),
        ];
        let queues = class_queues(&cands, 2);
        assert_eq!(Vec::from(queues[0].clone()), vec![3, 0, 2]);
        assert_eq!(Vec::from(queues[1].clone()), vec![1]);
    }

    #[test]
    fn every_intervention_returns_a_permutation() {
        let cands: Vec<Candidate> = (0..9).map(|i| cand(i, i % 3, 1.0 - i as f64 / 10.0)).collect();
        let config = RerankConfig::default();
        for iv in Intervention::ALL {
            let order = rerank_candidates(&cands, 3, &[false, true, false], iv, &config);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..9).collect::<Vec<_>>(), "{iv} must permute");
        }
    }

    #[test]
    #[should_panic(expected = "one protected flag per class")]
    fn protected_flags_must_match_classes() {
        let _ = rerank_candidates(
            &[cand(0, 0, 1.0)],
            2,
            &[true],
            Intervention::FaStarIr,
            &RerankConfig::default(),
        );
    }
}
