//! Exposure-optimal re-ranking (after Singh & Joachims, *Fairness of
//! Exposure in Rankings*, KDD 2018).
//!
//! The exposure measure (paper §3.3.2) calls a ranking unfair when a
//! group's share of position exposure deviates from its share of
//! relevance. This intervention inverts that definition: it *allocates*
//! positions so each class's exposure lands as close as possible to its
//! relevance-proportional target.
//!
//! Singh & Joachims solve a doubly-stochastic LP over position
//! probabilities and sample rankings from a Birkhoff–von-Neumann
//! decomposition. A deterministic framework wants a deterministic
//! ranking, so we solve the integral special case in two stages. Each
//! class `a` with `n_a` members and relevance mass `R_a` is owed total
//! exposure `T_a = E · R_a / R` (with `E` the whole pool's exposure),
//! i.e. a per-slot target `τ_a = T_a / n_a`.
//!
//! **Seed.** Assigning positions to classes to minimise
//! `Σ |exposure(pos) − τ_class(pos)|` is a transportation problem —
//! supplies are class sizes, demands one unit per position — solved
//! exactly by the min-cost-flow machinery already inside
//! [`fbox_core::measures::transport_plan`].
//!
//! **Repair.** Per-slot deviation is a proxy: the fairness objective sums
//! *per class*, `Σ_a |E_a − T_a|` with `E_a` the class's total exposure,
//! and a class can hit its total exactly through slots that are
//! individually far from `τ_a`. So the transport seed (or the original
//! order, whichever already scores better) is refined by deterministic
//! best-swap hill climbing on the group objective: repeatedly apply the
//! cross-class position swap that most reduces `Σ_a |E_a − T_a|`, first
//! match in scan order on ties, until no swap improves. Within each
//! class, better candidates get the better of the class's positions, so
//! utility is maximal given the exposure allocation.

use crate::Candidate;
use fbox_core::measures::{transport_plan, DiscountModel};

/// Total-relevance floor below which the pool has no relevance mass to
/// apportion and the original order is kept.
const RELEVANCE_FLOOR: f64 = 1e-9;

/// Exposure-optimal re-ranking over `n_classes` demographic classes.
/// Returns the new order as indices into `cands`.
///
/// # Panics
///
/// Panics if a candidate's class is `≥ n_classes` or a relevance is
/// negative or non-finite.
#[must_use = "the permutation is the entire point of re-ranking"]
pub fn exposure_rerank(
    cands: &[Candidate],
    n_classes: usize,
    discount: DiscountModel,
) -> Vec<usize> {
    let n = cands.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(
        cands.iter().all(|c| c.relevance >= 0.0 && c.relevance.is_finite()),
        "exposure targets need non-negative finite relevance"
    );
    let queues = crate::class_queues(cands, n_classes);
    let exposures: Vec<f64> = (1..=n).map(|rank| discount.exposure(rank)).collect();
    let pool_exposure: f64 = exposures.iter().sum();
    let pool_relevance: f64 = cands.iter().map(|c| c.relevance).sum();
    if pool_relevance <= RELEVANCE_FLOOR {
        // No relevance mass to apportion: every allocation is equally
        // "fair", keep the original order.
        return (0..n).collect();
    }

    // Present classes only: empty classes have no slots to target (and a
    // τ of 0/0).
    let present: Vec<usize> = (0..n_classes).filter(|&a| !queues[a].is_empty()).collect();
    let supply: Vec<u64> = present.iter().map(|&a| queues[a].len() as u64).collect();
    let demand = vec![1u64; n];
    let per_slot_target: Vec<f64> = present
        .iter()
        .map(|&a| {
            // Present classes are non-empty by construction; the clamp
            // keeps the divisor visibly nonzero on every path.
            let n_a = queues[a].len().max(1);
            let class_relevance: f64 = queues[a].iter().map(|&i| cands[i].relevance).sum();
            pool_exposure * (class_relevance / pool_relevance) / n_a as f64
        })
        .collect();
    let flow =
        transport_plan(&supply, &demand, |src, pos| (exposures[pos] - per_slot_target[src]).abs());

    // Class totals, indexed like `present`.
    let targets: Vec<f64> = present
        .iter()
        .zip(&per_slot_target)
        .map(|(&a, &tau)| tau * queues[a].len() as f64)
        .collect();

    // Transport seed: position → present-class index.
    let mut seed = vec![usize::MAX; n];
    for (src, row) in flow.iter().enumerate() {
        for (pos, &f) in row.iter().enumerate() {
            if f > 0 {
                seed[pos] = src;
            }
        }
    }
    assert!(seed.iter().all(|&src| src != usize::MAX), "every position receives a class");
    // Original-order allocation: position `p` keeps candidate `p`'s class.
    let class_to_src: Vec<usize> = {
        let mut m = vec![usize::MAX; n_classes];
        for (src, &a) in present.iter().enumerate() {
            m[a] = src;
        }
        m
    };
    let original: Vec<usize> = cands.iter().map(|c| class_to_src[c.class]).collect();

    let objective = |alloc: &[usize]| -> f64 {
        let mut sums = vec![0.0f64; present.len()];
        for (pos, &src) in alloc.iter().enumerate() {
            sums[src] += exposures[pos];
        }
        sums.iter().zip(&targets).map(|(&e, &t)| (e - t).abs()).sum()
    };
    let mut alloc = if objective(&seed) <= objective(&original) { seed } else { original };

    // Best-swap hill climbing on Σ_a |E_a − T_a|. Each applied swap
    // strictly reduces the objective, so the loop terminates; the cap is
    // a safety net, not a tuning knob.
    let mut class_exposure = vec![0.0f64; present.len()];
    for (pos, &src) in alloc.iter().enumerate() {
        class_exposure[src] += exposures[pos];
    }
    for _ in 0..2 * n {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (alloc[i], alloc[j]);
                if a == b {
                    continue;
                }
                let shift = exposures[i] - exposures[j];
                let old =
                    (class_exposure[a] - targets[a]).abs() + (class_exposure[b] - targets[b]).abs();
                let new = (class_exposure[a] - shift - targets[a]).abs()
                    + (class_exposure[b] + shift - targets[b]).abs();
                let delta = new - old;
                if delta < best.map_or(-1e-12, |(_, _, d)| d) {
                    best = Some((i, j, delta));
                }
            }
        }
        let Some((i, j, _)) = best else { break };
        let shift = exposures[i] - exposures[j];
        class_exposure[alloc[i]] -= shift;
        class_exposure[alloc[j]] += shift;
        alloc.swap(i, j);
    }

    // Hand each class's positions (ascending = most exposed first) to its
    // members best-first: maximal within-class utility for the allocation.
    let mut out = vec![usize::MAX; n];
    let mut next = vec![0usize; present.len()];
    for (pos, &src) in alloc.iter().enumerate() {
        let a = present[src];
        out[pos] = queues[a][next[src]];
        next[src] += 1;
    }
    assert!(out.iter().all(|&i| i != usize::MAX), "every position receives a candidate");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(index: usize, class: usize, relevance: f64) -> Candidate {
        Candidate { index, class, relevance }
    }

    fn class_exposure(order: &[usize], cands: &[Candidate], class: usize) -> f64 {
        let m = DiscountModel::NaturalLog;
        order
            .iter()
            .enumerate()
            .filter(|&(_, &i)| cands[i].class == class)
            .map(|(pos, _)| m.exposure(pos + 1))
            .sum()
    }

    #[test]
    fn equal_relevance_classes_interleave() {
        // Two classes, identical relevance profiles, minority buried at
        // the bottom. Equal per-member relevance ⇒ equal per-slot targets
        // ⇒ the plan must spread both classes over comparable positions
        // rather than leaving class 1 in the cellar.
        let cands: Vec<Candidate> = vec![
            cand(0, 0, 0.8),
            cand(1, 0, 0.8),
            cand(2, 0, 0.8),
            cand(3, 1, 0.8),
            cand(4, 1, 0.8),
            cand(5, 1, 0.8),
        ];
        let order = exposure_rerank(&cands, 2, DiscountModel::NaturalLog);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        let e0 = class_exposure(&order, &cands, 0);
        let e1 = class_exposure(&order, &cands, 1);
        // Baseline order gives class 0 the top three slots:
        // 1/ln2 + 1/ln3 + 1/ln4 ≈ 3.07 vs 1/ln5 + 1/ln6 + 1/ln7 ≈ 1.69.
        // The optimal plan must cut that gap to the best integral split.
        assert!((e0 - e1).abs() < 0.5, "exposure split {e0:.3} vs {e1:.3} is not near-even");
    }

    #[test]
    fn zero_relevance_pool_keeps_original_order() {
        let cands: Vec<Candidate> = (0..4).map(|i| cand(i, i % 2, 0.0)).collect();
        assert_eq!(exposure_rerank(&cands, 2, DiscountModel::NaturalLog), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_class_keeps_merit_order() {
        let cands: Vec<Candidate> = (0..5).map(|i| cand(i, 0, 1.0 - i as f64 / 5.0)).collect();
        assert_eq!(exposure_rerank(&cands, 1, DiscountModel::NaturalLog), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn higher_relevance_class_gets_more_exposed_positions() {
        // Class 0 carries nearly all the relevance; it must keep the top
        // positions under any relevance-proportional allocation.
        let cands: Vec<Candidate> =
            vec![cand(0, 0, 0.9), cand(1, 0, 0.8), cand(2, 1, 0.05), cand(3, 1, 0.05)];
        let order = exposure_rerank(&cands, 2, DiscountModel::NaturalLog);
        assert_eq!(
            cands[order[0]].class, 0,
            "the relevance-heavy class keeps the top slot, got order {order:?}"
        );
        let e0 = class_exposure(&order, &cands, 0);
        let e1 = class_exposure(&order, &cands, 1);
        assert!(e0 > e1, "exposure must follow relevance: {e0:.3} vs {e1:.3}");
    }

    #[test]
    fn within_class_order_is_by_relevance() {
        let cands: Vec<Candidate> =
            vec![cand(0, 0, 0.2), cand(1, 0, 0.9), cand(2, 1, 0.3), cand(3, 1, 0.7)];
        let order = exposure_rerank(&cands, 2, DiscountModel::NaturalLog);
        let pos = |i: usize| order.iter().position(|&x| x == i).expect("is a permutation");
        assert!(pos(1) < pos(0), "class 0: relevance 0.9 ahead of 0.2");
        assert!(pos(3) < pos(2), "class 1: relevance 0.7 ahead of 0.3");
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(exposure_rerank(&[], 3, DiscountModel::NaturalLog).is_empty());
    }

    #[test]
    fn deterministic_across_repeated_runs() {
        let cands: Vec<Candidate> =
            (0..12).map(|i| cand(i, i % 3, ((i * 7) % 12) as f64 / 12.0)).collect();
        let first = exposure_rerank(&cands, 3, DiscountModel::NaturalLog);
        for _ in 0..3 {
            assert_eq!(exposure_rerank(&cands, 3, DiscountModel::NaturalLog), first);
        }
    }
}
