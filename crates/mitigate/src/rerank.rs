//! Whole-observation re-ranking drivers: one `(query, location)` cell at
//! a time, fanned out over [`fbox_par::par_map`] exactly like the cube
//! builds, merged in deterministic cell order. Output observations and
//! statistics are byte-identical at any `FBOX_THREADS`.

use crate::{ndcg, rerank_candidates, Candidate, Intervention};
use fbox_core::measures::{relevance_from_rank, DiscountModel};
use fbox_core::model::{full_groups, GroupLabel, LocationId, QueryId, Universe};
use fbox_core::observations::{
    MarketObservations, MarketRanking, RankedWorker, SearchObservations, UserList,
};
use std::collections::BTreeMap;

/// Tunables shared by every intervention.
#[derive(Debug, Clone, PartialEq)]
pub struct RerankConfig {
    /// FA\*IR significance level `α` (the probability a fair lottery
    /// still violates the minimum).
    pub alpha: f64,
    /// FA\*IR's protected group on the marketplace side, as a parsable
    /// label (e.g. `"gender=Female"`). Every full demographic class
    /// matching the label counts as protected.
    pub protected: String,
    /// Position-discount model for the exposure-optimal targets.
    pub discount: DiscountModel,
    /// Search side: relevance damping for postings a user never saw
    /// (their relevance is `damping × consensus`). Keeps unseen postings
    /// eligible without letting consensus drown out personal rankings.
    pub unseen_damping: f64,
}

impl Default for RerankConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            protected: "gender=Female".to_string(),
            discount: DiscountModel::NaturalLog,
            unseen_damping: 0.5,
        }
    }
}

/// Aggregate utility statistics of one re-ranking pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RerankStats {
    /// `(q, l)` cells processed.
    pub cells: usize,
    /// Ranked lists re-ordered (market: one per cell; search: one per
    /// user per cell).
    pub lists: usize,
    /// Mean NDCG of the re-ranked lists against their own gain pools.
    pub mean_ndcg: f64,
    /// Mean NDCG of the *original* lists against the same pools — the
    /// utility ceiling the intervention is traded against.
    pub baseline_ndcg: f64,
}

impl RerankStats {
    /// Utility given up by the intervention: `baseline − re-ranked` mean
    /// NDCG. Zero when the intervention never had to move anything.
    #[must_use]
    pub fn ndcg_loss(&self) -> f64 {
        self.baseline_ndcg - self.mean_ndcg
    }

    fn from_lists(cells: usize, pairs: &[(f64, f64)]) -> Self {
        let lists = pairs.len();
        let denom = if lists == 0 { 1.0 } else { lists as f64 };
        Self {
            cells,
            lists,
            mean_ndcg: pairs.iter().map(|&(n, _)| n).sum::<f64>() / denom,
            baseline_ndcg: pairs.iter().map(|&(_, b)| b).sum::<f64>() / denom,
        }
    }
}

/// A re-ranked marketplace: the new observations plus utility stats.
#[derive(Debug, Clone)]
pub struct MarketRerank {
    /// The intervened observations, ready for
    /// [`FBox::from_market`](fbox_core::FBox::from_market).
    pub observations: MarketObservations,
    /// Utility statistics of the pass.
    pub stats: RerankStats,
}

/// A re-ranked search log: the new observations plus utility stats.
#[derive(Debug, Clone)]
pub struct SearchRerank {
    /// The intervened observations, ready for
    /// [`FBox::from_search`](fbox_core::FBox::from_search).
    pub observations: SearchObservations,
    /// Utility statistics of the pass.
    pub stats: RerankStats,
}

/// Per-pass instrumentation, armed once before the fan-out (like the
/// cube builds' `CellTelemetry`) and shared by reference across workers.
struct RerankTelemetry {
    active: Option<RerankTelemetryInner>,
}

struct RerankTelemetryInner {
    cells: fbox_telemetry::Counter,
    candidates: fbox_telemetry::Counter,
    timings: fbox_telemetry::Histogram,
}

impl RerankTelemetry {
    fn new(platform: &str, intervention: Intervention) -> Self {
        let t = fbox_telemetry::global();
        if !t.enabled() {
            return Self { active: None };
        }
        Self {
            active: Some(RerankTelemetryInner {
                cells: t.counter("mitigate.cells_reranked"),
                candidates: t.counter("mitigate.candidates_ranked"),
                timings: t.histogram(&format!("mitigate.{platform}.{}", intervention.label())),
            }),
        }
    }

    fn cell(&self, candidates: u64) -> Option<fbox_telemetry::HistogramTimer> {
        let inner = self.active.as_ref()?;
        inner.cells.inc();
        inner.candidates.add(candidates);
        Some(inner.timings.timer())
    }

    fn finish(timer: Option<fbox_telemetry::HistogramTimer>) {
        if let Some(timer) = timer {
            timer.observe();
        }
    }
}

/// Opens the per-cell trace span of the re-ranking fan-out; nests under
/// the worker's `par.task` span like `cube.cell` does.
fn rerank_span(
    q: QueryId,
    l: LocationId,
    platform: &'static str,
    intervention: Intervention,
) -> fbox_trace::SpanGuard {
    fbox_trace::span_args("mitigate.rerank", |a| {
        a.u64("q", u64::from(q.0));
        a.u64("l", u64::from(l.0));
        a.str("platform", platform);
        a.str("intervention", intervention.label());
    })
}

/// Re-ranks every marketplace cell with one intervention.
///
/// Demographic classes are the schema's full groups (gender × ethnicity
/// for the paper's schema); FA\*IR's binary protected side is every class
/// matching `config.protected`. Re-ranked workers keep their assignments
/// *and* carry the relevance the re-ranker ranked on as their `score`: a
/// worker's merit does not change because the intervention moved her, and
/// re-deriving relevance from the post-intervention ranks would make the
/// evaluation circular — the measures would score the positions the
/// intervention chose against relevance computed *from those same
/// positions*, systematically penalizing any merit-proportional
/// allocation. One consequence is pinned in the experiment harness: the
/// EMD measure depends only on each group's relevance distribution, which
/// a re-ordering preserves, so EMD deltas are exactly zero — re-ranking
/// fixes exposure, not representation.
///
/// # Panics
///
/// Panics if `config.protected` does not parse against the universe's
/// schema, or a worker's assignment matches no full demographic group.
#[must_use = "the re-ranked observations are the entire point"]
pub fn rerank_market(
    universe: &Universe,
    observations: &MarketObservations,
    intervention: Intervention,
    config: &RerankConfig,
) -> MarketRerank {
    let _span = fbox_telemetry::span!("mitigate.rerank_market");
    let _trace = fbox_trace::span("mitigate.rerank_market");
    let telemetry = RerankTelemetry::new("market", intervention);

    let schema = universe.schema();
    let classes = full_groups(schema);
    let protected_label = GroupLabel::parse(schema, &config.protected)
        .expect("config.protected must parse against the study schema");
    let protected: Vec<bool> = classes
        .iter()
        .map(|class| {
            protected_label.predicates().iter().all(|&(a, v)| class.value_of(a) == Some(v))
        })
        .collect();

    let mut cell_data: Vec<((QueryId, LocationId), &MarketRanking)> =
        observations.cells().collect();
    cell_data.sort_unstable_by_key(|&((q, l), _)| (q.0, l.0));

    let reranked = fbox_par::par_map(&cell_data, |&((q, l), ranking)| {
        let _cell = rerank_span(q, l, "market", intervention);
        let timer = telemetry.cell(ranking.len() as u64);
        let out = rerank_one_market_cell(ranking, &classes, &protected, intervention, config);
        RerankTelemetry::finish(timer);
        out
    });

    let mut out = MarketObservations::new();
    let mut pairs = Vec::with_capacity(reranked.len());
    for (&((q, l), _), (ranking, scores)) in cell_data.iter().zip(reranked) {
        out.insert(q, l, ranking);
        if let Some(scores) = scores {
            pairs.push(scores);
        }
    }
    MarketRerank { observations: out, stats: RerankStats::from_lists(cell_data.len(), &pairs) }
}

/// Re-ranks one marketplace cell, returning the new ranking and, for
/// non-empty cells, the `(re-ranked, baseline)` NDCG pair.
fn rerank_one_market_cell(
    ranking: &MarketRanking,
    classes: &[GroupLabel],
    protected: &[bool],
    intervention: Intervention,
    config: &RerankConfig,
) -> (MarketRanking, Option<(f64, f64)>) {
    let workers = ranking.workers();
    if workers.is_empty() {
        return (ranking.clone(), None);
    }
    let cands: Vec<Candidate> = workers
        .iter()
        .enumerate()
        .map(|(i, w)| Candidate {
            index: i,
            class: classes
                .iter()
                .position(|class| class.matches(&w.assignment))
                .expect("a full assignment matches exactly one full demographic group"),
            relevance: ranking.relevance(i),
        })
        .collect();
    let order = rerank_candidates(&cands, classes.len(), protected, intervention, config);
    let gains: Vec<f64> = (0..workers.len()).map(|i| ranking.relevance(i)).collect();
    let reranked_ndcg = ndcg::ndcg_of_permutation(&gains, &order);
    let identity: Vec<usize> = (0..workers.len()).collect();
    let baseline_ndcg = ndcg::ndcg_of_permutation(&gains, &identity);
    let new_ranking = MarketRanking::new(
        order
            .iter()
            .enumerate()
            .map(|(pos, &i)| RankedWorker {
                assignment: workers[i].assignment.clone(),
                rank: pos + 1,
                score: Some(gains[i]),
            })
            .collect(),
    );
    (new_ranking, Some((reranked_ndcg, baseline_ndcg)))
}

/// Re-ranks every search cell with one intervention.
///
/// The search side has no global worker list — each user sees their own
/// ranking of job postings — so the intervention operates on the cell's
/// *candidate pool*: the union of every user's results, scored by
/// consensus relevance (the mean over users of the rank-derived
/// relevance, zero where unseen). The pool's bottom half by consensus is
/// the protected class: the postings the platform systematically
/// under-serves. Each user's list is then re-ranked over the whole pool
/// — personal relevance where the user saw the posting,
/// `config.unseen_damping × consensus` otherwise — and truncated back to
/// its original length.
///
/// Because every user's re-ranking is constrained by the *same* shared
/// classes and targets, the intervention homogenizes lists across users,
/// which is what the Kendall/Jaccard measures (§3.2) reward.
#[must_use = "the re-ranked observations are the entire point"]
pub fn rerank_search(
    universe: &Universe,
    observations: &SearchObservations,
    intervention: Intervention,
    config: &RerankConfig,
) -> SearchRerank {
    let _span = fbox_telemetry::span!("mitigate.rerank_search");
    let _trace = fbox_trace::span("mitigate.rerank_search");
    let _ = universe; // signature symmetry with `rerank_market`
    let telemetry = RerankTelemetry::new("search", intervention);

    let mut cell_data: Vec<((QueryId, LocationId), &[UserList])> = observations.cells().collect();
    cell_data.sort_unstable_by_key(|&((q, l), _)| (q.0, l.0));

    let reranked = fbox_par::par_map(&cell_data, |&((q, l), lists)| {
        let _cell = rerank_span(q, l, "search", intervention);
        let n_candidates: usize = lists.iter().map(|u| u.results.len()).sum();
        let timer = telemetry.cell(n_candidates as u64);
        let out = rerank_one_search_cell(lists, intervention, config);
        RerankTelemetry::finish(timer);
        out
    });

    let mut out = SearchObservations::new();
    let mut pairs = Vec::new();
    let mut cells = 0usize;
    for (&((q, l), _), (lists, cell_pairs)) in cell_data.iter().zip(reranked) {
        cells += 1;
        for list in lists {
            out.push(q, l, list);
        }
        pairs.extend(cell_pairs);
    }
    SearchRerank { observations: out, stats: RerankStats::from_lists(cells, &pairs) }
}

/// Re-ranks one search cell: all user lists against the shared candidate
/// pool. Returns the new lists (user order preserved) and one
/// `(re-ranked, baseline)` NDCG pair per non-empty list.
fn rerank_one_search_cell(
    lists: &[UserList],
    intervention: Intervention,
    config: &RerankConfig,
) -> (Vec<UserList>, Vec<(f64, f64)>) {
    // Consensus relevance: mean over users of rank-derived relevance,
    // contributing zero where a user never saw the posting.
    let mut consensus: BTreeMap<u64, f64> = BTreeMap::new();
    for list in lists {
        let k = list.results.len();
        if k == 0 {
            continue;
        }
        for (i, &id) in list.results.iter().enumerate() {
            // `i < k` by construction; the clamp keeps the 1-based rank
            // visibly inside `1..=k` on every path.
            let rank = (i + 1).min(k);
            debug_assert!(rank >= 1 && rank <= k, "rank must be 1-based within the page");
            *consensus.entry(id).or_insert(0.0) += relevance_from_rank(rank, k);
        }
    }
    let n_users = lists.len();
    if n_users > 0 {
        for v in consensus.values_mut() {
            *v /= n_users as f64;
        }
    }

    // Pool order: consensus desc, posting id asc — the shared identity
    // axis every user's re-ranking works over.
    let mut pool: Vec<(u64, f64)> = consensus.iter().map(|(&id, &r)| (id, r)).collect();
    pool.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let n_pool = pool.len();
    // Bottom half by consensus = the protected class (the postings the
    // platform under-serves); `div_ceil` keeps the split stable for odd
    // pools and leaves a singleton pool entirely unprotected.
    let split = n_pool.div_ceil(2);
    let class_of: Vec<usize> = (0..n_pool).map(|i| usize::from(i >= split)).collect();

    let mut new_lists = Vec::with_capacity(lists.len());
    let mut pairs = Vec::new();
    for list in lists {
        let k = list.results.len();
        if k == 0 || n_pool == 0 {
            new_lists.push(list.clone());
            continue;
        }
        let personal: BTreeMap<u64, f64> = list
            .results
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, relevance_from_rank(i + 1, k)))
            .collect();
        let cands: Vec<Candidate> = pool
            .iter()
            .enumerate()
            .map(|(i, &(id, cons))| Candidate {
                index: i,
                class: class_of[i],
                relevance: personal.get(&id).copied().unwrap_or(config.unseen_damping * cons),
            })
            .collect();
        let order = rerank_candidates(&cands, 2, &[false, true], intervention, config);
        let gains: Vec<f64> = cands.iter().map(|c| c.relevance).collect();
        let new_gains: Vec<f64> = order.iter().take(k).map(|&i| gains[i]).collect();
        let original_gains: Vec<f64> = list.results.iter().map(|id| personal[id]).collect();
        pairs.push((ndcg::ndcg(&new_gains, &gains), ndcg::ndcg(&original_gains, &gains)));
        new_lists.push(UserList {
            assignment: list.assignment.clone(),
            results: order.iter().take(k).map(|&i| pool[i].0).collect(),
        });
    }
    (new_lists, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbox_core::model::Schema;
    use fbox_core::model::ValueId;

    /// Universe over the paper's gender × ethnicity schema with one query
    /// and one location.
    fn toy_universe() -> (Universe, QueryId, LocationId) {
        let mut u = Universe::with_all_groups(Schema::gender_ethnicity());
        let q = u.add_query("Moving Assistance", None);
        let l = u.add_location("Chicago, IL", None);
        (u, q, l)
    }

    /// A ranking whose bottom half is entirely female: maximal headroom
    /// for every intervention to move something.
    fn skewed_ranking(n: usize) -> MarketRanking {
        MarketRanking::new(
            (0..n)
                .map(|i| RankedWorker {
                    // gender_ethnicity order: Male = 0, Female = 1 —
                    // bottom half Female, round-robin ethnicity.
                    assignment: vec![ValueId(u16::from(i >= n / 2)), ValueId((i % 3) as u16)],
                    rank: i + 1,
                    score: None,
                })
                .collect(),
        )
    }

    #[test]
    fn market_rerank_is_a_permutation_preserving_cells() {
        let (u, q, l) = toy_universe();
        let mut obs = MarketObservations::new();
        obs.insert(q, l, skewed_ranking(10));
        for iv in Intervention::ALL {
            let r = rerank_market(&u, &obs, iv, &RerankConfig::default());
            assert_eq!(r.observations.n_cells(), 1);
            let new = r.observations.get(q, l).expect("cell preserved");
            assert_eq!(new.len(), 10);
            // Same multiset of assignments and contiguous ranks; every
            // worker carries her original relevance as the score.
            let source = obs.get(q, l).expect("source cell");
            let mut old_assignments: Vec<_> =
                source.workers().iter().map(|w| w.assignment.clone()).collect();
            let mut new_assignments: Vec<_> =
                new.workers().iter().map(|w| w.assignment.clone()).collect();
            old_assignments.sort();
            new_assignments.sort();
            assert_eq!(old_assignments, new_assignments, "{iv}");
            let mut old_rel: Vec<f64> = (0..source.len()).map(|i| source.relevance(i)).collect();
            let mut new_scores: Vec<f64> = new
                .workers()
                .iter()
                .map(|w| w.score.expect("re-ranked workers carry their relevance"))
                .collect();
            old_rel.sort_by(f64::total_cmp);
            new_scores.sort_by(f64::total_cmp);
            assert_eq!(old_rel, new_scores, "{iv}: relevance multiset preserved");
            assert_eq!(r.stats.cells, 1);
            assert_eq!(r.stats.lists, 1);
            assert!((0.0..=1.0 + 1e-12).contains(&r.stats.mean_ndcg), "{iv}");
            assert!((r.stats.baseline_ndcg - 1.0).abs() < 1e-12, "original order is ideal");
            assert!(r.stats.ndcg_loss() >= -1e-12, "{iv}");
        }
    }

    #[test]
    fn market_rerank_empty_cell_passes_through() {
        let (u, q, l) = toy_universe();
        let mut obs = MarketObservations::new();
        obs.insert(q, l, MarketRanking::new(vec![]));
        let r = rerank_market(&u, &obs, Intervention::DetGreedy, &RerankConfig::default());
        assert!(r.observations.get(q, l).expect("cell preserved").is_empty());
        assert_eq!(r.stats.lists, 0);
    }

    #[test]
    fn search_rerank_preserves_list_shape_and_users() {
        let (u, q, l) = toy_universe();
        let mut obs = SearchObservations::new();
        // Three users, disjoint tails: plenty of pool to homogenize.
        obs.push(
            q,
            l,
            UserList { assignment: vec![ValueId(0), ValueId(0)], results: vec![1, 2, 3, 4] },
        );
        obs.push(
            q,
            l,
            UserList { assignment: vec![ValueId(1), ValueId(1)], results: vec![1, 2, 5, 6] },
        );
        obs.push(
            q,
            l,
            UserList { assignment: vec![ValueId(0), ValueId(2)], results: vec![7, 2, 1, 8] },
        );
        for iv in Intervention::ALL {
            let r = rerank_search(&u, &obs, iv, &RerankConfig::default());
            let lists = r.observations.get(q, l).expect("cell preserved");
            assert_eq!(lists.len(), 3, "{iv}");
            for (old, new) in obs.get(q, l).expect("source").iter().zip(lists) {
                assert_eq!(old.assignment, new.assignment, "{iv}");
                assert_eq!(old.results.len(), new.results.len(), "{iv}");
                // No duplicates in the re-ranked list.
                let mut seen = new.results.clone();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), new.results.len(), "{iv}");
            }
            assert_eq!(r.stats.lists, 3);
            assert!(r.stats.mean_ndcg > 0.0, "{iv}");
        }
    }

    #[test]
    fn identical_lists_stay_identical() {
        // If every user already sees the same list, the intervention has
        // one shared pool and must keep the lists equal to each other.
        let (u, q, l) = toy_universe();
        let mut obs = SearchObservations::new();
        for g in 0..2u16 {
            obs.push(
                q,
                l,
                UserList { assignment: vec![ValueId(g), ValueId(0)], results: vec![10, 20, 30] },
            );
        }
        for iv in Intervention::ALL {
            let r = rerank_search(&u, &obs, iv, &RerankConfig::default());
            let lists = r.observations.get(q, l).expect("cell preserved");
            assert_eq!(lists[0].results, lists[1].results, "{iv}");
        }
    }

    #[test]
    fn rerank_is_thread_count_invariant() {
        let (u, _q, _l) = toy_universe();
        let mut market = MarketObservations::new();
        let mut search = SearchObservations::new();
        // Several cells so the fan-out actually shards.
        let mut u2 = u.clone();
        let qs: Vec<QueryId> = (0..3).map(|i| u2.add_query(format!("q{i}"), None)).collect();
        let ls: Vec<LocationId> = (0..2).map(|i| u2.add_location(format!("l{i}"), None)).collect();
        for (qi, &qq) in qs.iter().enumerate() {
            for (li, &ll) in ls.iter().enumerate() {
                market.insert(qq, ll, skewed_ranking(8 + qi + li));
                for g in 0..3u16 {
                    search.push(
                        qq,
                        ll,
                        UserList {
                            assignment: vec![ValueId(g % 2), ValueId(g % 3)],
                            results: (0..6)
                                .map(|r| (qi * 100 + li * 10 + ((r + g as usize) % 8)) as u64)
                                .collect(),
                        },
                    );
                }
            }
        }
        for iv in [Intervention::FaStarIr, Intervention::ExposureOptimal] {
            let serial = fbox_par::with_threads(1, || {
                (
                    rerank_market(&u2, &market, iv, &RerankConfig::default()),
                    rerank_search(&u2, &search, iv, &RerankConfig::default()),
                )
            });
            let wide = fbox_par::with_threads(8, || {
                (
                    rerank_market(&u2, &market, iv, &RerankConfig::default()),
                    rerank_search(&u2, &search, iv, &RerankConfig::default()),
                )
            });
            let collect_m = |o: &MarketObservations| -> Vec<_> {
                o.cells().map(|((q, l), r)| ((q, l), r.clone())).collect()
            };
            let collect_s = |o: &SearchObservations| -> Vec<_> {
                o.cells().map(|((q, l), v)| ((q, l), v.to_vec())).collect()
            };
            assert_eq!(collect_m(&serial.0.observations), collect_m(&wide.0.observations), "{iv}");
            assert_eq!(collect_s(&serial.1.observations), collect_s(&wide.1.observations), "{iv}");
            assert_eq!(serial.0.stats, wide.0.stats, "{iv}");
            assert_eq!(serial.1.stats, wide.1.stats, "{iv}");
        }
    }

    #[test]
    #[should_panic(expected = "must parse")]
    fn bad_protected_label_is_rejected() {
        let (u, q, l) = toy_universe();
        let mut obs = MarketObservations::new();
        obs.insert(q, l, skewed_ranking(4));
        let config = RerankConfig { protected: "species=Ferret".into(), ..Default::default() };
        let _ = rerank_market(&u, &obs, Intervention::FaStarIr, &config);
    }
}
