//! The perf-trend gate: compares a freshly measured [`Snapshot`] against a
//! committed `BENCH_<label>.json` baseline under per-metric relative
//! tolerances, flagging regressions for CI to fail on.
//!
//! All comparisons run on integers (per-mille tolerances, i128 products)
//! so the verdict is exact and platform-independent: a metric regresses
//! when it moves past `tolerance_pm` per mille in its *bad* direction.
//! Improvements never fail the gate — a faster run simply suggests the
//! baseline is stale.

use fbox_telemetry::Snapshot;
use std::fmt;

/// Which way a metric is allowed to drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (speedups): regression when the value drops more
    /// than the tolerance below the baseline.
    HigherBetter,
    /// Smaller is better (latencies, overhead ratios): regression when the
    /// value rises more than the tolerance above the baseline.
    LowerBetter,
    /// Deterministic outputs (fault counts, coverage): any change at all
    /// is a regression — these only move when semantics move.
    Exact,
}

/// What a metric is and how much it may drift.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Gauge name, or histogram name (compared by mean ns).
    pub metric: &'static str,
    /// Drift direction that counts as a regression.
    pub direction: Direction,
    /// Allowed relative drift, per mille (ignored for [`Direction::Exact`]).
    pub tolerance_pm: i128,
}

const fn tol(metric: &'static str, direction: Direction, tolerance_pm: i128) -> Tolerance {
    Tolerance { metric, direction, tolerance_pm }
}

/// The gate's metric policy for `BENCH_parallel.json`. Wall-clock means
/// get a loose 600‰ band (shared CI runners are noisy); the speedup ratio
/// is self-normalizing, so it gets a tighter one; the thread count is
/// configuration and must not drift at all.
pub const PARALLEL_TOLERANCES: [Tolerance; 4] = [
    tol("cube.build.speedup_x100", Direction::HigherBetter, 250),
    tol("cube.build.threads", Direction::Exact, 0),
    tol("cube.build.serial", Direction::LowerBetter, 600),
    tol("cube.build.parallel", Direction::LowerBetter, 600),
];

/// The gate's metric policy for `BENCH_resilience.json`. The fault-plan
/// outputs are deterministic in `(seed, profile)` and gate exactly; only
/// the wall-clock histograms and the overhead ratio get drift bands.
pub const RESILIENCE_TOLERANCES: [Tolerance; 9] = [
    tol("crawl.mild.retries", Direction::Exact, 0),
    tol("crawl.mild.failed", Direction::Exact, 0),
    tol("crawl.mild.quarantined", Direction::Exact, 0),
    tol("crawl.mild.truncated", Direction::Exact, 0),
    tol("crawl.mild.backoff_virtual_ms", Direction::Exact, 0),
    tol("crawl.mild.coverage_x1000", Direction::Exact, 0),
    tol("crawl.resilience.overhead_x100", Direction::LowerBetter, 250),
    tol("crawl.inert", Direction::LowerBetter, 600),
    tol("crawl.mild", Direction::LowerBetter, 600),
];

/// The gate's metric policy for `BENCH_lint.json`. Findings and scan
/// counters are repo-content-dependent — they legitimately move every
/// PR — so only configuration (thread count), the serial/parallel parity
/// bit, and the wall clocks are gated. The speedup band is wider than
/// the cube suite's: lint runs are short and I/O-warm-up-sensitive.
pub const LINT_TOLERANCES: [Tolerance; 6] = [
    tol("lint.parity", Direction::Exact, 0),
    tol("lint.threads", Direction::Exact, 0),
    tol("lint.speedup_x100", Direction::HigherBetter, 400),
    tol("lint.serial", Direction::LowerBetter, 600),
    tol("lint.parallel", Direction::LowerBetter, 600),
    tol("lint.absint", Direction::LowerBetter, 600),
];

/// The gate's metric policy for `BENCH_mitigate.json`. The re-ranking
/// sweep is deterministic in the fixture seeds: cell/list counts, the
/// serial/parallel parity bit, and the worst NDCG loss only move when
/// intervention semantics move, so they gate exactly. Wall clocks get the
/// usual loose band; the speedup band matches lint's — per-cell re-ranks
/// are short, so the fan-out is scheduling-sensitive.
pub const MITIGATE_TOLERANCES: [Tolerance; 8] = [
    tol("mitigate.parity", Direction::Exact, 0),
    tol("mitigate.threads", Direction::Exact, 0),
    tol("mitigate.market.cells", Direction::Exact, 0),
    tol("mitigate.search.lists", Direction::Exact, 0),
    tol("mitigate.worst_ndcg_loss_x10000", Direction::Exact, 0),
    tol("mitigate.speedup_x100", Direction::HigherBetter, 400),
    tol("mitigate.serial", Direction::LowerBetter, 600),
    tol("mitigate.parallel", Direction::LowerBetter, 600),
];

/// The gate's metric policy for `BENCH_store.json`. Workload shape
/// (dirty-batch size, cube cells, log records) is configuration and gates
/// exactly. The two headline ratios — delta-update vs rebuild and
/// snapshot load vs rebuild — are self-normalizing but compare a
/// millisecond-scale numerator against a microsecond-scale denominator,
/// so they get the wide band; `store.delta.scaling_x100` (full-cube vs
/// quarter-cube delta cost) is the proportionality contract — it must
/// stay near 100 and may only drift within the band.
pub const STORE_TOLERANCES: [Tolerance; 11] = [
    tol("store.dirty_batch", Direction::Exact, 0),
    tol("store.cube.cells", Direction::Exact, 0),
    tol("store.log.records", Direction::Exact, 0),
    tol("store.delta.speedup_x100", Direction::HigherBetter, 400),
    tol("store.delta.scaling_x100", Direction::LowerBetter, 1500),
    tol("store.snapshot.load_speedup_x100", Direction::HigherBetter, 400),
    tol("store.rebuild", Direction::LowerBetter, 600),
    tol("store.delta.full", Direction::LowerBetter, 600),
    tol("store.delta.quarter", Direction::LowerBetter, 600),
    tol("store.snapshot.load", Direction::LowerBetter, 600),
    tol("store.log.replay", Direction::LowerBetter, 600),
];

/// The tolerance set for a suite label, or `None` for unknown labels.
pub fn tolerances_for(label: &str) -> Option<&'static [Tolerance]> {
    match label {
        "parallel" => Some(&PARALLEL_TOLERANCES),
        "resilience" => Some(&RESILIENCE_TOLERANCES),
        "lint" => Some(&LINT_TOLERANCES),
        "mitigate" => Some(&MITIGATE_TOLERANCES),
        "store" => Some(&STORE_TOLERANCES),
        _ => None,
    }
}

/// One gated metric's verdict.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Metric name.
    pub metric: &'static str,
    /// Baseline value (gauge value, or histogram mean ns).
    pub before: i128,
    /// Fresh value.
    pub after: i128,
    /// Whether the drift exceeds the tolerance in the bad direction.
    pub regressed: bool,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = if self.regressed { "FAIL" } else { "  ok" };
        write!(
            f,
            "{mark}  {:<36} {:>14} -> {:<14} {}",
            self.metric, self.before, self.after, self.detail
        )
    }
}

/// Looks a metric up in a snapshot: gauges by name first, then histograms
/// by mean ns. `None` when the snapshot has no such metric.
fn metric_value(snapshot: &Snapshot, name: &str) -> Option<i128> {
    if let Some(g) = snapshot.gauges.iter().find(|g| g.name == name) {
        return Some(i128::from(g.value));
    }
    snapshot.histograms.iter().find(|h| h.name == name).map(|h| i128::from(h.mean_ns()))
}

/// Gates `fresh` against `baseline`: one [`Verdict`] per tolerance entry.
/// A metric present in the baseline but missing from the fresh run is a
/// regression (the suite stopped measuring it); a metric missing from the
/// baseline passes (the baseline predates it — regenerate to pick it up).
pub fn check(baseline: &Snapshot, fresh: &Snapshot, tolerances: &[Tolerance]) -> Vec<Verdict> {
    tolerances
        .iter()
        .map(|t| {
            let before = metric_value(baseline, t.metric);
            let after = metric_value(fresh, t.metric);
            let (Some(before), Some(after)) = (before, after) else {
                let (regressed, detail) = match (before, after) {
                    (Some(_), None) => (true, "metric vanished from the fresh run".to_string()),
                    _ => (false, "not in baseline; regenerate to gate it".to_string()),
                };
                return Verdict {
                    metric: t.metric,
                    before: before.unwrap_or(0),
                    after: after.unwrap_or(0),
                    regressed,
                    detail,
                };
            };
            let (regressed, detail) = match t.direction {
                Direction::Exact => (
                    after != before,
                    if after == before {
                        "exact".to_string()
                    } else {
                        "must match exactly".to_string()
                    },
                ),
                Direction::HigherBetter => (
                    after * 1000 < before * (1000 - t.tolerance_pm),
                    format!("may drop <= {}‰", t.tolerance_pm),
                ),
                Direction::LowerBetter => (
                    after * 1000 > before * (1000 + t.tolerance_pm),
                    format!("may rise <= {}‰", t.tolerance_pm),
                ),
            };
            Verdict { metric: t.metric, before, after, regressed, detail }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbox_telemetry::Registry;

    fn snap(gauge: &str, value: i64) -> Snapshot {
        let r = Registry::new();
        r.gauge(gauge).set(value);
        r.snapshot()
    }

    #[test]
    fn higher_better_fails_only_past_tolerance() {
        let t = [tol("speedup", Direction::HigherBetter, 250)];
        let base = snap("speedup", 200);
        // 25% drop exactly at the edge: 150 == 200*0.75 — not a regression.
        assert!(!check(&base, &snap("speedup", 150), &t)[0].regressed);
        assert!(check(&base, &snap("speedup", 149), &t)[0].regressed);
        // Improvements always pass.
        assert!(!check(&base, &snap("speedup", 400), &t)[0].regressed);
    }

    #[test]
    fn lower_better_fails_only_past_tolerance() {
        let t = [tol("overhead", Direction::LowerBetter, 250)];
        let base = snap("overhead", 100);
        assert!(!check(&base, &snap("overhead", 125), &t)[0].regressed);
        assert!(check(&base, &snap("overhead", 126), &t)[0].regressed);
        assert!(!check(&base, &snap("overhead", 50), &t)[0].regressed);
    }

    #[test]
    fn exact_fails_on_any_change() {
        let t = [tol("retries", Direction::Exact, 0)];
        let base = snap("retries", 42);
        assert!(!check(&base, &snap("retries", 42), &t)[0].regressed);
        assert!(check(&base, &snap("retries", 43), &t)[0].regressed);
        assert!(check(&base, &snap("retries", 41), &t)[0].regressed);
    }

    #[test]
    fn histograms_gate_by_mean() {
        let t = [tol("lat", Direction::LowerBetter, 600)];
        let mk = |ns: u64| {
            let r = Registry::new();
            r.histogram("lat").record_ns(ns);
            r.snapshot()
        };
        assert!(!check(&mk(1000), &mk(1600), &t)[0].regressed);
        assert!(check(&mk(1000), &mk(1601), &t)[0].regressed);
    }

    #[test]
    fn vanished_metric_regresses_and_new_metric_passes() {
        let t = [tol("speedup", Direction::HigherBetter, 250)];
        let empty = Registry::new().snapshot();
        assert!(check(&snap("speedup", 200), &empty, &t)[0].regressed);
        assert!(!check(&empty, &snap("speedup", 200), &t)[0].regressed);
    }

    #[test]
    fn suite_labels_have_tolerances() {
        for label in crate::suites::SUITE_LABELS {
            assert!(tolerances_for(label).is_some(), "no tolerances for {label}");
        }
        assert!(tolerances_for("nope").is_none());
    }
}
