//! Shared helpers for the Criterion benchmarks.

use fbox_core::model::{GroupId, LocationId, QueryId};
use fbox_core::UnfairnessCube;

/// A complete synthetic cube with pseudo-random values, for algorithmic
/// scalability sweeps.
pub fn synthetic_cube(n_groups: usize, n_queries: usize, n_locations: usize) -> UnfairnessCube {
    let mut cube = UnfairnessCube::with_dims(n_groups, n_queries, n_locations);
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for g in 0..n_groups as u32 {
        for q in 0..n_queries as u32 {
            for l in 0..n_locations as u32 {
                // xorshift for cheap, deterministic values.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let v = (state >> 11) as f64 / (1u64 << 53) as f64;
                cube.set(GroupId(g), QueryId(q), LocationId(l), v);
            }
        }
    }
    cube
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_cube_is_complete_and_deterministic() {
        let a = synthetic_cube(10, 4, 4);
        assert!(a.is_complete());
        let b = synthetic_cube(10, 4, 4);
        let ga = fbox_core::model::GroupId(3);
        let q = fbox_core::model::QueryId(2);
        let l = fbox_core::model::LocationId(1);
        assert_eq!(a.get(ga, q, l), b.get(ga, q, l));
    }
}
