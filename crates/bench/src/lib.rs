//! Shared helpers for the Criterion benchmarks, including the telemetry
//! snapshot writer that makes the perf trajectory machine-readable, the
//! measured suites ([`suites`]), and the CI perf-trend gate ([`trend`]).

pub mod suites;
pub mod trend;

use std::io;
use std::path::{Path, PathBuf};

use fbox_core::model::{GroupId, LocationId, QueryId};
use fbox_core::UnfairnessCube;
use fbox_telemetry::{JsonSink, Report, Snapshot, Subscriber};

/// Writes the global registry's current metrics as a `BENCH_<label>.json`
/// trajectory file under `dir`, creating the directory if needed. Returns
/// the written path. The file is a serde-JSON [`Snapshot`], so a later run
/// can [`read_snapshot`] it and [`Report::diff`] the two.
pub fn write_bench_snapshot(dir: &Path, label: &str) -> io::Result<PathBuf> {
    write_snapshot(dir, label, &fbox_telemetry::global().snapshot())
}

/// Writes an explicit snapshot (e.g. from a scoped registry) as
/// `BENCH_<label>.json` under `dir`.
pub fn write_snapshot(dir: &Path, label: &str, snapshot: &Snapshot) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{label}.json"));
    let file = std::fs::File::create(&path)?;
    let mut sink = JsonSink::new(io::BufWriter::new(file));
    sink.export(snapshot)?;
    io::Write::flush(&mut sink.into_inner())?;
    Ok(path)
}

/// Reads a snapshot previously written by [`write_snapshot`].
pub fn read_snapshot(path: &Path) -> io::Result<Snapshot> {
    let text = std::fs::read_to_string(path)?;
    Snapshot::from_json(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Convenience: diff two trajectory files, oldest first.
pub fn diff_snapshots(before: &Path, after: &Path) -> io::Result<Report> {
    Ok(Report::diff(&read_snapshot(before)?, &read_snapshot(after)?))
}

/// A complete synthetic cube with pseudo-random values, for algorithmic
/// scalability sweeps.
pub fn synthetic_cube(n_groups: usize, n_queries: usize, n_locations: usize) -> UnfairnessCube {
    let mut cube = UnfairnessCube::with_dims(n_groups, n_queries, n_locations);
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for g in 0..n_groups as u32 {
        for q in 0..n_queries as u32 {
            for l in 0..n_locations as u32 {
                // xorshift for cheap, deterministic values.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let v = (state >> 11) as f64 / (1u64 << 53) as f64;
                cube.set(GroupId(g), QueryId(q), LocationId(l), v);
            }
        }
    }
    cube
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_file_round_trips_and_self_diff_is_zero() {
        let registry = fbox_telemetry::Registry::new();
        registry.counter("ta.sorted_accesses").add(1234);
        registry.counter("ta.random_accesses").add(56);
        registry.histogram("index.build").record_ns(7_654_321);
        let snapshot = registry.snapshot();

        let dir = std::env::temp_dir().join(format!("fbox-bench-snap-{}", std::process::id()));
        let path = write_snapshot(&dir, "selftest", &snapshot).expect("snapshot written");
        assert!(path.ends_with("BENCH_selftest.json"));

        let back = read_snapshot(&path).expect("snapshot read back");
        assert_eq!(back, snapshot, "JSON round-trip is an identity");
        let report = Report::diff(&snapshot, &back);
        assert!(report.is_zero(), "self-diff must be zero, got: {report}");
        assert!(diff_snapshots(&path, &path).expect("file diff").is_zero());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synthetic_cube_is_complete_and_deterministic() {
        let a = synthetic_cube(10, 4, 4);
        assert!(a.is_complete());
        let b = synthetic_cube(10, 4, 4);
        let ga = fbox_core::model::GroupId(3);
        let q = fbox_core::model::QueryId(2);
        let l = fbox_core::model::LocationId(1);
        assert_eq!(a.get(ga, q, l), b.get(ga, q, l));
    }
}
