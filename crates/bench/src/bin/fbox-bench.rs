//! The perf-trend gate CLI.
//!
//! ```text
//! fbox-bench --list                      # suites the gate knows
//! fbox-bench --write <label>             # run a suite, write BENCH_<label>.json
//! fbox-bench --check <BENCH_file>...     # rerun suites, gate against baselines
//! ```
//!
//! `--check` re-measures each baseline's suite on the current machine and
//! compares under the per-metric tolerances in [`fbox_bench::trend`];
//! any regression makes the process exit non-zero, which is what the CI
//! `bench-trend` job keys off.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fbox_bench::{read_snapshot, suites, trend, write_snapshot};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// `BENCH_<label>.json` → `label`.
fn label_of(path: &Path) -> Option<&str> {
    path.file_name()?.to_str()?.strip_prefix("BENCH_")?.strip_suffix(".json")
}

fn usage() -> ExitCode {
    eprintln!("usage: fbox-bench --list | --write <label> | --check <BENCH_label.json>...");
    ExitCode::FAILURE
}

fn check_one(path: &Path) -> Result<bool, String> {
    let label = label_of(path).ok_or_else(|| {
        format!("{}: baseline files are named BENCH_<label>.json", path.display())
    })?;
    let tolerances = trend::tolerances_for(label)
        .ok_or_else(|| format!("unknown suite `{label}` (try --list)"))?;
    let baseline = read_snapshot(path).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("suite `{label}`: measuring against {}", path.display());
    let fresh = suites::run_suite(label).ok_or_else(|| format!("unknown suite `{label}`"))?;
    let verdicts = trend::check(&baseline, &fresh, tolerances);
    let mut ok = true;
    for v in &verdicts {
        println!("{v}");
        ok &= !v.regressed;
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--list") => {
            for label in suites::SUITE_LABELS {
                println!("{label}");
            }
            ExitCode::SUCCESS
        }
        Some("--write") => {
            let Some(label) = args.get(1) else { return usage() };
            let Some(snapshot) = suites::run_suite(label) else {
                eprintln!("unknown suite `{label}` (try --list)");
                return ExitCode::FAILURE;
            };
            match write_snapshot(&repo_root(), label, &snapshot) {
                Ok(path) => {
                    println!("wrote {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("failed to write baseline: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--check") => {
            if args.len() < 2 {
                return usage();
            }
            let mut all_ok = true;
            for raw in &args[1..] {
                let path = PathBuf::from(raw);
                // Bare baseline names resolve against the repo root, so the
                // gate runs from any working directory.
                let path = if path.exists() { path } else { repo_root().join(raw) };
                match check_one(&path) {
                    Ok(ok) => all_ok &= ok,
                    Err(e) => {
                        eprintln!("{e}");
                        all_ok = false;
                    }
                }
            }
            if all_ok {
                println!("trend gate: all metrics within tolerance");
                ExitCode::SUCCESS
            } else {
                eprintln!("trend gate: regression detected");
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
