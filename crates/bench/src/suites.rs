//! The measured benchmark suites behind both the `cargo bench` wrappers
//! and the `fbox-bench` trend gate. Each suite runs its workload under a
//! scoped telemetry registry and returns the resulting [`Snapshot`] plus
//! the headline ratios the wrappers assert on — so a CI `--check` run and
//! a local `cargo bench -p fbox-bench` measure exactly the same thing.

use std::hint::black_box;

use fbox_core::observations::{MarketObservations, SearchObservations};
use fbox_core::{FBox, MarketMeasure, SearchMeasure, Universe};
use fbox_marketplace::{
    crawl, crawl_resilient, BiasProfile, CrawlJournal, Marketplace, Population, ScoringModel,
};
use fbox_mitigate::{rerank_market, rerank_search, Intervention, RerankConfig};
use fbox_par::with_threads;
use fbox_resilience::{FaultPlan, FaultProfile, Resilience};
use fbox_search::extension::ExtensionRunner;
use fbox_search::noise::NoiseModel;
use fbox_search::personalize::PersonalizationProfile;
use fbox_search::study::{run_study, StudyDesign};
use fbox_search::SearchEngine;
use fbox_store::{CubeSnapshot, EpochStore, SegmentLog};
use fbox_telemetry::Snapshot;

/// Timed iterations per suite (after one untimed warm-up).
pub const ITERATIONS: usize = 5;
/// Worker count the parallel suite pins via [`with_threads`].
pub const THREADS: usize = 4;

/// Outcome of [`parallel_suite`]: serial vs parallel cube construction.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// The suite's metrics (`cube.build.*`).
    pub snapshot: Snapshot,
    /// Mean serial build time, milliseconds.
    pub serial_ms: f64,
    /// Mean parallel build time, milliseconds.
    pub parallel_ms: f64,
    /// serial / parallel mean ratio.
    pub speedup: f64,
}

/// Outcome of [`resilience_suite`]: inert vs fault-injected crawl.
#[derive(Debug, Clone)]
pub struct ResilienceOutcome {
    /// The suite's metrics (`crawl.*`).
    pub snapshot: Snapshot,
    /// Mean inert crawl time, milliseconds.
    pub inert_ms: f64,
    /// Mean mild-faults crawl time, milliseconds.
    pub mild_ms: f64,
    /// mild / inert mean ratio.
    pub overhead: f64,
    /// Coverage of the mild-faults crawl.
    pub coverage: f64,
    /// Retries absorbed by the mild-faults crawl.
    pub retries: u64,
}

/// Outcome of [`lint_suite`]: serial vs parallel static analysis of this
/// workspace.
#[derive(Debug, Clone)]
pub struct LintOutcome {
    /// The suite's metrics (`lint.*`).
    pub snapshot: Snapshot,
    /// Mean single-worker lint time, milliseconds.
    pub serial_ms: f64,
    /// Mean multi-worker lint time, milliseconds.
    pub parallel_ms: f64,
    /// serial / parallel mean ratio.
    pub speedup: f64,
    /// Mean interval-fixpoint (fourth pass) time, milliseconds.
    pub absint_ms: f64,
    /// Findings reported (identical across worker counts).
    pub findings: usize,
}

/// Outcome of [`mitigate_suite`]: serial vs parallel re-ranking of the
/// full marketplace crawl and search study under every intervention.
#[derive(Debug, Clone)]
pub struct MitigateOutcome {
    /// The suite's metrics (`mitigate.*`).
    pub snapshot: Snapshot,
    /// Mean single-worker sweep time, milliseconds.
    pub serial_ms: f64,
    /// Mean multi-worker sweep time, milliseconds.
    pub parallel_ms: f64,
    /// serial / parallel mean ratio.
    pub speedup: f64,
    /// Whether the serial and parallel sweeps produced identical
    /// observations and stats for every intervention.
    pub parity: bool,
    /// Largest NDCG loss any intervention inflicted on either platform.
    pub worst_ndcg_loss: f64,
}

/// Outcome of [`store_suite`]: incremental cube maintenance vs rebuild,
/// and snapshot load vs rebuild.
#[derive(Debug, Clone)]
pub struct StoreOutcome {
    /// The suite's metrics (`store.*`).
    pub snapshot: Snapshot,
    /// Mean full `FBox::from_market` rebuild time, milliseconds.
    pub rebuild_ms: f64,
    /// Mean time to delta-update [`DIRTY_BATCH`] cells of a fully
    /// populated store, milliseconds.
    pub delta_ms: f64,
    /// rebuild / delta-batch mean ratio.
    pub delta_speedup: f64,
    /// delta cost on a full cube / delta cost on a quarter-full cube:
    /// ≈1 when update cost tracks dirty cells, not cube size.
    pub delta_scaling: f64,
    /// Mean `CubeSnapshot::load` time, milliseconds.
    pub load_ms: f64,
    /// rebuild / snapshot-load mean ratio.
    pub load_speedup: f64,
    /// Records the segment-log replay probe reads back each open.
    pub log_records: u64,
}

fn market_fixture() -> (Universe, MarketObservations) {
    let m =
        Marketplace::new(Population::paper(7), ScoringModel::default(), BiasProfile::neutral(), 20);
    let (universe, obs, _) = crawl(&m);
    (universe, obs)
}

fn search_fixture() -> (Universe, SearchObservations) {
    let design = StudyDesign { participants_per_group: 3, seed: 0xF0CA };
    let engine = SearchEngine::new(PersonalizationProfile::uniform(0.2), NoiseModel::none(), 10);
    let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
    let (universe, obs, _) = run_study(&design, &engine, &runner);
    (universe, obs)
}

fn mean_ns(h: &fbox_telemetry::Histogram) -> f64 {
    h.sum().as_nanos() as f64 / h.count().max(1) as f64
}

/// Serial vs parallel cube construction (`FBox::from_*` against
/// `FBox::from_*_serial`). The parallel path wins twice: cells are fanned
/// out across workers, and each worker evaluates all groups of a cell
/// through the shared-work evaluators instead of recomputing per
/// `(cell, group)` call.
pub fn parallel_suite() -> ParallelOutcome {
    let registry = fbox_telemetry::Registry::new();
    let serial = registry.histogram("cube.build.serial");
    let parallel = registry.histogram("cube.build.parallel");

    let (market_universe, market_obs) = market_fixture();
    let (search_universe, search_obs) = search_fixture();

    // Warm-up: touch both paths once so allocator and caches settle.
    black_box(FBox::from_market_serial(market_universe.clone(), &market_obs, MarketMeasure::emd()));
    black_box(with_threads(THREADS, || {
        FBox::from_market(market_universe.clone(), &market_obs, MarketMeasure::emd())
    }));

    for _ in 0..ITERATIONS {
        let t = serial.timer();
        black_box(FBox::from_market_serial(
            market_universe.clone(),
            &market_obs,
            MarketMeasure::emd(),
        ));
        black_box(FBox::from_search_serial(
            search_universe.clone(),
            &search_obs,
            SearchMeasure::kendall(),
        ));
        t.observe();

        let t = parallel.timer();
        let built = with_threads(THREADS, || {
            (
                FBox::from_market(market_universe.clone(), &market_obs, MarketMeasure::emd()),
                FBox::from_search(search_universe.clone(), &search_obs, SearchMeasure::kendall()),
            )
        });
        t.observe();
        black_box(built);
    }

    let speedup = mean_ns(&serial) / mean_ns(&parallel);
    // Gauges are integers; store the ratio ×100 (e.g. 2.37× → 237).
    registry.gauge("cube.build.speedup_x100").set((speedup * 100.0) as i64);
    registry.gauge("cube.build.threads").set(THREADS as i64);

    ParallelOutcome {
        snapshot: registry.snapshot(),
        serial_ms: mean_ns(&serial) / 1e6,
        parallel_ms: mean_ns(&parallel) / 1e6,
        speedup,
    }
}

/// Resilience-layer overhead: the full marketplace crawl under the inert
/// configuration (`Resilience::none()`) vs a mild fault plan. Faults are
/// plan-determined — a failed attempt consumes virtual time, not a query
/// execution — so what this bounds is the fixed cost the layer adds:
/// planning pass, breaker bookkeeping, journaling, and the journal fold.
pub fn resilience_suite() -> ResilienceOutcome {
    let registry = fbox_telemetry::Registry::new();
    let inert_h = registry.histogram("crawl.inert");
    let mild_h = registry.histogram("crawl.mild");

    let m =
        Marketplace::new(Population::paper(5), ScoringModel::default(), BiasProfile::neutral(), 10);
    let inert = Resilience::none();
    let mild = Resilience::with_plan(FaultPlan::new(11, FaultProfile::mild()));

    // Warm-up: touch both paths once so allocator and caches settle.
    black_box(crawl_resilient(&m, &inert, &mut CrawlJournal::new()));
    black_box(crawl_resilient(&m, &mild, &mut CrawlJournal::new()));

    let mut mild_stats = None;
    for _ in 0..ITERATIONS {
        let t = inert_h.timer();
        black_box(crawl_resilient(&m, &inert, &mut CrawlJournal::new()));
        t.observe();

        let t = mild_h.timer();
        let run = crawl_resilient(&m, &mild, &mut CrawlJournal::new());
        t.observe();
        mild_stats = Some(run.stats.clone());
        black_box(run);
    }
    let stats = mild_stats.expect("at least one iteration ran");

    registry.gauge("crawl.mild.retries").set(stats.n_retries as i64);
    registry.gauge("crawl.mild.failed").set(stats.n_failed as i64);
    registry.gauge("crawl.mild.quarantined").set(stats.n_quarantined as i64);
    registry.gauge("crawl.mild.truncated").set(stats.n_truncated as i64);
    registry.gauge("crawl.mild.backoff_virtual_ms").set(stats.backoff_virtual_ms as i64);
    // Gauges are integers; store the ratio ×1000 (e.g. 0.973 → 973).
    registry.gauge("crawl.mild.coverage_x1000").set((stats.coverage * 1000.0) as i64);
    let overhead = mean_ns(&mild_h) / mean_ns(&inert_h);
    registry.gauge("crawl.resilience.overhead_x100").set((overhead * 100.0) as i64);

    ResilienceOutcome {
        snapshot: registry.snapshot(),
        inert_ms: mean_ns(&inert_h) / 1e6,
        mild_ms: mean_ns(&mild_h) / 1e6,
        overhead,
        coverage: stats.coverage,
        retries: stats.n_retries,
    }
}

/// Static-analysis throughput: `fbox-lint`'s full run over this very
/// workspace, single-worker vs [`THREADS`] workers. The lexing/parsing
/// and lexical-rule passes fan out per file; the call-graph + dataflow
/// semantic pass is sequential in both configurations, so the speedup
/// bounds what Amdahl leaves on the table. A parity gauge pins the
/// engine's determinism promise: both reports must be identical.
pub fn lint_suite() -> LintOutcome {
    let registry = fbox_telemetry::Registry::new();
    let serial_h = registry.histogram("lint.serial");
    let parallel_h = registry.histogram("lint.parallel");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = std::fs::read_to_string(root.join("Lint.toml"))
        .ok()
        .and_then(|text| fbox_lint::config::Config::parse(&text).ok())
        .unwrap_or_default();
    let baseline = fbox_lint::baseline::Baseline::default();
    // Each run gets a throwaway registry so the suite snapshot holds only
    // the suite's own metrics, not repo-size-dependent scan counters.
    let run =
        || fbox_lint::engine::run(&root, &config, &baseline, &fbox_telemetry::Registry::new());

    // Warm-up: one run per configuration so the page cache holds the tree.
    let first = with_threads(1, run);
    let wide = with_threads(THREADS, run);
    let identical = first.findings == wide.findings
        && first.files_scanned == wide.files_scanned
        && first.lines_scanned == wide.lines_scanned;
    let findings = first.findings.len();

    for _ in 0..ITERATIONS {
        let t = serial_h.timer();
        black_box(with_threads(1, run));
        t.observe();

        let t = parallel_h.timer();
        black_box(with_threads(THREADS, run));
        t.observe();
    }

    // Isolate the fourth pass: the interprocedural interval fixpoint,
    // re-run on an already-built model so the metric moves with the
    // abstract interpreter alone, not lexing/parsing/rule time.
    let absint_h = registry.histogram("lint.absint");
    let sources: Vec<_> = fbox_lint::engine::walk(&root, &config)
        .iter()
        .filter_map(|rel| fbox_lint::source::load(&root, rel))
        .collect();
    let model = fbox_lint::sema::Model::build(&sources, &config);
    let plain: Vec<Vec<usize>> =
        model.graph.iter().map(|es| es.iter().map(|&(callee, _)| callee).collect()).collect();
    for _ in 0..ITERATIONS {
        let t = absint_h.timer();
        black_box(with_threads(THREADS, || {
            fbox_lint::absint::analyze(
                &sources,
                &model.nodes,
                &plain,
                &model.flows,
                &model.call_sites,
            )
        }));
        t.observe();
    }

    let speedup = mean_ns(&serial_h) / mean_ns(&parallel_h);
    // Gauges are integers; store the ratio ×100 (e.g. 1.84× → 184).
    registry.gauge("lint.speedup_x100").set((speedup * 100.0) as i64);
    registry.gauge("lint.threads").set(THREADS as i64);
    registry.gauge("lint.parity").set(i64::from(identical));

    LintOutcome {
        snapshot: registry.snapshot(),
        serial_ms: mean_ns(&serial_h) / 1e6,
        parallel_ms: mean_ns(&parallel_h) / 1e6,
        speedup,
        absint_ms: mean_ns(&absint_h) / 1e6,
        findings,
    }
}

/// Fairness-intervention throughput: every [`Intervention`] re-ranks the
/// full marketplace crawl and the full search study, single-worker vs
/// [`THREADS`] workers. The per-cell fan-out in `rerank_market` /
/// `rerank_search` is the parallel surface; a parity gauge pins the
/// mitigation determinism contract (identical observations and stats at
/// any worker count), and the worst NDCG loss across the sweep gates
/// exactly — it only moves when intervention semantics move.
pub fn mitigate_suite() -> MitigateOutcome {
    let registry = fbox_telemetry::Registry::new();
    let serial_h = registry.histogram("mitigate.serial");
    let parallel_h = registry.histogram("mitigate.parallel");

    let (market_universe, market_obs) = market_fixture();
    let (search_universe, search_obs) = search_fixture();
    let config = RerankConfig::default();

    let sweep = || {
        Intervention::ALL
            .iter()
            .map(|&iv| {
                (
                    rerank_market(&market_universe, &market_obs, iv, &config),
                    rerank_search(&search_universe, &search_obs, iv, &config),
                )
            })
            .collect::<Vec<_>>()
    };

    // Warm-up doubles as the parity probe: the single-worker and
    // fanned-out sweeps must agree on every cell of every intervention.
    let narrow = with_threads(1, sweep);
    let wide = with_threads(THREADS, sweep);
    let parity = narrow.iter().zip(&wide).all(|((ma, sa), (mb, sb))| {
        ma.stats == mb.stats
            && sa.stats == sb.stats
            && market_obs_eq(&ma.observations, &mb.observations)
            && search_obs_eq(&sa.observations, &sb.observations)
    });
    let worst_ndcg_loss = narrow
        .iter()
        .flat_map(|(m, s)| [m.stats.ndcg_loss(), s.stats.ndcg_loss()])
        .fold(0.0f64, f64::max);
    let (market_cells, search_lists) = (narrow[0].0.stats.cells, narrow[0].1.stats.lists);

    for _ in 0..ITERATIONS {
        let t = serial_h.timer();
        black_box(with_threads(1, sweep));
        t.observe();

        let t = parallel_h.timer();
        black_box(with_threads(THREADS, sweep));
        t.observe();
    }

    let speedup = mean_ns(&serial_h) / mean_ns(&parallel_h);
    // Gauges are integers; store ratios ×100 and the loss ×10000.
    registry.gauge("mitigate.speedup_x100").set((speedup * 100.0) as i64);
    registry.gauge("mitigate.threads").set(THREADS as i64);
    registry.gauge("mitigate.parity").set(i64::from(parity));
    registry.gauge("mitigate.market.cells").set(market_cells as i64);
    registry.gauge("mitigate.search.lists").set(search_lists as i64);
    registry.gauge("mitigate.worst_ndcg_loss_x10000").set((worst_ndcg_loss * 10_000.0) as i64);

    MitigateOutcome {
        snapshot: registry.snapshot(),
        serial_ms: mean_ns(&serial_h) / 1e6,
        parallel_ms: mean_ns(&parallel_h) / 1e6,
        speedup,
        parity,
        worst_ndcg_loss,
    }
}

/// Dirty cells re-ingested per timed delta batch in [`store_suite`].
pub const DIRTY_BATCH: usize = 128;

/// Incremental cube maintenance: delta-updating [`DIRTY_BATCH`] cells of
/// an [`EpochStore`] vs rebuilding the whole cube, the same delta batch
/// against a quarter-full and a fully populated cube (update cost must
/// track dirty cells, not cube size), snapshot load vs rebuild, and the
/// segment log's replay throughput.
pub fn store_suite() -> StoreOutcome {
    let registry = fbox_telemetry::Registry::new();
    let rebuild_h = registry.histogram("store.rebuild");
    let quarter_h = registry.histogram("store.delta.quarter");
    let full_h = registry.histogram("store.delta.full");
    let load_h = registry.histogram("store.snapshot.load");
    let replay_h = registry.histogram("store.log.replay");

    let (universe, obs) = market_fixture();
    let cells: Vec<_> = obs.cells().map(|((q, l), r)| (q, l, r.clone())).collect();
    let dirty: Vec<_> = cells.iter().take(DIRTY_BATCH).cloned().collect();
    let measure = MarketMeasure::exposure();

    // Two pre-populated stores: the same dirty batch hits both, so the
    // quarter/full ratio isolates cube-size dependence of one update.
    let quarter_store = EpochStore::new(universe.clone());
    for (q, l, r) in &cells[..cells.len() / 4] {
        quarter_store.ingest_market(*q, *l, Some(r), measure);
    }
    let full_store = EpochStore::new(universe.clone());
    for (q, l, r) in &cells {
        full_store.ingest_market(*q, *l, Some(r), measure);
    }

    // On-disk fixtures for the load and replay probes.
    let dir = std::env::temp_dir().join(format!("fbox-bench-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let snap_path = dir.join("suite.fbxs");
    {
        let fb = FBox::from_market_serial(universe.clone(), &obs, measure);
        let mut snap = CubeSnapshot::new(universe.clone());
        snap.insert_cube("market:exposure", fb.cube().clone());
        snap.save(&snap_path).expect("snapshot saved");
    }
    let log_path = dir.join("suite.fbxlog");
    let log_records = {
        let (mut log, _, _) = SegmentLog::open(&log_path).expect("log opened");
        for i in 0..2048u64 {
            // Deterministic payloads spanning the record sizes ingest sees.
            let payload = vec![i as u8; 16 + (i % 251) as usize];
            let _ = log.append(&payload).expect("append");
        }
        2048u64
    };

    // Warm-up: touch every timed path once.
    black_box(FBox::from_market_serial(universe.clone(), &obs, measure));
    black_box(CubeSnapshot::load(&snap_path).expect("snapshot loaded"));
    black_box(SegmentLog::open(&log_path).expect("log opened"));

    for _ in 0..ITERATIONS {
        let t = rebuild_h.timer();
        black_box(FBox::from_market_serial(universe.clone(), &obs, measure));
        t.observe();

        let t = quarter_h.timer();
        for (q, l, r) in &dirty {
            quarter_store.ingest_market(*q, *l, Some(r), measure);
        }
        t.observe();

        let t = full_h.timer();
        for (q, l, r) in &dirty {
            full_store.ingest_market(*q, *l, Some(r), measure);
        }
        t.observe();

        let t = load_h.timer();
        black_box(CubeSnapshot::load(&snap_path).expect("snapshot loaded"));
        t.observe();

        let t = replay_h.timer();
        let (_, payloads, stats) = SegmentLog::open(&log_path).expect("log opened");
        t.observe();
        assert_eq!(payloads.len() as u64, log_records, "replay must read every record");
        assert_eq!(stats.quarantined, 0, "clean log must replay clean");
        black_box(payloads);
    }
    std::fs::remove_dir_all(&dir).ok();

    let delta_speedup = mean_ns(&rebuild_h) / mean_ns(&full_h);
    let delta_scaling = mean_ns(&full_h) / mean_ns(&quarter_h);
    let load_speedup = mean_ns(&rebuild_h) / mean_ns(&load_h);
    // Gauges are integers; store ratios ×100.
    registry.gauge("store.delta.speedup_x100").set((delta_speedup * 100.0) as i64);
    registry.gauge("store.delta.scaling_x100").set((delta_scaling * 100.0) as i64);
    registry.gauge("store.snapshot.load_speedup_x100").set((load_speedup * 100.0) as i64);
    registry.gauge("store.dirty_batch").set(DIRTY_BATCH as i64);
    registry.gauge("store.cube.cells").set(cells.len() as i64);
    registry.gauge("store.log.records").set(log_records as i64);

    StoreOutcome {
        snapshot: registry.snapshot(),
        rebuild_ms: mean_ns(&rebuild_h) / 1e6,
        delta_ms: mean_ns(&full_h) / 1e6,
        delta_speedup,
        delta_scaling,
        load_ms: mean_ns(&load_h) / 1e6,
        load_speedup,
        log_records,
    }
}

fn market_obs_eq(a: &MarketObservations, b: &MarketObservations) -> bool {
    let mut ca: Vec<_> = a.cells().collect();
    let mut cb: Vec<_> = b.cells().collect();
    ca.sort_unstable_by_key(|&((q, l), _)| (q.0, l.0));
    cb.sort_unstable_by_key(|&((q, l), _)| (q.0, l.0));
    ca == cb
}

fn search_obs_eq(a: &SearchObservations, b: &SearchObservations) -> bool {
    let mut ca: Vec<_> = a.cells().collect();
    let mut cb: Vec<_> = b.cells().collect();
    ca.sort_unstable_by_key(|&((q, l), _)| (q.0, l.0));
    cb.sort_unstable_by_key(|&((q, l), _)| (q.0, l.0));
    ca == cb
}

/// The suite registered under `label`, or `None` for unknown labels.
pub fn run_suite(label: &str) -> Option<Snapshot> {
    match label {
        "parallel" => Some(parallel_suite().snapshot),
        "resilience" => Some(resilience_suite().snapshot),
        "lint" => Some(lint_suite().snapshot),
        "mitigate" => Some(mitigate_suite().snapshot),
        "store" => Some(store_suite().snapshot),
        _ => None,
    }
}

/// Labels `run_suite` understands, in canonical order.
pub const SUITE_LABELS: [&str; 5] = ["parallel", "resilience", "lint", "mitigate", "store"];
