//! Benchmarks of the per-cell unfairness computations behind the worked
//! examples (Figures 1–5): one search cell under Kendall/Jaccard and one
//! marketplace cell under EMD/exposure, at crawl-realistic sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use fbox_core::model::{Schema, Universe, ValueId};
use fbox_core::observations::{MarketRanking, RankedWorker, UserList};
use fbox_core::unfairness::{
    market_cell_unfairness, search_cell_unfairness, MarketMeasure, SearchMeasure,
};
use std::hint::black_box;

fn market_fixture() -> (Universe, MarketRanking) {
    let universe = Universe::with_all_groups(Schema::gender_ethnicity());
    // 50 workers (a full crawl page), demographics cycling.
    let workers = (1..=50)
        .map(|rank| RankedWorker {
            assignment: vec![ValueId((rank % 2) as u16), ValueId((rank % 3) as u16)],
            rank,
            score: None,
        })
        .collect();
    (universe, MarketRanking::new(workers))
}

fn search_fixture() -> (Universe, Vec<UserList>) {
    let universe = Universe::with_all_groups(Schema::gender_ethnicity());
    // 18 users (3 per full group) with partially overlapping top-10 lists.
    let lists = (0..18u64)
        .map(|u| UserList {
            assignment: vec![ValueId((u % 2) as u16), ValueId((u % 3) as u16)],
            results: (0..10).map(|i| (u * 3 + i * 7) % 40).collect(),
        })
        .collect();
    (universe, lists)
}

fn bench_market_cell(c: &mut Criterion) {
    let (universe, ranking) = market_fixture();
    let bf = universe.group_id_by_text("gender=Female & ethnicity=Black").unwrap();
    c.bench_function("cell/market_emd", |b| {
        b.iter(|| {
            market_cell_unfairness(
                black_box(&universe),
                black_box(&ranking),
                bf,
                MarketMeasure::emd(),
            )
        })
    });
    c.bench_function("cell/market_exposure", |b| {
        b.iter(|| {
            market_cell_unfairness(
                black_box(&universe),
                black_box(&ranking),
                bf,
                MarketMeasure::exposure(),
            )
        })
    });
}

fn bench_search_cell(c: &mut Criterion) {
    let (universe, lists) = search_fixture();
    let bf = universe.group_id_by_text("gender=Female & ethnicity=Black").unwrap();
    c.bench_function("cell/search_kendall", |b| {
        b.iter(|| {
            search_cell_unfairness(
                black_box(&universe),
                black_box(&lists),
                bf,
                SearchMeasure::kendall(),
            )
        })
    });
    c.bench_function("cell/search_jaccard", |b| {
        b.iter(|| {
            search_cell_unfairness(
                black_box(&universe),
                black_box(&lists),
                bf,
                SearchMeasure::JaccardDistance,
            )
        })
    });
}

criterion_group!(benches, bench_market_cell, bench_search_cell);
criterion_main!(benches);
