//! Serial vs parallel fairness-intervention sweep, writing the
//! `BENCH_mitigate.json` trajectory file at the workspace root. The
//! measurement itself lives in [`fbox_bench::suites::mitigate_suite`] so
//! the `fbox-bench --check` trend gate reruns exactly this workload.

use std::path::Path;

use fbox_bench::suites::{mitigate_suite, ITERATIONS, THREADS};
use fbox_bench::write_snapshot;

fn main() {
    let outcome = mitigate_suite();
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = write_snapshot(&root, "mitigate", &outcome.snapshot).expect("snapshot written");
    println!(
        "mitigation sweep over {ITERATIONS} iterations: serial {:.1} ms, parallel {:.1} ms \
         (FBOX_THREADS={THREADS}) — {:.2}x, worst NDCG loss {:.4}; wrote {}",
        outcome.serial_ms,
        outcome.parallel_ms,
        outcome.speedup,
        outcome.worst_ndcg_loss,
        path.display()
    );
    assert!(outcome.parity, "re-ranked observations must be identical at 1 and {THREADS} workers");
    assert!(
        outcome.worst_ndcg_loss < 0.35,
        "no intervention may burn more than 0.35 NDCG, measured {:.4}",
        outcome.worst_ndcg_loss
    );
}
