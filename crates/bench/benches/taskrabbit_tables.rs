//! One benchmark per TaskRabbit table (Tables 8–15): the cost of
//! regenerating each result from the pre-built F-Box, plus the end-to-end
//! crawl + cube construction.

use criterion::{criterion_group, criterion_main, Criterion};
use fbox_core::algo::{compare, compare_sets, Entity, RankOrder, Restriction};
use fbox_core::index::Dimension;
use fbox_marketplace::{crawl, Marketplace, Population, ScoringModel};
use fbox_repro::{calibrate, scenario, util};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("taskrabbit_pipeline");
    group.sample_size(10);
    group.bench_function("crawl_5361_queries", |b| {
        let marketplace = Marketplace::new(
            Population::paper(calibrate::SEED),
            ScoringModel::default(),
            calibrate::taskrabbit_bias(),
            calibrate::SEED,
        );
        b.iter(|| crawl(black_box(&marketplace)))
    });
    group.bench_function("build_scenario_end_to_end", |b| b.iter(scenario::taskrabbit));
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let s = scenario::taskrabbit();
    let mut group = c.benchmark_group("taskrabbit_tables");

    group
        .bench_function("table8_groups_emd", |b| b.iter(|| util::group_ranking(black_box(&s.emd))));
    group.bench_function("table8_groups_exposure", |b| {
        b.iter(|| util::group_ranking(black_box(&s.exposure)))
    });
    let categories: Vec<&str> = fbox_repro::paper::TABLE9_EMD.iter().map(|&(n, _)| n).collect();
    group.bench_function("table9_categories_emd", |b| {
        b.iter(|| util::category_ranking(black_box(&s.emd), &categories))
    });
    group.bench_function("table10_unfairest_cities", |b| {
        b.iter(|| s.emd.top_k_locations(10, RankOrder::MostUnfair, &Restriction::none()))
    });
    group.bench_function("table11_fairest_cities", |b| {
        b.iter(|| s.emd.top_k_locations(10, RankOrder::LeastUnfair, &Restriction::none()))
    });

    let u = s.exposure.universe();
    let males = util::gender_full_ids(u, "Male");
    let females = util::gender_full_ids(u, "Female");
    group.bench_function("table12_gender_comparison", |b| {
        b.iter(|| {
            compare_sets(
                s.exposure.indices(),
                Dimension::Group,
                black_box(&males),
                black_box(&females),
                Dimension::Location,
                None,
                &Restriction::none(),
            )
        })
    });

    let lm = u.query_id("Lawn Mowing").unwrap();
    let ed = u.query_id("Event Decorating").unwrap();
    let eth = util::ethnicity_ids(u);
    group.bench_function("table13_14_query_comparison", |b| {
        b.iter(|| {
            compare(
                s.emd.indices(),
                Entity::Query(lm),
                Entity::Query(ed),
                Dimension::Group,
                Some(black_box(&eth)),
                &Restriction::none(),
            )
        })
    });

    let sf = u.location_id("San Francisco Bay Area, CA").unwrap();
    let chi = u.location_id("Chicago, IL").unwrap();
    let gc: Vec<u32> = u.queries_in_category("General Cleaning").iter().map(|q| q.0).collect();
    group.bench_function("table15_location_comparison", |b| {
        b.iter(|| {
            compare(
                s.emd.indices(),
                Entity::Location(sf),
                Entity::Location(chi),
                Dimension::Query,
                Some(black_box(&gc)),
                &Restriction::none(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_tables);
criterion_main!(benches);
