//! One benchmark per Google experiment (§5.2.2 and Tables 16–21), plus
//! the end-to-end study protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use fbox_core::algo::{compare, compare_sets, Entity, RankOrder, Restriction};
use fbox_core::index::Dimension;
use fbox_repro::{calibrate, scenario, util};
use fbox_search::{run_study, ExtensionRunner, NoiseModel, SearchEngine, StudyDesign};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("google_pipeline");
    group.sample_size(10);
    group.bench_function("run_full_study", |b| {
        let engine = SearchEngine::new(
            calibrate::google_personalization(),
            NoiseModel::default(),
            calibrate::SEED,
        );
        let design = StudyDesign { participants_per_group: 3, seed: calibrate::SEED };
        let runner = ExtensionRunner::default();
        b.iter(|| run_study(black_box(&design), black_box(&engine), black_box(&runner)))
    });
    group.bench_function("build_scenario_end_to_end", |b| b.iter(scenario::google));
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let s = scenario::google();
    let mut group = c.benchmark_group("google_tables");

    group.bench_function("quant_groups_kendall", |b| {
        b.iter(|| util::group_ranking(black_box(&s.kendall)))
    });
    group.bench_function("quant_groups_jaccard", |b| {
        b.iter(|| util::group_ranking(black_box(&s.jaccard)))
    });
    group.bench_function("quant_locations_kendall", |b| {
        b.iter(|| s.kendall.top_k_locations(11, RankOrder::MostUnfair, &Restriction::none()))
    });

    let u = s.kendall.universe();
    let males = util::gender_full_ids(u, "Male");
    let females = util::gender_full_ids(u, "Female");
    group.bench_function("table16_17_gender_comparison", |b| {
        b.iter(|| {
            compare_sets(
                s.kendall.indices(),
                Dimension::Group,
                black_box(&males),
                black_box(&females),
                Dimension::Location,
                None,
                &Restriction::none(),
            )
        })
    });

    let re = u.query_id("run errand").unwrap();
    let gc = u.query_id("general cleaning").unwrap();
    let eth = util::ethnicity_ids(u);
    group.bench_function("table18_19_query_comparison", |b| {
        b.iter(|| {
            compare(
                s.kendall.indices(),
                Entity::Query(re),
                Entity::Query(gc),
                Dimension::Group,
                Some(black_box(&eth)),
                &Restriction::none(),
            )
        })
    });

    let bos = u.location_id("Boston, MA").unwrap();
    let bri = u.location_id("Bristol, UK").unwrap();
    let gcq: Vec<u32> = u.queries_in_category("General Cleaning").iter().map(|q| q.0).collect();
    group.bench_function("table20_21_location_comparison", |b| {
        b.iter(|| {
            compare(
                s.kendall.indices(),
                Entity::Location(bos),
                Entity::Location(bri),
                Dimension::Query,
                Some(black_box(&gcq)),
                &Restriction::none(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_tables);
criterion_main!(benches);
