//! Cost of pre-computing the three index families of Table 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbox_bench::synthetic_cube;
use fbox_core::IndexSet;
use std::hint::black_box;

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(20);
    // (groups, queries, locations): the two study shapes, plus larger.
    for &(g, q, l) in &[(11usize, 96usize, 56usize), (11, 20, 11), (100, 100, 50)] {
        let cube = synthetic_cube(g, q, l);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{g}x{q}x{l}")),
            &cube,
            |b, cube| b.iter(|| IndexSet::build(black_box(cube))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
