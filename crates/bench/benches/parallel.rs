//! Serial vs parallel cube construction (`FBox::from_*` against
//! `FBox::from_*_serial`), writing the `BENCH_parallel.json` trajectory
//! file at the workspace root.
//!
//! The parallel path wins twice: cells are fanned out across
//! `FBOX_THREADS` workers, and each worker evaluates all groups of a cell
//! through the shared-work evaluators (hoisted comparable-group
//! resolution, membership masks, per-group histograms, cached pairwise
//! distances) instead of recomputing them per `(cell, group)` call.

use std::hint::black_box;
use std::path::Path;

use fbox_bench::write_snapshot;
use fbox_core::observations::{MarketObservations, SearchObservations};
use fbox_core::{FBox, MarketMeasure, SearchMeasure, Universe};
use fbox_marketplace::{crawl, BiasProfile, Marketplace, Population, ScoringModel};
use fbox_par::with_threads;
use fbox_search::extension::ExtensionRunner;
use fbox_search::noise::NoiseModel;
use fbox_search::personalize::PersonalizationProfile;
use fbox_search::study::{run_study, StudyDesign};
use fbox_search::SearchEngine;

const ITERATIONS: usize = 5;
const THREADS: usize = 4;

fn market_fixture() -> (Universe, MarketObservations) {
    let m =
        Marketplace::new(Population::paper(7), ScoringModel::default(), BiasProfile::neutral(), 20);
    let (universe, obs, _) = crawl(&m);
    (universe, obs)
}

fn search_fixture() -> (Universe, SearchObservations) {
    let design = StudyDesign { participants_per_group: 3, seed: 0xF0CA };
    let engine = SearchEngine::new(PersonalizationProfile::uniform(0.2), NoiseModel::none(), 10);
    let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
    let (universe, obs, _) = run_study(&design, &engine, &runner);
    (universe, obs)
}

fn mean_ns(h: &fbox_telemetry::Histogram) -> f64 {
    h.sum().as_nanos() as f64 / h.count().max(1) as f64
}

fn main() {
    let registry = fbox_telemetry::Registry::new();
    let serial = registry.histogram("cube.build.serial");
    let parallel = registry.histogram("cube.build.parallel");

    let (market_universe, market_obs) = market_fixture();
    let (search_universe, search_obs) = search_fixture();

    // Warm-up: touch both paths once so allocator and caches settle.
    black_box(FBox::from_market_serial(market_universe.clone(), &market_obs, MarketMeasure::emd()));
    black_box(with_threads(THREADS, || {
        FBox::from_market(market_universe.clone(), &market_obs, MarketMeasure::emd())
    }));

    for _ in 0..ITERATIONS {
        let t = serial.timer();
        black_box(FBox::from_market_serial(
            market_universe.clone(),
            &market_obs,
            MarketMeasure::emd(),
        ));
        black_box(FBox::from_search_serial(
            search_universe.clone(),
            &search_obs,
            SearchMeasure::kendall(),
        ));
        t.observe();

        let t = parallel.timer();
        let built = with_threads(THREADS, || {
            (
                FBox::from_market(market_universe.clone(), &market_obs, MarketMeasure::emd()),
                FBox::from_search(search_universe.clone(), &search_obs, SearchMeasure::kendall()),
            )
        });
        t.observe();
        black_box(built);
    }

    let speedup = mean_ns(&serial) / mean_ns(&parallel);
    // Gauges are integers; store the ratio ×100 (e.g. 2.37× → 237).
    registry.gauge("cube.build.speedup_x100").set((speedup * 100.0) as i64);
    registry.gauge("cube.build.threads").set(THREADS as i64);

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = write_snapshot(&root, "parallel", &registry.snapshot()).expect("snapshot written");
    println!(
        "cube build over {ITERATIONS} iterations: serial {:.1} ms, parallel {:.1} ms \
         (FBOX_THREADS={THREADS}) — {speedup:.2}x; wrote {}",
        mean_ns(&serial) / 1e6,
        mean_ns(&parallel) / 1e6,
        path.display()
    );
    assert!(
        speedup >= 1.5,
        "parallel cube build must beat serial by >=1.5x, measured {speedup:.2}x"
    );
}
