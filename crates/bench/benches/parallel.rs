//! Serial vs parallel cube construction, writing the
//! `BENCH_parallel.json` trajectory file at the workspace root. The
//! measurement itself lives in [`fbox_bench::suites::parallel_suite`] so
//! the `fbox-bench --check` trend gate reruns exactly this workload.

use std::path::Path;

use fbox_bench::suites::{parallel_suite, ITERATIONS, THREADS};
use fbox_bench::write_snapshot;

fn main() {
    let outcome = parallel_suite();
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = write_snapshot(&root, "parallel", &outcome.snapshot).expect("snapshot written");
    println!(
        "cube build over {ITERATIONS} iterations: serial {:.1} ms, parallel {:.1} ms \
         (FBOX_THREADS={THREADS}) — {:.2}x; wrote {}",
        outcome.serial_ms,
        outcome.parallel_ms,
        outcome.speedup,
        path.display()
    );
    assert!(
        outcome.speedup >= 1.5,
        "parallel cube build must beat serial by >=1.5x, measured {:.2}x",
        outcome.speedup
    );
}
