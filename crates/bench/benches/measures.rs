//! Micro-benchmarks of the distance measures behind Eq. 1–2: Kendall Tau
//! (full and top-k), Jaccard, EMD (closed-form vs general solver), and
//! exposure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbox_core::measures::{self, BinConfig, DiscountModel, Histogram};
use std::hint::black_box;

fn ranked_list(n: usize, seed: u64) -> Vec<u64> {
    // Deterministic pseudo-shuffle of 0..n*2 truncated to n (partial
    // overlap between differently-seeded lists).
    let mut items: Vec<u64> = (0..(n as u64) * 2).collect();
    let mut state = seed | 1;
    for i in (1..items.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.swap(i, (state % (i as u64 + 1)) as usize);
    }
    items.truncate(n);
    items
}

fn bench_kendall(c: &mut Criterion) {
    let mut group = c.benchmark_group("kendall");
    for &n in &[10usize, 50] {
        let a = ranked_list(n, 7);
        let b = ranked_list(n, 9);
        group.bench_with_input(BenchmarkId::new("top_k_distance", n), &n, |bch, _| {
            bch.iter(|| measures::kendall::top_k_distance(black_box(&a), black_box(&b), 0.5))
        });
        // Same item set → the classic permutation distance.
        let mut b_perm = a.clone();
        b_perm.reverse();
        group.bench_with_input(BenchmarkId::new("tau_distance", n), &n, |bch, _| {
            bch.iter(|| measures::kendall::tau_distance(black_box(&a), black_box(&b_perm)))
        });
    }
    group.finish();
}

fn bench_jaccard(c: &mut Criterion) {
    let mut group = c.benchmark_group("jaccard");
    for &n in &[10usize, 50] {
        let a = ranked_list(n, 7);
        let b = ranked_list(n, 9);
        group.bench_with_input(BenchmarkId::new("distance", n), &n, |bch, _| {
            bch.iter(|| measures::jaccard::distance(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_emd(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd");
    for &bins in &[10usize, 50] {
        let cfg = BinConfig::unit(bins);
        let a = Histogram::from_values(cfg, (0..100).map(|i| (i as f64 * 0.37) % 1.0));
        let b = Histogram::from_values(cfg, (0..100).map(|i| (i as f64 * 0.61) % 1.0));
        group.bench_with_input(BenchmarkId::new("closed_form", bins), &bins, |bch, _| {
            bch.iter(|| measures::emd_1d_normalized(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("general_mcmf", bins), &bins, |bch, _| {
            bch.iter(|| measures::emd_general_1d(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_exposure(c: &mut Criterion) {
    c.bench_function("exposure/total_50_ranks", |b| {
        b.iter(|| measures::total_exposure(DiscountModel::NaturalLog, black_box(1..=50)))
    });
}

criterion_group!(benches, bench_kendall, bench_jaccard, bench_emd, bench_exposure);
criterion_main!(benches);
