//! Static-analysis throughput (single-worker vs parallel `fbox-lint` over
//! this workspace), writing the `BENCH_lint.json` trajectory file at the
//! workspace root. The measurement itself lives in
//! [`fbox_bench::suites::lint_suite`] so the `fbox-bench --check` trend
//! gate reruns exactly this workload.

use std::path::Path;

use fbox_bench::suites::{lint_suite, ITERATIONS, THREADS};
use fbox_bench::write_snapshot;

fn main() {
    let outcome = lint_suite();
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = write_snapshot(&root, "lint", &outcome.snapshot).expect("snapshot written");
    println!(
        "lint over {ITERATIONS} iterations: 1 worker {:.1} ms, {THREADS} workers {:.1} ms \
         ({:.2}x, {} findings), absint fixpoint {:.1} ms; wrote {}",
        outcome.serial_ms,
        outcome.parallel_ms,
        outcome.speedup,
        outcome.findings,
        outcome.absint_ms,
        path.display()
    );
    // The report must be worker-count-independent: the engine flattens
    // per-file results in input order and runs sema sequentially.
    let parity = outcome
        .snapshot
        .gauges
        .iter()
        .find(|g| g.name == "lint.parity")
        .map(|g| g.value)
        .unwrap_or(0);
    assert_eq!(parity, 1, "serial and parallel lint reports diverged");
}
