//! Incremental cube store: delta-update vs full rebuild, snapshot load vs
//! rebuild, and segment-log replay throughput, writing the
//! `BENCH_store.json` trajectory file at the workspace root. The
//! measurement itself lives in [`fbox_bench::suites::store_suite`] so the
//! `fbox-bench --check` trend gate reruns exactly this workload.

use std::path::Path;

use fbox_bench::suites::{store_suite, DIRTY_BATCH, ITERATIONS};
use fbox_bench::write_snapshot;

fn main() {
    let outcome = store_suite();
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = write_snapshot(&root, "store", &outcome.snapshot).expect("snapshot written");
    println!(
        "store over {ITERATIONS} iterations: rebuild {:.2} ms, {DIRTY_BATCH}-cell delta \
         {:.3} ms ({:.1}x), full/quarter delta scaling {:.2}, snapshot load {:.3} ms \
         ({:.1}x vs rebuild), {} log records replayed; wrote {}",
        outcome.rebuild_ms,
        outcome.delta_ms,
        outcome.delta_speedup,
        outcome.delta_scaling,
        outcome.load_ms,
        outcome.load_speedup,
        outcome.log_records,
        path.display()
    );
    // The incremental contract: touching DIRTY_BATCH of ~5k cells must
    // beat rebuilding all of them, and loading a serialized cube must
    // beat re-deriving it from observations.
    assert!(
        outcome.delta_speedup >= 2.0,
        "delta update must beat full rebuild: {:.2}x",
        outcome.delta_speedup
    );
    assert!(
        outcome.load_speedup >= 2.0,
        "snapshot load must beat rebuild: {:.2}x",
        outcome.load_speedup
    );
    // Update cost tracks dirty cells, not cube size: the same batch on a
    // full cube may not cost multiples of what it costs on a quarter cube.
    assert!(
        outcome.delta_scaling <= 3.0,
        "delta cost must track dirty cells, not cube size: full/quarter {:.2}",
        outcome.delta_scaling
    );
}
