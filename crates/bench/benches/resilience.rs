//! Resilience-layer overhead: the full marketplace crawl under the inert
//! configuration (`Resilience::none()`) vs a mild fault plan, writing the
//! `BENCH_resilience.json` trajectory file at the workspace root.
//!
//! Faults are plan-determined — a failed attempt consumes virtual time,
//! not a query execution — so the faulted crawl runs *fewer* engine
//! queries than the inert one. What this bench bounds is the fixed cost
//! the layer adds to every run: the sequential planning pass, breaker
//! bookkeeping, journaling, and the journal fold.

use std::hint::black_box;
use std::path::Path;

use fbox_bench::write_snapshot;
use fbox_marketplace::{
    crawl_resilient, BiasProfile, CrawlJournal, Marketplace, Population, ScoringModel,
};
use fbox_resilience::{FaultPlan, FaultProfile, Resilience};

const ITERATIONS: usize = 5;

fn mean_ns(h: &fbox_telemetry::Histogram) -> f64 {
    h.sum().as_nanos() as f64 / h.count().max(1) as f64
}

fn main() {
    let registry = fbox_telemetry::Registry::new();
    let inert_h = registry.histogram("crawl.inert");
    let mild_h = registry.histogram("crawl.mild");

    let m =
        Marketplace::new(Population::paper(5), ScoringModel::default(), BiasProfile::neutral(), 10);
    let inert = Resilience::none();
    let mild = Resilience::with_plan(FaultPlan::new(11, FaultProfile::mild()));

    // Warm-up: touch both paths once so allocator and caches settle.
    black_box(crawl_resilient(&m, &inert, &mut CrawlJournal::new()));
    black_box(crawl_resilient(&m, &mild, &mut CrawlJournal::new()));

    let mut mild_stats = None;
    for _ in 0..ITERATIONS {
        let t = inert_h.timer();
        black_box(crawl_resilient(&m, &inert, &mut CrawlJournal::new()));
        t.observe();

        let t = mild_h.timer();
        let run = crawl_resilient(&m, &mild, &mut CrawlJournal::new());
        t.observe();
        mild_stats = Some(run.stats.clone());
        black_box(run);
    }
    let stats = mild_stats.expect("at least one iteration ran");

    registry.gauge("crawl.mild.retries").set(stats.n_retries as i64);
    registry.gauge("crawl.mild.failed").set(stats.n_failed as i64);
    registry.gauge("crawl.mild.quarantined").set(stats.n_quarantined as i64);
    registry.gauge("crawl.mild.truncated").set(stats.n_truncated as i64);
    registry.gauge("crawl.mild.backoff_virtual_ms").set(stats.backoff_virtual_ms as i64);
    // Gauges are integers; store the ratio ×1000 (e.g. 0.973 → 973).
    registry.gauge("crawl.mild.coverage_x1000").set((stats.coverage * 1000.0) as i64);
    let overhead = mean_ns(&mild_h) / mean_ns(&inert_h);
    registry.gauge("crawl.resilience.overhead_x100").set((overhead * 100.0) as i64);

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = write_snapshot(&root, "resilience", &registry.snapshot()).expect("snapshot written");
    println!(
        "crawl over {ITERATIONS} iterations: inert {:.1} ms, mild faults {:.1} ms \
         ({overhead:.2}x, coverage {:.3}, {} retries absorbed); wrote {}",
        mean_ns(&inert_h) / 1e6,
        mean_ns(&mild_h) / 1e6,
        stats.coverage,
        stats.n_retries,
        path.display()
    );
    // The faulted run executes fewer queries than the inert one, so the
    // fixed planning/journaling cost has to be egregious to push the
    // ratio past this bound.
    assert!(
        overhead <= 1.5,
        "resilience bookkeeping must stay cheap: mild/inert ratio {overhead:.2}x"
    );
}
