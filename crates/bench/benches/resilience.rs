//! Resilience-layer overhead (inert vs mild-faults crawl), writing the
//! `BENCH_resilience.json` trajectory file at the workspace root. The
//! measurement itself lives in [`fbox_bench::suites::resilience_suite`]
//! so the `fbox-bench --check` trend gate reruns exactly this workload.

use std::path::Path;

use fbox_bench::suites::{resilience_suite, ITERATIONS};
use fbox_bench::write_snapshot;

fn main() {
    let outcome = resilience_suite();
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = write_snapshot(&root, "resilience", &outcome.snapshot).expect("snapshot written");
    println!(
        "crawl over {ITERATIONS} iterations: inert {:.1} ms, mild faults {:.1} ms \
         ({:.2}x, coverage {:.3}, {} retries absorbed); wrote {}",
        outcome.inert_ms,
        outcome.mild_ms,
        outcome.overhead,
        outcome.coverage,
        outcome.retries,
        path.display()
    );
    // The faulted run executes fewer queries than the inert one, so the
    // fixed planning/journaling cost has to be egregious to push the
    // ratio past this bound.
    assert!(
        outcome.overhead <= 1.5,
        "resilience bookkeeping must stay cheap: mild/inert ratio {:.2}x",
        outcome.overhead
    );
}
