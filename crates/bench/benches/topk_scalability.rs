//! Threshold Algorithm vs naive full scan — the scalability claim behind
//! the paper's §4.2 ("The computational complexity of our problems calls
//! for designing scalable solutions").
//!
//! Sweeps the returned dimension's size and `k`; the TA's early
//! termination should leave the naive scan behind as the dimension grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbox_bench::synthetic_cube;
use fbox_core::algo::{naive_top_k, nra_top_k, top_k, RankOrder, Restriction};
use fbox_core::index::{Dimension, IndexSet};
use std::hint::black_box;

fn bench_group_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_groups");
    group.sample_size(20);
    for &n_groups in &[100usize, 1000, 10_000] {
        let cube = synthetic_cube(n_groups, 8, 8);
        let indices = IndexSet::build(&cube);
        for &k in &[1usize, 10] {
            group.bench_with_input(BenchmarkId::new(format!("ta_k{k}"), n_groups), &k, |b, &k| {
                b.iter(|| {
                    top_k(
                        black_box(&indices),
                        Dimension::Group,
                        k,
                        RankOrder::MostUnfair,
                        &Restriction::none(),
                    )
                })
            });
            group.bench_with_input(BenchmarkId::new(format!("nra_k{k}"), n_groups), &k, |b, &k| {
                b.iter(|| {
                    nra_top_k(
                        black_box(&indices),
                        Dimension::Group,
                        k,
                        RankOrder::MostUnfair,
                        &Restriction::none(),
                    )
                })
            });
            group.bench_with_input(
                BenchmarkId::new(format!("naive_k{k}"), n_groups),
                &k,
                |b, &k| {
                    b.iter(|| {
                        naive_top_k(
                            black_box(&cube),
                            Dimension::Group,
                            k,
                            RankOrder::MostUnfair,
                            &Restriction::none(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_other_dimensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_dimensions");
    group.sample_size(20);
    let cube = synthetic_cube(64, 96, 56); // TaskRabbit-shaped
    let indices = IndexSet::build(&cube);
    for (name, dim) in [("query", Dimension::Query), ("location", Dimension::Location)] {
        group.bench_function(BenchmarkId::new("ta", name), |b| {
            b.iter(|| {
                top_k(black_box(&indices), dim, 10, RankOrder::LeastUnfair, &Restriction::none())
            })
        });
        group.bench_function(BenchmarkId::new("naive", name), |b| {
            b.iter(|| {
                naive_top_k(black_box(&cube), dim, 10, RankOrder::LeastUnfair, &Restriction::none())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_group_dimension, bench_other_dimensions);
criterion_main!(benches);
