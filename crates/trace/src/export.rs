//! Trace assembly and the two export formats: Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`) and collapsed-stack
//! ("folded flamegraph") text.
//!
//! Logical-clock sessions are *canonicalized* here: the span forest is
//! rebuilt from `(parent_id, seq)` coordinates, walked in a
//! deterministic DFS, and every event gets a tick timestamp from that
//! walk — so the serialized trace is bit-identical at any
//! `FBOX_THREADS`. Wall-clock sessions keep real timestamps and thread
//! ids, stably sorted.

use std::collections::BTreeMap;

use crate::collector::Clock;
use crate::event::{Event, Phase, TraceValue};

/// A finished tracing session: the drained event set plus the clock it
/// was recorded under.
#[derive(Debug)]
pub struct Trace {
    pub clock: Clock,
    pub events: Vec<Event>,
}

/// A child position inside a span: either a nested span or an instant.
#[derive(Debug, Clone, Copy)]
enum Child {
    Span(u64),
    Instant(usize),
}

impl Trace {
    /// Assemble the raw drained buffers into their canonical order.
    pub(crate) fn assemble(clock: Clock, events: Vec<Event>) -> Trace {
        let events = match clock {
            Clock::Logical => canonicalize(events),
            Clock::Wall => {
                let mut events = events;
                events.sort_by_key(|e| (e.ts_ns, e.thread_id, e.seq));
                events
            }
        };
        Trace { clock, events }
    }

    /// Number of recorded events (spans count begin + end).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize as a Chrome trace-event JSON array. Load the file in
    /// <https://ui.perfetto.dev> or `chrome://tracing`.
    ///
    /// Timestamps are microseconds: logical ticks map 1 tick → 1 µs;
    /// wall-clock nanoseconds keep sub-µs precision as a decimal
    /// fraction. Span/parent ids ride along in `args` as hex strings.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 160);
        out.push('[');
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"fbox\"}}",
        );
        for event in &self.events {
            out.push_str(",\n");
            write_chrome_event(&mut out, event, self.clock);
        }
        out.push_str("]\n");
        out
    }

    /// Render collapsed stacks: one line per unique span path
    /// (`root;child;leaf <self-time>`), aggregated, sorted by path.
    /// Feed to any flamegraph renderer. Self time is the span's
    /// duration minus its closed children's durations — ticks in
    /// logical mode, nanoseconds in wall mode.
    #[must_use]
    pub fn to_folded(&self) -> String {
        struct SpanRec {
            name: &'static str,
            parent_id: u64,
            begin_ts: u64,
            end_ts: Option<u64>,
        }
        let mut spans: BTreeMap<u64, SpanRec> = BTreeMap::new();
        for event in &self.events {
            match event.phase {
                Phase::Begin => {
                    spans.entry(event.span_id).or_insert(SpanRec {
                        name: event.name,
                        parent_id: event.parent_id,
                        begin_ts: event.ts_ns,
                        end_ts: None,
                    });
                }
                Phase::End => {
                    if let Some(rec) = spans.get_mut(&event.span_id) {
                        rec.end_ts = Some(event.ts_ns);
                    }
                }
                Phase::Instant => {}
            }
        }
        let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
        for rec in spans.values() {
            if let Some(end) = rec.end_ts {
                let d = end.saturating_sub(rec.begin_ts);
                *child_time.entry(rec.parent_id).or_insert(0) += d;
            }
        }
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for (id, rec) in &spans {
            let Some(end) = rec.end_ts else { continue };
            let duration = end.saturating_sub(rec.begin_ts);
            let children = child_time.get(id).copied().unwrap_or(0);
            let self_time = duration.saturating_sub(children);
            // Walk the parent chain to build `root;...;leaf`.
            let mut names = vec![rec.name];
            let mut cursor = rec.parent_id;
            while cursor != 0 {
                let Some(parent) = spans.get(&cursor) else { break };
                names.push(parent.name);
                cursor = parent.parent_id;
            }
            names.reverse();
            *folded.entry(names.join(";")).or_insert(0) += self_time;
        }
        let mut out = String::new();
        for (path, value) in &folded {
            out.push_str(path);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }
}

/// Rebuild the span forest from `(parent_id, seq)` and re-emit every
/// event in deterministic DFS order with tick timestamps and thread id
/// 0. Spans left open at flush get a synthesized `End`.
fn canonicalize(events: Vec<Event>) -> Vec<Event> {
    let mut begin_of: BTreeMap<u64, usize> = BTreeMap::new();
    let mut end_of: BTreeMap<u64, usize> = BTreeMap::new();
    // parent_id -> [(seq, tiebreak, child)]; per-parent seqs are unique
    // by construction (one counter per frame; forks reserve up front),
    // the tiebreak only guards degenerate collisions.
    let mut children: BTreeMap<u64, Vec<(u64, u64, Child)>> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        match event.phase {
            Phase::Begin => {
                if begin_of.insert(event.span_id, i).is_none() {
                    children.entry(event.parent_id).or_default().push((
                        event.seq,
                        event.span_id,
                        Child::Span(event.span_id),
                    ));
                }
            }
            Phase::End => {
                end_of.entry(event.span_id).or_insert(i);
            }
            Phase::Instant => {
                children.entry(event.parent_id).or_default().push((
                    event.seq,
                    i as u64,
                    Child::Instant(i),
                ));
            }
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|&(seq, tiebreak, _)| (seq, tiebreak));
    }
    // Roots: children of parents that are not recorded spans (parent 0,
    // or a parent whose Begin was lost). BTreeMap order keeps this
    // deterministic.
    let root_parents: Vec<u64> =
        children.keys().copied().filter(|p| !begin_of.contains_key(p)).collect();

    struct Walk<'a> {
        events: &'a [Event],
        begin_of: &'a BTreeMap<u64, usize>,
        end_of: &'a BTreeMap<u64, usize>,
        children: &'a BTreeMap<u64, Vec<(u64, u64, Child)>>,
        tick: u64,
        out: Vec<Event>,
    }

    impl Walk<'_> {
        fn emit(&mut self, index: usize) {
            let mut event = self.events[index].clone();
            event.ts_ns = self.tick;
            event.thread_id = 0;
            self.tick += 1;
            self.out.push(event);
        }

        fn visit(&mut self, child: Child) {
            match child {
                Child::Instant(index) => self.emit(index),
                Child::Span(span_id) => {
                    let Some(&begin) = self.begin_of.get(&span_id) else { return };
                    self.emit(begin);
                    if let Some(kids) = self.children.get(&span_id) {
                        for &(_, _, kid) in kids {
                            self.visit(kid);
                        }
                    }
                    match self.end_of.get(&span_id) {
                        Some(&end) => self.emit(end),
                        None => {
                            // Guard still live at flush: synthesize the
                            // close so viewers see a well-formed span.
                            let mut event = self.events[begin].clone();
                            event.phase = Phase::End;
                            event.parent_id = 0;
                            event.seq = 0;
                            event.args = Vec::new();
                            event.ts_ns = self.tick;
                            event.thread_id = 0;
                            self.tick += 1;
                            self.out.push(event);
                        }
                    }
                }
            }
        }
    }

    let mut walk = Walk {
        events: &events,
        begin_of: &begin_of,
        end_of: &end_of,
        children: &children,
        tick: 0,
        out: Vec::with_capacity(events.len()),
    };
    for parent in root_parents {
        if let Some(kids) = walk.children.get(&parent) {
            for &(_, _, kid) in kids {
                walk.visit(kid);
            }
        }
    }
    walk.out
}

fn write_chrome_event(out: &mut String, event: &Event, clock: Clock) {
    out.push_str("{\"name\":\"");
    escape_into(event.name, out);
    out.push_str("\",\"cat\":\"fbox\",\"ph\":\"");
    out.push_str(match event.phase {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
    });
    out.push_str("\",\"ts\":");
    match clock {
        // 1 logical tick → 1 µs keeps integer timestamps.
        Clock::Logical => out.push_str(&event.ts_ns.to_string()),
        Clock::Wall => {
            let (us, frac) = (event.ts_ns / 1_000, event.ts_ns % 1_000);
            out.push_str(&us.to_string());
            out.push('.');
            out.push_str(&format!("{frac:03}"));
        }
    }
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&event.thread_id.to_string());
    if event.phase == Phase::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{\"span\":\"");
    out.push_str(&format!("{:#x}", event.span_id));
    out.push_str("\",\"parent\":\"");
    out.push_str(&format!("{:#x}", event.parent_id));
    out.push('"');
    for (key, value) in &event.args {
        out.push_str(",\"");
        escape_into(key, out);
        out.push_str("\":");
        write_value(out, value);
    }
    out.push_str("}}");
}

fn write_value(out: &mut String, value: &TraceValue) {
    match value {
        TraceValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        TraceValue::U64(u) => out.push_str(&u.to_string()),
        TraceValue::I64(i) => out.push_str(&i.to_string()),
        TraceValue::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        TraceValue::Str(s) => {
            out.push('"');
            escape_into(s, out);
            out.push('"');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{derive_span_id, TRACE_ID};

    fn begin(name: &'static str, parent: u64, seq: u64, tid: u64) -> Event {
        Event {
            phase: Phase::Begin,
            name,
            trace_id: TRACE_ID,
            span_id: derive_span_id(parent, seq),
            parent_id: parent,
            thread_id: tid,
            seq,
            ts_ns: 0,
            args: Vec::new(),
        }
    }

    fn end_of(b: &Event) -> Event {
        let mut e = b.clone();
        e.phase = Phase::End;
        e.parent_id = 0;
        e.seq = 0;
        e
    }

    #[test]
    fn canonicalization_is_schedule_independent() {
        // Root span with two children recorded by different "threads"
        // in opposite buffer orders — same canonical trace.
        let root = begin("root", 0, 0, 0);
        let a = begin("a", root.span_id, 0, 1);
        let b = begin("b", root.span_id, 1, 2);
        let order1 =
            vec![root.clone(), a.clone(), end_of(&a), b.clone(), end_of(&b), end_of(&root)];
        let order2 =
            vec![b.clone(), end_of(&b), root.clone(), a.clone(), end_of(&a), end_of(&root)];
        let t1 = Trace::assemble(Clock::Logical, order1);
        let t2 = Trace::assemble(Clock::Logical, order2);
        assert_eq!(t1.to_chrome_json(), t2.to_chrome_json());
        let names: Vec<_> = t1.events.iter().map(|e| (e.name, e.phase)).collect();
        assert_eq!(
            names,
            vec![
                ("root", Phase::Begin),
                ("a", Phase::Begin),
                ("a", Phase::End),
                ("b", Phase::Begin),
                ("b", Phase::End),
                ("root", Phase::End),
            ]
        );
        // Tick timestamps are the DFS order.
        let ticks: Vec<_> = t1.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ticks, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn open_span_gets_synthesized_end() {
        let root = begin("root", 0, 0, 0);
        let t = Trace::assemble(Clock::Logical, vec![root]);
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[1].phase, Phase::End);
        assert_eq!(t.events[1].name, "root");
    }

    #[test]
    fn folded_attributes_self_time() {
        // root [0, 10), child [1, 4) → root self 7, root;child self 3.
        let mut root = begin("root", 0, 0, 0);
        root.ts_ns = 0;
        let mut child = begin("child", root.span_id, 0, 0);
        child.ts_ns = 1;
        let mut child_end = end_of(&child);
        child_end.ts_ns = 4;
        let mut root_end = end_of(&root);
        root_end.ts_ns = 10;
        let t = Trace { clock: Clock::Wall, events: vec![root, child, child_end, root_end] };
        let folded = t.to_folded();
        assert_eq!(folded, "root 7\nroot;child 3\n");
    }

    #[test]
    fn chrome_json_escapes_and_marks_instants() {
        let mut ev = begin("na\"me", 0, 0, 0);
        ev.phase = Phase::Instant;
        ev.span_id = 0;
        ev.args = vec![
            ("note", TraceValue::Str("a\\b\nc".to_string())),
            ("x", TraceValue::F64(0.5)),
            ("bad", TraceValue::F64(f64::NAN)),
        ];
        let t = Trace { clock: Clock::Logical, events: vec![ev] };
        let json = t.to_chrome_json();
        assert!(json.contains("\"name\":\"na\\\"me\""), "{json}");
        assert!(json.contains("\"s\":\"t\""), "{json}");
        assert!(json.contains("\"note\":\"a\\\\b\\nc\""), "{json}");
        assert!(json.contains("\"x\":0.5"), "{json}");
        assert!(json.contains("\"bad\":null"), "{json}");
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'), "{json}");
    }

    #[test]
    fn wall_timestamps_render_microseconds_with_fraction() {
        let mut ev = begin("w", 0, 0, 0);
        ev.ts_ns = 1_234_567;
        let t = Trace { clock: Clock::Wall, events: vec![ev] };
        assert!(t.to_chrome_json().contains("\"ts\":1234.567"));
    }
}
