//! # fbox-trace — causal structured tracing for the F-Box pipeline
//!
//! Zero-dependency tracing with per-thread lock-free buffers: recording
//! an event is one relaxed atomic load plus a thread-local `Vec` push;
//! buffers are drained only at [`finish`] (or spilled when a worker
//! thread exits). Spans nest via a per-thread frame stack, and
//! [`Fork`] carries the caller's span context across `fbox-par`
//! fan-outs so a worker's cell span parents to the cube-build span that
//! spawned it — on any thread, at any `FBOX_THREADS`.
//!
//! Two clocks:
//! - [`Clock::Logical`] — deterministic ticks assigned by a canonical
//!   DFS at flush; trace bytes are identical at any thread count
//!   (this is what the determinism tests assert).
//! - [`Clock::Wall`] — real timestamps for profiling; the only other
//!   sanctioned `Instant::now()` reader besides `fbox-telemetry`
//!   (see `Lint.toml`).
//!
//! Two exports: [`Trace::to_chrome_json`] (Perfetto /
//! `chrome://tracing`) and [`Trace::to_folded`] (collapsed stacks for
//! flamegraph renderers).
//!
//! ```
//! use fbox_trace as trace;
//!
//! trace::start(trace::Clock::Logical);
//! {
//!     let _build = trace::span("cube.build");
//!     let fork = trace::Fork::capture(2);
//!     for slot in 0..2 {
//!         let _task = fork.branch(slot); // normally on a worker thread
//!         trace::instant_args("cell.done", |a| a.u64("slot", slot as u64));
//!     }
//! }
//! let t = trace::finish();
//! assert!(t.to_chrome_json().contains("cube.build"));
//! ```

mod collector;
mod event;
mod export;

pub use collector::{enabled, finish, flush_thread, instant, instant_args, span, span_args, start};
pub use collector::{Clock, Fork, SpanGuard};
pub use event::{derive_span_id, Args, Event, Phase, TraceValue, TRACE_ID};
pub use export::Trace;

/// The environment variable naming a Chrome-JSON output path; read once
/// and cached (the read itself is sanctioned for this crate in
/// `Lint.toml` — the snapshot keeps later `set_var` games from
/// introducing nondeterminism).
pub const TRACE_ENV: &str = "FBOX_TRACE";

/// Path from `FBOX_TRACE`, if set and non-empty. First call snapshots
/// the environment; later calls return the cached value.
#[must_use]
pub fn env_trace_path() -> Option<String> {
    static PATH: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    PATH.get_or_init(|| std::env::var(TRACE_ENV).ok().filter(|p| !p.is_empty())).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The collector is process-global; tests that start/finish
    /// sessions must not interleave.
    static SESSION_LOCK: Mutex<()> = Mutex::new(());

    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        SESSION_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _guard = serialized();
        assert!(!enabled());
        let _span = span("ignored");
        instant("also ignored");
        let trace = finish();
        assert!(trace.is_empty());
    }

    #[test]
    fn spans_nest_and_instants_attach() {
        let _guard = serialized();
        start(Clock::Logical);
        {
            let _outer = span("outer");
            instant_args("mark", |a| {
                a.u64("n", 7);
                a.str("what", "threshold");
            });
            let _inner = span_args("inner", |a| a.bool("deep", true));
        }
        let trace = finish();
        let shape: Vec<_> = trace.events.iter().map(|e| (e.name, e.phase)).collect();
        assert_eq!(
            shape,
            vec![
                ("outer", Phase::Begin),
                ("mark", Phase::Instant),
                ("inner", Phase::Begin),
                ("inner", Phase::End),
                ("outer", Phase::End),
            ]
        );
        let outer_id = trace.events[0].span_id;
        assert_eq!(trace.events[1].parent_id, outer_id, "instant attaches to outer");
        assert_eq!(trace.events[2].parent_id, outer_id, "inner parents to outer");
        assert!(trace.events.iter().all(|e| e.trace_id == TRACE_ID));
        assert!(trace.events.iter().all(|e| e.thread_id == 0), "logical mode folds tids");
    }

    #[test]
    fn fork_branches_parent_to_captured_span() {
        let _guard = serialized();
        start(Clock::Logical);
        {
            let _root = span("fanout");
            let fork = Fork::capture(3);
            // Worker threads each enter one positional branch.
            std::thread::scope(|scope| {
                for slot in 0..3 {
                    scope.spawn(move || {
                        {
                            let _task = fork.branch(slot);
                            instant("work");
                        }
                        flush_thread();
                    });
                }
            });
        }
        let trace = finish();
        let root = trace.events.iter().find(|e| e.name == "fanout").expect("root span");
        let tasks: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.name == "par.task" && e.phase == Phase::Begin)
            .collect();
        assert_eq!(tasks.len(), 3);
        for task in &tasks {
            assert_eq!(task.parent_id, root.span_id, "branch parents to captured span");
        }
        // Branches appear in slot order regardless of scheduling.
        let slots: Vec<u64> = tasks
            .iter()
            .map(|t| match t.args.first() {
                Some(&("slot", TraceValue::U64(s))) => s,
                other => panic!("missing slot arg: {other:?}"),
            })
            .collect();
        assert_eq!(slots, vec![0, 1, 2]);
    }

    #[test]
    fn serial_and_threaded_branches_produce_identical_traces() {
        let _guard = serialized();
        let run = |threaded: bool| {
            start(Clock::Logical);
            {
                let _root = span("fanout");
                let fork = Fork::capture(4);
                if threaded {
                    std::thread::scope(|scope| {
                        for slot in 0..4 {
                            scope.spawn(move || {
                                {
                                    let _task = fork.branch(slot);
                                    let _cell = span("cell");
                                    instant_args("done", |a| a.u64("slot", slot as u64));
                                }
                                flush_thread();
                            });
                        }
                    });
                } else {
                    for slot in 0..4 {
                        let _task = fork.branch(slot);
                        let _cell = span("cell");
                        instant_args("done", |a| a.u64("slot", slot as u64));
                    }
                }
            }
            finish().to_chrome_json()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn wall_clock_timestamps_are_monotone_per_thread() {
        let _guard = serialized();
        start(Clock::Wall);
        {
            let _a = span("a");
            instant("tick");
        }
        let trace = finish();
        assert_eq!(trace.clock, Clock::Wall);
        let ts: Vec<u64> = trace.events.iter().map(|e| e.ts_ns).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "single-thread wall timestamps are ordered");
    }
}
