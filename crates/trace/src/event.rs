//! The trace event model: spans, instants, and their key-value args.
//!
//! Every event carries the full causal coordinate `(trace_id, span_id,
//! parent_id, thread_id, seq)`. `span_id`s are *derived*, not allocated:
//! `span_id = mix(parent_id, seq)` where `seq` is the child's ordinal
//! inside its parent frame. Because the derivation depends only on the
//! causal position — never on which OS thread ran the work or when —
//! the id structure of a trace is identical at any `FBOX_THREADS`.

/// The single trace id used by this process-local tracer. A fixed
/// constant (rather than a session nonce) keeps logical-clock traces
/// bit-identical across runs.
pub const TRACE_ID: u64 = 1;

/// Event kind, mirroring the Chrome trace-event phases we emit
/// (`B`, `E`, `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Span begin (`ph: "B"`).
    Begin,
    /// Span end (`ph: "E"`).
    End,
    /// Thread-scoped instant (`ph: "i", s: "t"`).
    Instant,
}

/// A typed argument value. Strings are owned so call sites can format
/// dynamic labels (city names, measure labels) without lifetime knots.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

/// One recorded event. `ts_ns` is nanoseconds since the trace epoch in
/// wall-clock mode and `0` at record time in logical mode (the canonical
/// tick is assigned at flush).
#[derive(Debug, Clone)]
pub struct Event {
    pub phase: Phase,
    pub name: &'static str,
    pub trace_id: u64,
    /// Derived span id; `0` for instants (they attach to `parent_id`).
    pub span_id: u64,
    /// Enclosing span id, or `0` for root-level events.
    pub parent_id: u64,
    /// Registration-order thread id (rewritten to 0 in logical exports).
    pub thread_id: u64,
    /// Ordinal within the parent frame; drives canonical ordering.
    pub seq: u64,
    pub ts_ns: u64,
    pub args: Vec<(&'static str, TraceValue)>,
}

/// Builder handed to `span_args`/`instant_args` closures. The closure
/// only runs when tracing is enabled, so formatting costs nothing when
/// the tracer is off.
#[derive(Debug, Default)]
pub struct Args(Vec<(&'static str, TraceValue)>);

impl Args {
    pub fn bool(&mut self, key: &'static str, value: bool) {
        self.0.push((key, TraceValue::Bool(value)));
    }

    pub fn u64(&mut self, key: &'static str, value: u64) {
        self.0.push((key, TraceValue::U64(value)));
    }

    pub fn i64(&mut self, key: &'static str, value: i64) {
        self.0.push((key, TraceValue::I64(value)));
    }

    pub fn f64(&mut self, key: &'static str, value: f64) {
        self.0.push((key, TraceValue::F64(value)));
    }

    pub fn str(&mut self, key: &'static str, value: impl Into<String>) {
        self.0.push((key, TraceValue::Str(value.into())));
    }

    pub(crate) fn take(self) -> Vec<(&'static str, TraceValue)> {
        self.0
    }
}

/// SplitMix64 finalizer — a strong, dependency-free 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const SPAN_SALT: u64 = 0xF0B0_7AC3_5EED_0001;

/// Derive a child span id from its causal position. `| 1` keeps ids
/// disjoint from the reserved `0` (no span / root).
pub fn derive_span_id(parent_id: u64, seq: u64) -> u64 {
    splitmix64(parent_id ^ splitmix64(seq ^ SPAN_SALT)) | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_depend_only_on_causal_position() {
        assert_eq!(derive_span_id(0, 0), derive_span_id(0, 0));
        assert_ne!(derive_span_id(0, 0), derive_span_id(0, 1));
        assert_ne!(derive_span_id(0, 0), derive_span_id(1, 0));
        assert_ne!(derive_span_id(0, 0), 0, "0 is reserved for 'no span'");
        for parent in [0u64, 1, 0xDEAD_BEEF] {
            for seq in 0..64 {
                assert_eq!(derive_span_id(parent, seq) & 1, 1);
            }
        }
    }

    #[test]
    fn args_builder_preserves_insertion_order() {
        let mut a = Args::default();
        a.u64("q", 3);
        a.str("city", "Chicago");
        a.f64("tau", 0.25);
        let kv = a.take();
        assert_eq!(kv.len(), 3);
        assert_eq!(kv[0].0, "q");
        assert_eq!(kv[2].0, "tau");
    }
}
