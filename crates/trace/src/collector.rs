//! The collector: per-thread event buffers, span frames, and the fork
//! handshake that carries span context across `fbox-par` fan-outs.
//!
//! Hot-path contract: recording an event is one acquire atomic load
//! (enabled check — acquire so the session state published by `start()`
//! is visible before any event is recorded) plus a push onto a
//! thread-local `Vec`. The only
//! mutexes live off the hot path — taken once per thread at
//! registration, once per thread at exit (spill), and at flush.
//!
//! Determinism contract: span ids and `seq` ordinals are derived purely
//! from causal position (see [`crate::event::derive_span_id`]), and
//! [`Fork`] reserves one ordinal per branch *before* the fan-out, so the
//! recorded structure is identical whether branches run serially on the
//! caller or spread across N workers.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::event::{derive_span_id, Args, Event, Phase, TraceValue, TRACE_ID};

/// Timestamp source for a tracing session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Deterministic tick timestamps assigned at flush by a canonical
    /// DFS over the span tree — bit-identical at any `FBOX_THREADS`.
    Logical,
    /// Nanoseconds since `start()` via `Instant::now()` (the sanctioned
    /// wall-clock read, see `Lint.toml` allow-paths) — for profiling.
    Wall,
}

const CLOCK_LOGICAL: u8 = 0;
const CLOCK_WALL: u8 = 1;

struct Shared {
    enabled: AtomicBool,
    /// Bumped by every `start()`; thread-locals lazily re-register when
    /// their cached session falls behind.
    session: AtomicU64,
    clock: AtomicU8,
    epoch: Mutex<Option<Instant>>,
    /// Buffers handed over by exiting worker threads (`fbox-par` scopes
    /// join before returning, so every spill precedes `finish()`).
    spilled: Mutex<Vec<Event>>,
    next_thread_id: AtomicU64,
}

impl Shared {
    const fn new() -> Self {
        Shared {
            enabled: AtomicBool::new(false),
            session: AtomicU64::new(0),
            clock: AtomicU8::new(CLOCK_LOGICAL),
            epoch: Mutex::new(None),
            spilled: Mutex::new(Vec::new()),
            next_thread_id: AtomicU64::new(0),
        }
    }
}

static SHARED: OnceLock<Shared> = OnceLock::new();

/// Lock that tolerates poisoning: a panicking worker must not wedge the
/// tracer for the surviving threads (the buffers it guards stay valid).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// An open span frame on this thread's stack: child ordinals are drawn
/// from `next_seq`.
struct Frame {
    span_id: u64,
    next_seq: u64,
}

struct LocalState {
    session: u64,
    thread_id: u64,
    epoch: Option<Instant>,
    events: Vec<Event>,
    frames: Vec<Frame>,
    /// Ordinal counter for root-level events (empty frame stack).
    root_seq: u64,
}

impl LocalState {
    const fn new() -> Self {
        LocalState {
            session: 0,
            thread_id: 0,
            epoch: None,
            events: Vec::new(),
            frames: Vec::new(),
            root_seq: 0,
        }
    }

    /// Re-register with the current session if a newer one started.
    fn sync(&mut self, shared: &Shared) {
        let session = shared.session.load(Ordering::Acquire);
        if self.session != session {
            self.session = session;
            self.thread_id = shared.next_thread_id.fetch_add(1, Ordering::Relaxed);
            self.epoch = *lock(&shared.epoch);
            self.events.clear();
            self.frames.clear();
            self.root_seq = 0;
        }
    }

    fn now_ns(&self) -> u64 {
        match self.epoch {
            Some(epoch) => epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Allocate the next child ordinal in the innermost open frame
    /// (or the thread's root frame).
    fn alloc_seq(&mut self) -> (u64, u64) {
        if let Some(frame) = self.frames.last_mut() {
            let seq = frame.next_seq;
            frame.next_seq += 1;
            (frame.span_id, seq)
        } else {
            let seq = self.root_seq;
            self.root_seq += 1;
            (0, seq)
        }
    }
}

impl Drop for LocalState {
    fn drop(&mut self) {
        if self.events.is_empty() {
            return;
        }
        if let Some(shared) = SHARED.get() {
            if shared.session.load(Ordering::Acquire) == self.session {
                lock(&shared.spilled).append(&mut self.events);
            }
        }
    }
}

/// Hand this thread's buffered events to the shared collector. Worker
/// threads must call this before they are joined: TLS destructors are
/// NOT guaranteed to have run by the time `std::thread::scope` returns,
/// so the drop-spill alone can race `finish()`. `fbox-par` workers call
/// this at the end of their run loop; the drop-spill remains as a
/// backstop for ad-hoc threads.
pub fn flush_thread() {
    let Some(shared) = SHARED.get() else { return };
    let _ = LOCAL.try_with(|cell| {
        let mut local = cell.borrow_mut();
        if !local.events.is_empty() && shared.session.load(Ordering::Acquire) == local.session {
            lock(&shared.spilled).append(&mut local.events);
        }
    });
}

thread_local! {
    static LOCAL: RefCell<LocalState> = const { RefCell::new(LocalState::new()) };
}

/// Run `f` against this thread's buffer iff tracing is live. Returns
/// `None` (and runs nothing) when the tracer is off — the common case.
fn with_local<R>(f: impl FnOnce(&mut LocalState) -> R) -> Option<R> {
    let shared = SHARED.get()?;
    if !shared.enabled.load(Ordering::Acquire) {
        return None;
    }
    LOCAL
        .try_with(|cell| {
            let mut local = cell.borrow_mut();
            local.sync(shared);
            f(&mut local)
        })
        .ok()
}

/// True while a tracing session is live. One acquire load; safe to call
/// on the hottest path.
pub fn enabled() -> bool {
    SHARED.get().is_some_and(|s| s.enabled.load(Ordering::Acquire))
}

/// Begin a tracing session, discarding any buffered events from a
/// previous one. Call from the coordinating thread before the pipeline
/// runs; pair with [`finish`].
pub fn start(clock: Clock) {
    let shared = SHARED.get_or_init(Shared::new);
    shared.enabled.store(false, Ordering::SeqCst);
    lock(&shared.spilled).clear();
    let byte = match clock {
        Clock::Logical => CLOCK_LOGICAL,
        Clock::Wall => CLOCK_WALL,
    };
    shared.clock.store(byte, Ordering::SeqCst);
    *lock(&shared.epoch) = match clock {
        Clock::Logical => None,
        Clock::Wall => Some(Instant::now()),
    };
    shared.next_thread_id.store(0, Ordering::SeqCst);
    shared.session.fetch_add(1, Ordering::Release);
    shared.enabled.store(true, Ordering::SeqCst);
}

/// End the session and drain every buffer into a [`crate::Trace`].
/// Worker buffers arrive via the spill-on-exit path; the caller's own
/// buffer is drained directly. Logical sessions are canonicalized here
/// (tick timestamps, thread id 0); wall sessions get a stable
/// `(ts, thread)` sort.
pub fn finish() -> crate::Trace {
    let Some(shared) = SHARED.get() else {
        return crate::Trace { clock: Clock::Logical, events: Vec::new() };
    };
    shared.enabled.store(false, Ordering::SeqCst);
    let clock = match shared.clock.load(Ordering::SeqCst) {
        CLOCK_WALL => Clock::Wall,
        _ => Clock::Logical,
    };
    let mut events = std::mem::take(&mut *lock(&shared.spilled));
    let session = shared.session.load(Ordering::Acquire);
    let _ = LOCAL.try_with(|cell| {
        let mut local = cell.borrow_mut();
        if local.session == session {
            events.append(&mut local.events);
            local.frames.clear();
        }
    });
    crate::Trace::assemble(clock, events)
}

/// RAII guard closing a span on drop. Obtained from [`span`] /
/// [`span_args`] / [`Fork::branch`]; inert when tracing is off.
pub struct SpanGuard {
    on: bool,
    span_id: u64,
    name: &'static str,
}

impl SpanGuard {
    const OFF: SpanGuard = SpanGuard { on: false, span_id: 0, name: "" };
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.on {
            return;
        }
        let (span_id, name) = (self.span_id, self.name);
        let _ = with_local(|local| {
            let ts_ns = local.now_ns();
            local.events.push(Event {
                phase: Phase::End,
                name,
                trace_id: TRACE_ID,
                span_id,
                parent_id: 0,
                thread_id: local.thread_id,
                seq: 0,
                ts_ns,
                args: Vec::new(),
            });
            // Pop by id, never blindly: a session restart may have
            // cleared the stack under a still-live guard.
            if let Some(pos) = local.frames.iter().rposition(|f| f.span_id == span_id) {
                local.frames.truncate(pos);
            }
        });
    }
}

fn open_span(name: &'static str, args: Vec<(&'static str, TraceValue)>) -> SpanGuard {
    with_local(|local| {
        let (parent_id, seq) = local.alloc_seq();
        let span_id = derive_span_id(parent_id, seq);
        let ts_ns = local.now_ns();
        local.events.push(Event {
            phase: Phase::Begin,
            name,
            trace_id: TRACE_ID,
            span_id,
            parent_id,
            thread_id: local.thread_id,
            seq,
            ts_ns,
            args,
        });
        local.frames.push(Frame { span_id, next_seq: 0 });
        SpanGuard { on: true, span_id, name }
    })
    .unwrap_or(SpanGuard::OFF)
}

/// Open a span; it closes when the returned guard drops.
#[must_use = "the span closes when this guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::OFF;
    }
    open_span(name, Vec::new())
}

/// Open a span with key-value args; `fill` runs only when tracing is
/// enabled.
#[must_use = "the span closes when this guard drops"]
pub fn span_args(name: &'static str, fill: impl FnOnce(&mut Args)) -> SpanGuard {
    if !enabled() {
        return SpanGuard::OFF;
    }
    let mut args = Args::default();
    fill(&mut args);
    open_span(name, args.take())
}

/// Record an instant event attached to the innermost open span.
pub fn instant(name: &'static str) {
    instant_args(name, |_| {});
}

/// Record an instant event with key-value args; `fill` runs only when
/// tracing is enabled.
pub fn instant_args(name: &'static str, fill: impl FnOnce(&mut Args)) {
    if !enabled() {
        return;
    }
    let mut args = Args::default();
    fill(&mut args);
    let kv = args.take();
    let _ = with_local(|local| {
        let (parent_id, seq) = local.alloc_seq();
        let ts_ns = local.now_ns();
        local.events.push(Event {
            phase: Phase::Instant,
            name,
            trace_id: TRACE_ID,
            span_id: 0,
            parent_id,
            thread_id: local.thread_id,
            seq,
            ts_ns,
            args: kv,
        });
    });
}

/// A captured span context carried across an `fbox-par` fan-out.
///
/// `capture(n)` reserves `n` child ordinals in the caller's innermost
/// span *before* the fan-out; each worker then calls `branch(slot)` with
/// its item index to open a `par.task` span that parents to the
/// caller's span at ordinal `base + slot`. Because slots are positional
/// — not claimed in scheduling order — the recorded tree is identical
/// whether the branches run inline on the caller or on worker threads.
#[derive(Debug, Clone, Copy)]
pub struct Fork {
    on: bool,
    parent_id: u64,
    base_seq: u64,
}

impl Fork {
    /// An inert fork (tracing off): `branch` returns inert guards.
    #[must_use]
    pub const fn off() -> Fork {
        Fork { on: false, parent_id: 0, base_seq: 0 }
    }

    /// Capture the caller's span context, reserving `n` branch slots.
    #[must_use]
    pub fn capture(n: usize) -> Fork {
        with_local(|local| {
            let (parent_id, base_seq) = if let Some(frame) = local.frames.last_mut() {
                let base = frame.next_seq;
                frame.next_seq += n as u64;
                (frame.span_id, base)
            } else {
                let base = local.root_seq;
                local.root_seq += n as u64;
                (0, base)
            };
            Fork { on: true, parent_id, base_seq }
        })
        .unwrap_or(Fork::off())
    }

    /// Enter branch `slot` (the item/chunk index) on the current thread.
    /// The returned guard closes the branch span on drop.
    #[must_use = "the branch span closes when this guard drops"]
    pub fn branch(&self, slot: usize) -> SpanGuard {
        if !self.on {
            return SpanGuard::OFF;
        }
        with_local(|local| {
            let seq = self.base_seq + slot as u64;
            let span_id = derive_span_id(self.parent_id, seq);
            let ts_ns = local.now_ns();
            local.events.push(Event {
                phase: Phase::Begin,
                name: "par.task",
                trace_id: TRACE_ID,
                span_id,
                parent_id: self.parent_id,
                thread_id: local.thread_id,
                seq,
                ts_ns,
                args: vec![("slot", TraceValue::U64(slot as u64))],
            });
            local.frames.push(Frame { span_id, next_seq: 0 });
            SpanGuard { on: true, span_id, name: "par.task" }
        })
        .unwrap_or(SpanGuard::OFF)
    }
}
