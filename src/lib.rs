//! # fbox — fairness in online jobs
//!
//! Umbrella crate re-exporting the full F-Box stack, the reproduction of
//! *“Fairness in Online Jobs: A Case Study on TaskRabbit and Google”*
//! (EDBT 2020):
//!
//! - [`core`]: the fairness framework (measures, unfairness cube,
//!   Fagin-style top-k, comparisons);
//! - [`marketplace`]: TaskRabbit-style marketplace simulator;
//! - [`search`]: Google-job-search-style personalized search simulator;
//! - [`crowd`]: AMT-style demographic labeling;
//! - [`store`]: crash-consistent incremental cube store (segment log,
//!   epoch snapshots, binary cube snapshots);
//! - [`repro`]: the experiment harness regenerating the paper's tables
//!   and figures.
//!
//! Start with the `quickstart` example, or
//! [`FBox`](fbox_core::FBox) for the core API.

pub use fbox_core as core;
pub use fbox_crowd as crowd;
pub use fbox_marketplace as marketplace;
pub use fbox_par as par;
pub use fbox_repro as repro;
pub use fbox_resilience as resilience;
pub use fbox_search as search;
pub use fbox_store as store;
pub use fbox_trace as trace;

pub use fbox_core::{Dimension, FBox, MarketMeasure, Schema, SearchMeasure, Universe};
