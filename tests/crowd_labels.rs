//! Cross-crate pipeline: AMT-style labels flow from `fbox-crowd` through
//! the marketplace crawler into the unfairness cube, exactly as profile-
//! picture labeling did in the paper (§5.1.1).

use fbox::core::algo::{RankOrder, Restriction};
use fbox::crowd::{label_population, Labeler};
use fbox::marketplace::{
    crawl, BiasProfile, Ethnicity, Gender, Marketplace, Population, ScoringModel,
};
use fbox::{FBox, MarketMeasure};

fn biased_marketplace(seed: u64) -> Marketplace {
    let bias = BiasProfile::neutral()
        .with_penalty(Gender::Female, Ethnicity::Asian, 0.35)
        .with_penalty(Gender::Female, Ethnicity::Black, 0.15);
    Marketplace::new(Population::paper(seed), ScoringModel::default(), bias, seed)
}

#[test]
fn oracle_labels_match_ground_truth_measurements() {
    let m = biased_marketplace(11);
    let labelers: Vec<Labeler> = (0..3).map(Labeler::oracle).collect();
    let (labels, stats) = label_population(m.population(), &labelers, 5);
    assert_eq!(stats.exact_accuracy, 1.0);

    let (u1, obs1, _) = crawl(&m);
    let m_labeled = biased_marketplace(11).with_observed_labels(labels);
    let (_, obs2, _) = crawl(&m_labeled);

    let fb1 = FBox::from_market(u1.clone(), &obs1, MarketMeasure::emd());
    let fb2 = FBox::from_market(u1, &obs2, MarketMeasure::emd());
    for g in fb1.universe().group_ids() {
        for q in fb1.universe().query_ids() {
            for l in fb1.universe().location_ids() {
                assert_eq!(fb1.unfairness(g, q, l), fb2.unfairness(g, q, l));
            }
        }
    }
}

#[test]
fn noisy_labels_blur_but_do_not_erase_the_signal() {
    let m = biased_marketplace(13);
    let labelers: Vec<Labeler> = (0..5).map(|i| Labeler::with_accuracy(i, 0.85)).collect();
    let (labels, stats) = label_population(m.population(), &labelers, 7);
    assert!(stats.exact_accuracy > 0.8 && stats.exact_accuracy < 1.0);

    let (universe, truth_obs, _) = crawl(&m);
    let (_, label_obs, _) = crawl(&biased_marketplace(13).with_observed_labels(labels));

    let truth = FBox::from_market(universe.clone(), &truth_obs, MarketMeasure::emd());
    let labeled = FBox::from_market(universe, &label_obs, MarketMeasure::emd());

    let truth_top = truth.top_k_groups(2, RankOrder::MostUnfair, &Restriction::none());
    let labeled_top = labeled.top_k_groups(2, RankOrder::MostUnfair, &Restriction::none());
    // The most-discriminated group (Asian Females) survives 85 %-accurate
    // labeling…
    assert_eq!(truth_top[0].0, "Female Asian");
    assert_eq!(labeled_top[0].0, "Female Asian");
    // …but mislabeling mixes unbiased workers into the group, diluting the
    // measured unfairness.
    assert!(
        labeled_top[0].1 < truth_top[0].1,
        "label noise should dilute: labeled {} vs truth {}",
        labeled_top[0].1,
        truth_top[0].1
    );
}

#[test]
fn majority_vote_beats_individual_accuracy() {
    // Three-way majority over 75 %-accurate voters is ≈ 84 % per
    // attribute — the panel's measured accuracy must clear the individual
    // rate.
    let m = biased_marketplace(17);
    let panel: Vec<Labeler> = (0..5).map(|i| Labeler::with_accuracy(i, 0.75)).collect();
    let (_, stats) = label_population(m.population(), &panel, 9);
    assert!(
        stats.gender_accuracy > 0.78,
        "majority gender accuracy {} should beat the 0.75 individual rate",
        stats.gender_accuracy
    );
    assert!(
        stats.ethnicity_accuracy > 0.78,
        "majority ethnicity accuracy {} should beat the 0.75 individual rate",
        stats.ethnicity_accuracy
    );
}
