//! Crash-consistency contracts of the durable cube store (`fbox-store`).
//!
//! The load-bearing guarantee extends the chaos contracts one layer down
//! the stack: a crawl or study whose journal lives in a segment log may
//! be killed at *any* record boundary (process interrupt) and suffer
//! *any* planned storage fault (torn write, bit flip, short read), and
//! recovery must still converge to a cube *bit-identical* to an
//! uninterrupted, fault-free build — at any `FBOX_THREADS`.
//!
//! Two mechanisms make this testable deterministically: storage faults
//! are a pure function of `(seed, log generation, record index)`, and the
//! run result always folds from the whole journal in grid/recruitment
//! order, so *which* generation executed a cell is unobservable in the
//! output.

use fbox::core::UnfairnessCube;
use fbox::marketplace::{
    crawl_resilient, BiasProfile, CrawlJournal, Marketplace, Population, ScoringModel,
};
use fbox::par::with_threads;
use fbox::resilience::{Resilience, StoragePlan, StorageProfile};
use fbox::search::extension::ExtensionRunner;
use fbox::search::noise::NoiseModel;
use fbox::search::personalize::PersonalizationProfile;
use fbox::search::study::{run_study_journaled, run_study_resilient, StudyDesign, StudyJournal};
use fbox::search::SearchEngine;
use fbox::store::{
    crawl_durable_with_plan, study_durable, study_durable_with_plan, CubeSnapshot, Durable,
};
use fbox::{FBox, MarketMeasure, SearchMeasure};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn assert_cubes_bit_identical(a: &UnfairnessCube, b: &UnfairnessCube, context: &str) {
    assert_eq!(
        (a.n_groups(), a.n_queries(), a.n_locations()),
        (b.n_groups(), b.n_queries(), b.n_locations()),
        "{context}: dims"
    );
    let bits =
        |c: &UnfairnessCube| c.raw_data().iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>();
    assert_eq!(bits(a), bits(b), "{context}: cube cells diverged");
}

fn marketplace() -> Marketplace {
    Marketplace::new(Population::paper(5), ScoringModel::default(), BiasProfile::neutral(), 5)
}

fn log_path(name: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("fbox-store-recovery-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{name}-{case}-{}.fbxlog", std::process::id()));
    scrub(&path);
    path
}

/// Removes a log and its generation sidecar so every case starts fresh.
fn scrub(path: &Path) {
    let _ = std::fs::remove_file(path);
    let mut gen = path.as_os_str().to_os_string();
    gen.push(".gen");
    let _ = std::fs::remove_file(PathBuf::from(gen));
}

/// A storage profile lossy enough to exercise every fault kind, gentle
/// enough on torn writes that recovery converges in a handful of
/// generations even over the full 5,376-cell TaskRabbit grid.
fn crawl_storage_profile() -> StorageProfile {
    StorageProfile { torn_write_pm: 2, bit_flip_pm: 3, short_read_pm: 10 }
}

/// Drives durable runs until durable state is complete: a final open
/// replays every cell, has nothing left to execute, and suffers no crash.
/// Returns the converged run and how many generations it took.
fn recover_crawl_to_convergence(
    m: &Marketplace,
    resilience: &Resilience,
    path: &Path,
    plan: StoragePlan,
    threads: usize,
) -> (Durable<fbox::marketplace::CrawlRun>, u64) {
    for _ in 0..64 {
        let durable = with_threads(threads, || {
            crawl_durable_with_plan(m, resilience, path, plan).expect("durable crawl io")
        });
        if durable.run.complete && !durable.crashed && durable.appended == 0 {
            let generations = durable.replay.generation;
            return (durable, generations);
        }
    }
    panic!("durable crawl failed to converge within 64 generations");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Crash at a random record boundary, under a random storage-fault
    /// seed, at a random thread count: the recovered cube is bit-equal to
    /// an uninterrupted, fault-free build.
    #[test]
    fn crashed_crawl_recovers_bit_identically(
        storage_seed in 0u64..u64::MAX,
        interrupt_after in 1usize..5000,
        threads in proptest::sample::select(vec![1usize, 2, 8]),
    ) {
        let m = marketplace();
        let resilience = Resilience::none();
        let reference = crawl_resilient(&m, &resilience, &mut CrawlJournal::new());
        prop_assert!(reference.complete);
        let ref_box = FBox::from_market(
            reference.universe.clone(),
            &reference.observations,
            MarketMeasure::exposure(),
        );

        let plan = StoragePlan::new(storage_seed, crawl_storage_profile());
        let path = log_path("crawl", storage_seed ^ interrupt_after as u64);

        // The crash: interrupt mid-run at a record boundary (plus any
        // torn write the plan deals out before that).
        let mut interrupted = resilience;
        interrupted.interrupt_after = Some(interrupt_after);
        let partial = with_threads(threads, || {
            crawl_durable_with_plan(&m, &interrupted, &path, plan).expect("durable crawl io")
        });
        prop_assert!(!partial.run.complete, "interrupted run must report incomplete");

        let (converged, generations) =
            recover_crawl_to_convergence(&m, &resilience, &path, plan, threads);
        prop_assert!(generations >= 2, "recovery must span generations, got {generations}");

        let context = format!(
            "storage_seed={storage_seed} interrupt_after={interrupt_after} threads={threads}"
        );
        assert_eq!(converged.run.stats, reference.stats, "{context}: stats");
        let fb = FBox::from_market(
            converged.run.universe.clone(),
            &converged.run.observations,
            MarketMeasure::exposure(),
        );
        assert_cubes_bit_identical(ref_box.cube(), fb.cube(), &context);
        scrub(&path);
    }

    /// The same contract for the study pipeline, under the stock `mild`
    /// storage profile (the participant log is small enough that even
    /// 20‰ torn writes converge quickly).
    #[test]
    fn crashed_study_recovers_bit_identically(
        storage_seed in 0u64..u64::MAX,
        interrupt_after in 1usize..120,
        threads in proptest::sample::select(vec![1usize, 2, 8]),
    ) {
        let design = StudyDesign { participants_per_group: 2, seed: 0xF0CA };
        let engine =
            SearchEngine::new(PersonalizationProfile::uniform(0.2), NoiseModel::default(), 3);
        let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
        let resilience = Resilience::none();

        let (universe, observations, ref_stats) =
            run_study_resilient(&design, &engine, &runner, &resilience);
        let ref_box = FBox::from_search(universe, &observations, SearchMeasure::kendall());

        let plan = StoragePlan::new(storage_seed, StorageProfile::mild());
        let path = log_path("study", storage_seed ^ interrupt_after as u64);

        let mut interrupted = resilience;
        interrupted.interrupt_after = Some(interrupt_after);
        let partial = with_threads(threads, || {
            study_durable_with_plan(&design, &engine, &runner, &interrupted, &path, plan)
                .expect("durable study io")
        });
        prop_assert!(!partial.run.complete, "interrupted run must report incomplete");

        let mut converged = None;
        for _ in 0..64 {
            let durable = with_threads(threads, || {
                study_durable_with_plan(&design, &engine, &runner, &resilience, &path, plan)
                    .expect("durable study io")
            });
            if durable.run.complete && !durable.crashed && durable.appended == 0 {
                converged = Some(durable);
                break;
            }
        }
        let converged = converged.expect("durable study failed to converge within 64 generations");

        let context =
            format!("storage_seed={storage_seed} interrupt_after={interrupt_after} threads={threads}");
        assert_eq!(converged.run.stats, ref_stats, "{context}: stats");
        let fb = FBox::from_search(
            converged.run.universe.clone(),
            &converged.run.observations,
            SearchMeasure::kendall(),
        );
        assert_cubes_bit_identical(ref_box.cube(), fb.cube(), &context);
        scrub(&path);
    }
}

/// The journaled study runner honors the write-ahead journal the same way
/// the crawl does: an interrupted run resumed from its journal lands on
/// the same bytes as one that never stopped.
#[test]
fn interrupted_study_resumes_byte_identically() {
    let design = StudyDesign { participants_per_group: 2, seed: 0xF0CA };
    let engine = SearchEngine::new(PersonalizationProfile::uniform(0.2), NoiseModel::default(), 3);
    let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
    let resilience = Resilience::none();
    let reference = run_study_journaled(
        &design,
        &engine,
        &runner,
        &resilience,
        &mut StudyJournal::new(),
        &mut |_, _| {},
    );
    assert!(reference.complete);

    for threads in [1usize, 4] {
        let mut journal = StudyJournal::new();
        let mut interrupted = resilience;
        interrupted.interrupt_after = Some(40);
        let partial = with_threads(threads, || {
            run_study_journaled(
                &design,
                &engine,
                &runner,
                &interrupted,
                &mut journal,
                &mut |_, _| {},
            )
        });
        assert!(!partial.complete, "threads={threads}: interrupted run must report incomplete");

        let resumed = with_threads(threads, || {
            run_study_journaled(
                &design,
                &engine,
                &runner,
                &resilience,
                &mut journal,
                &mut |_, _| {},
            )
        });
        assert!(resumed.complete, "threads={threads}: resumed run must complete");
        assert_eq!(resumed.stats, reference.stats, "threads={threads}: stats");
        for ((q, l), lists) in reference.observations.cells() {
            assert_eq!(
                resumed.observations.get(q, l),
                Some(lists),
                "threads={threads}: cell ({q:?}, {l:?}) diverged"
            );
        }
    }
}

/// The CI crash-recovery matrix drives this test from the outside: the
/// storage-fault plan comes from `FBOX_FAULTS=<seed>:<profile>` (via
/// [`study_durable`]'s env-backed default) and the worker count from the
/// ambient `FBOX_THREADS` — no pinning here. Whatever that environment
/// deals out, an interrupted study must recover to the fault-free
/// reference bit-for-bit.
#[test]
fn env_driven_study_recovery_matches_reference() {
    let design = StudyDesign { participants_per_group: 2, seed: 0xF0CA };
    let engine = SearchEngine::new(PersonalizationProfile::uniform(0.2), NoiseModel::default(), 3);
    let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
    let resilience = Resilience::none();
    let (universe, observations, ref_stats) =
        run_study_resilient(&design, &engine, &runner, &resilience);
    let ref_box = FBox::from_search(universe, &observations, SearchMeasure::kendall());

    let path = log_path("env-study", 0);
    let mut interrupted = resilience;
    interrupted.interrupt_after = Some(60);
    let partial =
        study_durable(&design, &engine, &runner, &interrupted, &path).expect("durable study io");
    assert!(!partial.run.complete, "interrupted run must report incomplete");

    let mut converged = None;
    for _ in 0..64 {
        let durable =
            study_durable(&design, &engine, &runner, &resilience, &path).expect("durable study io");
        if durable.run.complete && !durable.crashed && durable.appended == 0 {
            converged = Some(durable);
            break;
        }
    }
    let converged =
        converged.expect("env-driven recovery failed to converge within 64 generations");

    assert_eq!(converged.run.stats, ref_stats, "env-driven recovery: stats");
    let fb = FBox::from_search(
        converged.run.universe.clone(),
        &converged.run.observations,
        SearchMeasure::kendall(),
    );
    assert_cubes_bit_identical(ref_box.cube(), fb.cube(), "env-driven recovery");
    scrub(&path);
}

/// Saving a built cube and loading it back crosses the snapshot format
/// without losing a bit, and the loaded universe mints identical ids.
#[test]
fn cube_snapshot_round_trips_a_real_crawl() {
    let m = marketplace();
    let run = crawl_resilient(&m, &Resilience::none(), &mut CrawlJournal::new());
    let fb = FBox::from_market(run.universe.clone(), &run.observations, MarketMeasure::emd());

    let mut snap = CubeSnapshot::new(run.universe.clone());
    snap.insert_cube("market:emd", fb.cube().clone());
    let path = log_path("snapshot", 0).with_extension("fbxs");
    snap.save(&path).expect("save snapshot");

    let loaded = CubeSnapshot::load(&path).expect("load snapshot");
    assert_cubes_bit_identical(fb.cube(), loaded.cube("market:emd").expect("cube"), "snapshot");
    for q in run.universe.query_ids() {
        assert_eq!(loaded.universe().query(q), run.universe.query(q));
    }
    for l in run.universe.location_ids() {
        assert_eq!(loaded.universe().location(l), run.universe.location(l));
    }
    for g in run.universe.group_ids() {
        assert_eq!(loaded.universe().group(g), run.universe.group(g));
    }
    let _ = std::fs::remove_file(&path);
}
