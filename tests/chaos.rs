//! Chaos contracts of the resilient ingestion pipeline (`fbox-resilience`).
//!
//! The load-bearing guarantee extends the one in `parallel_determinism`:
//! a *fault-injected* crawl or study — retries, rate-limit backoff,
//! truncated pages, quarantined pages, tripped breakers and all — must
//! still produce observations and cubes *byte-identical* at any
//! `FBOX_THREADS`, and an interrupted crawl resumed from its journal must
//! land on the same bytes as one that never stopped.
//!
//! The CI chaos job drives this binary under `FBOX_FAULTS=<seed>:<profile>`
//! at several thread counts; when the flag is set the tests exercise that
//! exact plan instead of the built-in seeds, so any seed can be replayed
//! locally with e.g. `FBOX_FAULTS=42:heavy cargo test --test chaos`.

use fbox::core::algo::{naive_top_k, nra_top_k, top_k, RankOrder, Restriction};
use fbox::core::model::{GroupId, LocationId, QueryId};
use fbox::core::{IndexSet, UnfairnessCube};
use fbox::marketplace::{
    crawl_resilient, BiasProfile, CellOutcome, CrawlJournal, CrawlRun, Marketplace, Population,
    ScoringModel,
};
use fbox::par::with_threads;
use fbox::resilience::{FaultPlan, FaultProfile, Resilience, FAULTS_ENV};
use fbox::search::extension::ExtensionRunner;
use fbox::search::noise::NoiseModel;
use fbox::search::personalize::PersonalizationProfile;
use fbox::search::study::{run_study_resilient, StudyDesign};
use fbox::search::SearchEngine;
use fbox::{Dimension, FBox, MarketMeasure, SearchMeasure};

/// The fault plans under test: the `FBOX_FAULTS` spec when the chaos job
/// sets one, otherwise two built-in seeds spanning a recoverable and a
/// lossy regime.
fn chaos_plans() -> Vec<(String, Resilience)> {
    if std::env::var(FAULTS_ENV).is_ok() {
        return vec![(format!("${FAULTS_ENV}"), Resilience::from_env())];
    }
    vec![
        ("mild/11".to_string(), Resilience::with_plan(FaultPlan::new(11, FaultProfile::mild()))),
        (
            "heavy/0xC0FFEE".to_string(),
            Resilience::with_plan(FaultPlan::new(0xC0FFEE, FaultProfile::heavy())),
        ),
    ]
}

fn marketplace() -> Marketplace {
    Marketplace::new(Population::paper(5), ScoringModel::default(), BiasProfile::neutral(), 5)
}

/// Cell-for-cell bit equality — not an epsilon: the degraded pipeline
/// must apply the exact same float operations in the exact same order
/// regardless of schedule.
fn assert_cubes_bit_identical(a: &UnfairnessCube, b: &UnfairnessCube, context: &str) {
    assert_eq!(a.n_groups(), b.n_groups(), "{context}: group dim");
    assert_eq!(a.n_queries(), b.n_queries(), "{context}: query dim");
    assert_eq!(a.n_locations(), b.n_locations(), "{context}: location dim");
    for g in 0..a.n_groups() as u32 {
        for q in 0..a.n_queries() as u32 {
            for l in 0..a.n_locations() as u32 {
                let (g, q, l) = (GroupId(g), QueryId(q), LocationId(l));
                let (x, y) = (a.get(g, q, l), b.get(g, q, l));
                match (x, y) {
                    (Some(x), Some(y)) => assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{context}: d⟨{g:?},{q:?},{l:?}⟩ differs: {x} vs {y}"
                    ),
                    (None, None) => {}
                    _ => {
                        panic!("{context}: presence differs at ⟨{g:?},{q:?},{l:?}⟩: {x:?} vs {y:?}")
                    }
                }
            }
        }
    }
}

/// Rank positions may swap between algorithms on exact ties; the ranked
/// *values* may not differ.
fn assert_same_values(a: &[(u32, f64)], b: &[(u32, f64)], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: lengths differ: {a:?} vs {b:?}");
    for (x, y) in a.iter().zip(b) {
        assert!((x.1 - y.1).abs() < 1e-9, "{context}: {a:?} vs {b:?}");
    }
}

fn assert_runs_identical(run: &CrawlRun, reference: &CrawlRun, context: &str) {
    assert_eq!(run.stats, reference.stats, "{context}: stats");
    assert_eq!(
        run.observations.n_cells(),
        reference.observations.n_cells(),
        "{context}: cell count"
    );
    for ((q, l), ranking) in reference.observations.cells() {
        assert_eq!(
            run.observations.get(q, l),
            Some(ranking),
            "{context}: cell ({q:?}, {l:?}) diverged"
        );
    }
}

#[test]
fn degraded_crawl_is_bit_identical_across_thread_counts() {
    for (label, resilience) in chaos_plans() {
        let m = marketplace();
        let reference =
            with_threads(1, || crawl_resilient(&m, &resilience, &mut CrawlJournal::new()));
        assert!(reference.complete, "{label}: uninterrupted crawl must complete");
        let ref_box = FBox::from_market(
            reference.universe.clone(),
            &reference.observations,
            MarketMeasure::emd(),
        );
        for threads in [2usize, 4, 8] {
            let run = with_threads(threads, || {
                crawl_resilient(&m, &resilience, &mut CrawlJournal::new())
            });
            let context = format!("{label} FBOX_THREADS={threads}");
            assert_runs_identical(&run, &reference, &context);
            let fb =
                FBox::from_market(run.universe.clone(), &run.observations, MarketMeasure::emd());
            assert_cubes_bit_identical(ref_box.cube(), fb.cube(), &context);
        }
    }
}

#[test]
fn degraded_study_is_bit_identical_across_thread_counts() {
    let design = StudyDesign { participants_per_group: 2, seed: 0xF0CA };
    let engine = SearchEngine::new(PersonalizationProfile::uniform(0.2), NoiseModel::default(), 3);
    let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
    for (label, resilience) in chaos_plans() {
        let (universe, reference, ref_stats) =
            with_threads(1, || run_study_resilient(&design, &engine, &runner, &resilience));
        let ref_box = FBox::from_search(universe.clone(), &reference, SearchMeasure::kendall());
        for threads in [2usize, 4, 8] {
            let (u, obs, stats) = with_threads(threads, || {
                run_study_resilient(&design, &engine, &runner, &resilience)
            });
            let context = format!("{label} FBOX_THREADS={threads}");
            assert_eq!(stats, ref_stats, "{context}: stats");
            assert_eq!(obs.n_cells(), reference.n_cells(), "{context}: cell count");
            for ((q, l), lists) in reference.cells() {
                // Per-cell list *order* matters too: it is recruitment
                // order, independent of scheduling and of which lists the
                // fault plan dropped.
                assert_eq!(obs.get(q, l), Some(lists), "{context}: cell ({q:?}, {l:?})");
            }
            let fb = FBox::from_search(u, &obs, SearchMeasure::kendall());
            assert_cubes_bit_identical(ref_box.cube(), fb.cube(), &context);
        }
    }
}

#[test]
fn interrupted_crawl_resumes_byte_identically_at_any_thread_count() {
    for (label, mut resilience) in chaos_plans() {
        resilience.interrupt_after = None;
        let m = marketplace();
        let reference = crawl_resilient(&m, &resilience, &mut CrawlJournal::new());
        let ref_box = FBox::from_market(
            reference.universe.clone(),
            &reference.observations,
            MarketMeasure::emd(),
        );
        for interrupt_after in [37usize, 2500] {
            for threads in [1usize, 4] {
                let mut journal = CrawlJournal::new();
                let mut interrupted = resilience;
                interrupted.interrupt_after = Some(interrupt_after);
                let partial =
                    with_threads(threads, || crawl_resilient(&m, &interrupted, &mut journal));
                let context =
                    format!("{label} interrupt_after={interrupt_after} FBOX_THREADS={threads}");
                assert!(!partial.complete, "{context}: interrupted run must report incomplete");
                assert!(
                    partial.observations.n_cells() < reference.observations.n_cells(),
                    "{context}: interrupted run should hold fewer cells"
                );
                let resumed =
                    with_threads(threads, || crawl_resilient(&m, &resilience, &mut journal));
                assert!(resumed.complete, "{context}: resumed run must complete");
                assert_runs_identical(&resumed, &reference, &context);
                let fb = FBox::from_market(
                    resumed.universe.clone(),
                    &resumed.observations,
                    MarketMeasure::emd(),
                );
                assert_cubes_bit_identical(ref_box.cube(), fb.cube(), &context);
            }
        }
    }
}

#[test]
fn quarantine_is_counted_and_topk_agrees_on_the_degraded_cube() {
    // Corruption-only profile: every fault is a mangled rank sequence, so
    // every degraded cell must flow through the quarantine path (and, via
    // breaker accounting, possibly the skip path) — never a panic.
    let profile =
        FaultProfile { transient_pm: 0, rate_limited_pm: 0, truncated_pm: 0, corrupted_pm: 150 };
    let resilience = Resilience::with_plan(FaultPlan::new(7, profile));
    let m = marketplace();
    let mut journal = CrawlJournal::new();
    let run = crawl_resilient(&m, &resilience, &mut journal);
    assert!(run.complete);
    assert!(run.stats.n_quarantined > 0, "corruption profile must quarantine pages");
    assert_eq!(
        run.stats.n_queries,
        run.observations.n_cells(),
        "only delivered pages may become observations"
    );
    assert!(
        run.stats.coverage > 0.0 && run.stats.coverage < 1.0,
        "coverage must reflect the loss: {}",
        run.stats.coverage
    );
    let journaled_quarantines = journal
        .iter()
        .filter(|(_, record)| matches!(record.outcome, CellOutcome::Quarantined(_)))
        .count();
    assert_eq!(journaled_quarantines, run.stats.n_quarantined, "stats must mirror the journal");

    // The degraded cube is still fully queryable: TA, NRA, and the naive
    // scan agree on every dimension.
    let fb = FBox::from_market(run.universe.clone(), &run.observations, MarketMeasure::emd());
    assert!(!fb.cube().is_complete(), "quarantines must leave holes in the cube");
    let idx = IndexSet::build(fb.cube());
    let restrict = Restriction::none();
    for dim in [Dimension::Group, Dimension::Query, Dimension::Location] {
        for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
            let nv = naive_top_k(fb.cube(), dim, 5, order, &restrict);
            let ta = top_k(&idx, dim, 5, order, &restrict);
            let nra = nra_top_k(&idx, dim, 5, order, &restrict);
            assert_same_values(&ta.entries, &nv.entries, &format!("{dim:?} {order:?}: ta"));
            assert_same_values(&nra.entries, &nv.entries, &format!("{dim:?} {order:?}: nra"));
        }
    }
}
