//! Cross-crate framework tests: the threshold algorithm against the naive
//! scan on real (not synthetic) cubes, dimension-instance round trips,
//! and a custom-schema study driven through the public API only.

use fbox::core::algo::{compare, naive_top_k, top_k, Entity, RankOrder, Restriction};
use fbox::core::model::{Attribute, ValueId};
use fbox::core::observations::{MarketObservations, MarketRanking, RankedWorker};
use fbox::core::{Dimension, GroupId, LocationId, QueryId};
use fbox::repro::scenario;
use fbox::{FBox, MarketMeasure, Schema, Universe};

#[test]
fn ta_equals_naive_on_the_google_cube() {
    // The Google study yields a *complete* cube — the TA's home turf.
    let s = scenario::google();
    for fb in [&s.kendall, &s.jaccard] {
        assert!(fb.cube().is_complete());
        for dim in [Dimension::Group, Dimension::Query, Dimension::Location] {
            for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
                for k in [1, 3, 7] {
                    let ta = top_k(fb.indices(), dim, k, order, &Restriction::none());
                    let nv = naive_top_k(fb.cube(), dim, k, order, &Restriction::none());
                    let ta_vals: Vec<f64> = ta.entries.iter().map(|e| e.1).collect();
                    let nv_vals: Vec<f64> = nv.entries.iter().map(|e| e.1).collect();
                    assert_eq!(ta_vals.len(), nv_vals.len());
                    for (a, b) in ta_vals.iter().zip(&nv_vals) {
                        assert!((a - b).abs() < 1e-9, "{dim:?} {order:?} k={k}");
                    }
                }
            }
        }
    }
}

#[test]
fn ta_does_less_work_than_naive_when_the_dimension_is_large() {
    // The TA's advantage is sublinear scanning of the *returned*
    // dimension — the paper's motivation is arbitrarily many groups,
    // queries and locations (§4.2). Build a skewed 800-group cube: the
    // TA should stop after a few rounds, the naive scan must touch every
    // cell of every group.
    use fbox::core::UnfairnessCube;
    let (nq, nl) = (4u32, 4u32);
    let mut cube = UnfairnessCube::with_dims(800, nq as usize, nl as usize);
    for g in 0..800u32 {
        let v = if g < 5 { 0.9 - g as f64 * 0.01 } else { 0.3 * (g as f64 % 97.0) / 97.0 };
        for q in 0..nq {
            for l in 0..nl {
                cube.set(GroupId(g), QueryId(q), LocationId(l), v);
            }
        }
    }
    let indices = fbox::core::IndexSet::build(&cube);
    let ta = top_k(&indices, Dimension::Group, 5, RankOrder::MostUnfair, &Restriction::none());
    let nv = naive_top_k(&cube, Dimension::Group, 5, RankOrder::MostUnfair, &Restriction::none());
    let ta_vals: Vec<f64> = ta.entries.iter().map(|e| e.1).collect();
    let nv_vals: Vec<f64> = nv.entries.iter().map(|e| e.1).collect();
    assert_eq!(ta_vals, nv_vals);
    let ta_accesses = ta.stats.sorted_accesses + ta.stats.random_accesses;
    assert!(
        ta_accesses * 5 < nv.stats.random_accesses,
        "TA {ta_accesses} accesses vs naive {} — expected ≥5x saving",
        nv.stats.random_accesses
    );
}

#[test]
fn comparison_instances_cover_all_three_dimensions() {
    // Group-, query-, and location-comparison all answer on the real
    // TaskRabbit cube.
    let s = scenario::taskrabbit();
    let fb = &s.emd;
    let u = fb.universe();

    let g1 = u.group_id_by_text("ethnicity=Asian").unwrap();
    let g2 = u.group_id_by_text("ethnicity=White").unwrap();
    let by_location = compare(
        fb.indices(),
        Entity::Group(g1),
        Entity::Group(g2),
        Dimension::Location,
        None,
        &Restriction::none(),
    )
    .expect("data");
    assert!(by_location.overall1 > by_location.overall2, "Asians are treated less fairly overall");

    let q1 = u.query_id("Lawn Mowing").unwrap();
    let q2 = u.query_id("Grocery Delivery").unwrap();
    let by_group = compare(
        fb.indices(),
        Entity::Query(q1),
        Entity::Query(q2),
        Dimension::Group,
        None,
        &Restriction::none(),
    )
    .expect("data");
    assert!(!by_group.rows.is_empty());

    let l1 = u.location_id("Birmingham, UK").unwrap();
    let l2 = u.location_id("Chicago, IL").unwrap();
    let by_query = compare(
        fb.indices(),
        Entity::Location(l1),
        Entity::Location(l2),
        Dimension::Query,
        None,
        &Restriction::none(),
    )
    .expect("data");
    assert!(by_query.overall1 > by_query.overall2, "Birmingham is less fair than Chicago overall");
}

#[test]
fn restricted_questions_match_paper_section_4_examples() {
    // "Which 2 queries are Black Males most likely to get in the West
    // Coast?" — a group- and region-restricted query-fairness question.
    let s = scenario::taskrabbit();
    let fb = &s.emd;
    let u = fb.universe();
    let bm = u.group_id_by_text("gender=Male & ethnicity=Black").unwrap();
    let west: Vec<u32> = u.locations_in_region("West Coast").iter().map(|l| l.0).collect();
    assert!(!west.is_empty());
    let restrict = Restriction { groups: Some(vec![bm.0]), queries: None, locations: Some(west) };
    let fairest = fb.top_k_queries(2, RankOrder::LeastUnfair, &restrict);
    assert_eq!(fairest.len(), 2);
    assert!(fairest[0].1 <= fairest[1].1);
}

#[test]
fn custom_schema_study_via_public_api() {
    // Three protected attributes, 2×2×2 domains → 26 lattice groups.
    let schema = Schema::new(vec![
        Attribute::new("gender", ["M", "F"]),
        Attribute::new("age", ["young", "old"]),
        Attribute::new("disability", ["no", "yes"]),
    ]);
    let mut universe = Universe::with_all_groups(schema);
    assert_eq!(universe.n_groups(), 26);
    let q = universe.add_query("tutoring", None);
    let l = universe.add_location("Utrecht", None);

    // Old disabled workers at the bottom of the page.
    let workers: Vec<RankedWorker> = (0..12)
        .map(|i| RankedWorker {
            assignment: vec![
                ValueId((i % 2) as u16),
                ValueId(u16::from(i >= 8)),
                ValueId(u16::from(i >= 10)),
            ],
            rank: i + 1,
            score: None,
        })
        .collect();
    let mut obs = MarketObservations::new();
    obs.insert(q, l, MarketRanking::new(workers));
    let fb = FBox::from_market(universe, &obs, MarketMeasure::emd());

    let old = fb.universe().group_id_by_text("age=old").unwrap();
    let young = fb.universe().group_id_by_text("age=young").unwrap();
    let d_old = fb.unfairness(old, QueryId(0), LocationId(0)).unwrap();
    assert!(d_old > 0.3, "segregated ages must register, got {d_old}");
    // Symmetric two-value attribute → equal EMD values.
    let d_young = fb.unfairness(young, QueryId(0), LocationId(0)).unwrap();
    assert!((d_old - d_young).abs() < 1e-12);
    let _ = GroupId(0);
}
