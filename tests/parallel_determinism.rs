//! Determinism contracts of the parallel pipeline (`fbox-par`), plus
//! property tests over random cubes and restrictions.
//!
//! The load-bearing guarantee: every parallelized stage — marketplace
//! crawl, search study, cube construction, index build — produces output
//! *byte-identical* to its serial reference at any thread count. Speed
//! may vary with `FBOX_THREADS`; answers may not.

use fbox::core::algo::{naive_top_k, nra_top_k, top_k, RankOrder, Restriction};
use fbox::core::model::{GroupId, LocationId, QueryId};
use fbox::core::observations::{MarketObservations, SearchObservations};
use fbox::core::{IndexSet, UnfairnessCube};
use fbox::marketplace::{crawl, BiasProfile, Marketplace, Population, ScoringModel};
use fbox::par::with_threads;
use fbox::search::extension::ExtensionRunner;
use fbox::search::noise::NoiseModel;
use fbox::search::personalize::PersonalizationProfile;
use fbox::search::study::{run_study, StudyDesign};
use fbox::search::SearchEngine;
use fbox::{Dimension, FBox, MarketMeasure, SearchMeasure, Universe};
use proptest::prelude::*;

/// Asserts two cubes are equal cell-for-cell at the bit level — not
/// within an epsilon: the parallel build must apply the exact same float
/// operations in the exact same order as the serial one.
fn assert_cubes_bit_identical(a: &UnfairnessCube, b: &UnfairnessCube, context: &str) {
    assert_eq!(a.n_groups(), b.n_groups(), "{context}: group dim");
    assert_eq!(a.n_queries(), b.n_queries(), "{context}: query dim");
    assert_eq!(a.n_locations(), b.n_locations(), "{context}: location dim");
    for g in 0..a.n_groups() as u32 {
        for q in 0..a.n_queries() as u32 {
            for l in 0..a.n_locations() as u32 {
                let (g, q, l) = (GroupId(g), QueryId(q), LocationId(l));
                let (x, y) = (a.get(g, q, l), b.get(g, q, l));
                match (x, y) {
                    (Some(x), Some(y)) => assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{context}: d⟨{g:?},{q:?},{l:?}⟩ differs: {x} vs {y}"
                    ),
                    (None, None) => {}
                    _ => {
                        panic!("{context}: presence differs at ⟨{g:?},{q:?},{l:?}⟩: {x:?} vs {y:?}")
                    }
                }
            }
        }
    }
}

fn market_fixture() -> (Universe, MarketObservations) {
    let m =
        Marketplace::new(Population::paper(7), ScoringModel::default(), BiasProfile::neutral(), 10);
    let (universe, obs, _) = crawl(&m);
    (universe, obs)
}

fn search_fixture() -> (Universe, SearchObservations) {
    let design = StudyDesign { participants_per_group: 2, seed: 0xF0CA };
    let engine = SearchEngine::new(PersonalizationProfile::uniform(0.2), NoiseModel::none(), 3);
    let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
    let (universe, obs, _) = run_study(&design, &engine, &runner);
    (universe, obs)
}

#[test]
fn market_build_is_bit_identical_across_thread_counts() {
    let (universe, obs) = market_fixture();
    for measure in [MarketMeasure::emd(), MarketMeasure::exposure()] {
        let reference = FBox::from_market_serial(universe.clone(), &obs, measure);
        for threads in [1usize, 2, 8] {
            let parallel =
                with_threads(threads, || FBox::from_market(universe.clone(), &obs, measure));
            assert_cubes_bit_identical(
                reference.cube(),
                parallel.cube(),
                &format!("market {measure:?} FBOX_THREADS={threads}"),
            );
        }
    }
}

#[test]
fn search_build_is_bit_identical_across_thread_counts() {
    let (universe, obs) = search_fixture();
    for measure in [SearchMeasure::kendall(), SearchMeasure::JaccardDistance] {
        let reference = FBox::from_search_serial(universe.clone(), &obs, measure);
        for threads in [1usize, 2, 8] {
            let parallel =
                with_threads(threads, || FBox::from_search(universe.clone(), &obs, measure));
            assert_cubes_bit_identical(
                reference.cube(),
                parallel.cube(),
                &format!("search {measure:?} FBOX_THREADS={threads}"),
            );
        }
    }
}

#[test]
fn crawl_observations_are_identical_across_thread_counts() {
    let m =
        Marketplace::new(Population::paper(5), ScoringModel::default(), BiasProfile::neutral(), 5);
    let (universe, reference, ref_stats) = with_threads(1, || crawl(&m));
    for threads in [2usize, 8] {
        let (_, obs, stats) = with_threads(threads, || crawl(&m));
        assert_eq!(stats, ref_stats, "FBOX_THREADS={threads}");
        assert_eq!(obs.n_cells(), reference.n_cells(), "FBOX_THREADS={threads}");
        for ((q, l), ranking) in reference.cells() {
            assert_eq!(
                obs.get(q, l),
                Some(ranking),
                "FBOX_THREADS={threads}: cell ({q:?}, {l:?}) of {}",
                universe.query(q).name
            );
        }
    }
}

#[test]
fn study_observations_are_identical_across_thread_counts() {
    let design = StudyDesign { participants_per_group: 1, seed: 42 };
    let engine = SearchEngine::new(PersonalizationProfile::uniform(0.3), NoiseModel::default(), 3);
    let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
    let (_, reference, ref_stats) = with_threads(1, || run_study(&design, &engine, &runner));
    for threads in [2usize, 8] {
        let (_, obs, stats) = with_threads(threads, || run_study(&design, &engine, &runner));
        assert_eq!(stats, ref_stats, "FBOX_THREADS={threads}");
        assert_eq!(obs.n_cells(), reference.n_cells(), "FBOX_THREADS={threads}");
        for ((q, l), lists) in reference.cells() {
            // Per-cell list *order* matters too: it is recruitment order,
            // independent of scheduling.
            assert_eq!(obs.get(q, l), Some(lists), "FBOX_THREADS={threads}: cell ({q:?}, {l:?})");
        }
    }
}

/// Strategy: a complete cube with values in [0, 1].
fn complete_cube(
    max_g: usize,
    max_q: usize,
    max_l: usize,
) -> impl Strategy<Value = UnfairnessCube> {
    (1..=max_g, 1..=max_q, 1..=max_l).prop_flat_map(|(ng, nq, nl)| {
        proptest::collection::vec(0.0f64..=1.0, ng * nq * nl).prop_map(move |vals| {
            let mut c = UnfairnessCube::with_dims(ng, nq, nl);
            let mut it = vals.into_iter();
            for g in 0..ng as u32 {
                for q in 0..nq as u32 {
                    for l in 0..nl as u32 {
                        c.set(GroupId(g), QueryId(q), LocationId(l), it.next().unwrap());
                    }
                }
            }
            c
        })
    })
}

fn assert_same_values(a: &[(u32, f64)], b: &[(u32, f64)], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: lengths differ: {a:?} vs {b:?}");
    for (x, y) in a.iter().zip(b) {
        assert!((x.1 - y.1).abs() < 1e-9, "{context}: {a:?} vs {b:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TA, NRA, and the naive scan agree on random cubes under random
    /// restrictions — including restrictions with duplicated ids, which
    /// `Restriction::resolve` now dedups.
    #[test]
    fn algorithms_agree_under_random_restrictions(
        cube in complete_cube(8, 4, 4),
        raw_q in proptest::collection::vec(0u32..4, 1..9),
        raw_l in proptest::collection::vec(0u32..4, 1..9),
        k in 1usize..6,
    ) {
        let queries: Vec<u32> = raw_q.into_iter().filter(|&q| (q as usize) < cube.n_queries()).collect();
        let locations: Vec<u32> = raw_l.into_iter().filter(|&l| (l as usize) < cube.n_locations()).collect();
        prop_assume!(!queries.is_empty() && !locations.is_empty());
        let restrict = Restriction { groups: None, queries: Some(queries), locations: Some(locations) };
        let idx = IndexSet::build(&cube);
        for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
            let ta = top_k(&idx, Dimension::Group, k, order, &restrict);
            let nra = nra_top_k(&idx, Dimension::Group, k, order, &restrict);
            let nv = naive_top_k(&cube, Dimension::Group, k, order, &restrict);
            assert_same_values(&ta.entries, &nv.entries, &format!("ta vs naive, {order:?}"));
            assert_same_values(&nra.entries, &nv.entries, &format!("nra vs naive, {order:?}"));
        }
    }

    /// The index build is deterministic across thread counts on random
    /// cubes: same posting lists, hence same TA answers, at 1/2/8 threads.
    #[test]
    fn index_build_is_deterministic_across_thread_counts(cube in complete_cube(10, 4, 4), k in 1usize..5) {
        let reference = with_threads(1, || IndexSet::build(&cube));
        for threads in [2usize, 8] {
            let idx = with_threads(threads, || IndexSet::build(&cube));
            for dim in [Dimension::Group, Dimension::Query, Dimension::Location] {
                let a = top_k(&reference, dim, k, RankOrder::MostUnfair, &Restriction::none());
                let b = top_k(&idx, dim, k, RankOrder::MostUnfair, &Restriction::none());
                prop_assert_eq!(&a.entries, &b.entries);
            }
        }
    }
}
