//! Property tests over *degraded* cubes — random missing-cell patterns,
//! including entire rows knocked out along each dimension.
//!
//! Graceful degradation turns failed, quarantined, and breaker-skipped
//! crawl cells into missing cube cells. These properties pin the query
//! layer's contract on such cubes:
//!
//! - TA ([`top_k`]), NRA ([`nra_top_k`]), and the naive scan agree on any
//!   missing-cell pattern, under random restrictions;
//! - the aggregate for an entity is the average over its *present* cells
//!   (checked against a hand-rolled computation), and entities with no
//!   present cells are omitted, not scored 0;
//! - [`UnfairnessCube::coverage`] reports exactly the injected mask rate.

use fbox::core::algo::{naive_top_k, nra_top_k, top_k, RankOrder, Restriction};
use fbox::core::model::{GroupId, LocationId, QueryId};
use fbox::core::{IndexSet, UnfairnessCube};
use fbox::Dimension;
use proptest::prelude::*;

/// A cube with random values, ~1/4 of cells knocked out by a random mask,
/// and optionally one full row knocked out along each dimension (the
/// selector value `== dim size` means "knock out nothing").
struct MaskedCube {
    cube: UnfairnessCube,
    present: usize,
    total: usize,
}

#[allow(clippy::too_many_arguments)]
fn build_masked(
    ng: usize,
    nq: usize,
    nl: usize,
    vals: Vec<f64>,
    mask: Vec<u8>,
    kg: u32,
    kq: u32,
    kl: u32,
) -> MaskedCube {
    let mut cube = UnfairnessCube::with_dims(ng, nq, nl);
    let mut present = 0usize;
    let mut i = 0usize;
    for g in 0..ng as u32 {
        for q in 0..nq as u32 {
            for l in 0..nl as u32 {
                let knocked = mask[i] == 0 || g == kg || q == kq || l == kl;
                if !knocked {
                    cube.set(GroupId(g), QueryId(q), LocationId(l), vals[i]);
                    present += 1;
                }
                i += 1;
            }
        }
    }
    MaskedCube { cube, present, total: ng * nq * nl }
}

fn masked_cube(max_g: usize, max_q: usize, max_l: usize) -> impl Strategy<Value = MaskedCube> {
    (2..=max_g, 2..=max_q, 2..=max_l).prop_flat_map(|(ng, nq, nl)| {
        let n = ng * nq * nl;
        (
            proptest::collection::vec(0.0f64..=1.0, n),
            proptest::collection::vec(0u8..4, n),
            0..=ng as u32, // == ng: no group row knocked out
            0..=nq as u32,
            0..=nl as u32,
        )
            .prop_map(move |(vals, mask, kg, kq, kl)| {
                build_masked(ng, nq, nl, vals, mask, kg, kq, kl)
            })
    })
}

/// Hand-rolled reference: for each entity along `dim`, the average of its
/// present cells over the full (unrestricted) slice; entities with no
/// present cells yield `None`.
fn hand_averages(cube: &UnfairnessCube, dim: Dimension) -> Vec<Option<f64>> {
    let (ng, nq, nl) = (cube.n_groups(), cube.n_queries(), cube.n_locations());
    let n_entities = match dim {
        Dimension::Group => ng,
        Dimension::Query => nq,
        Dimension::Location => nl,
    };
    let mut sums = vec![(0.0f64, 0usize); n_entities];
    for g in 0..ng as u32 {
        for q in 0..nq as u32 {
            for l in 0..nl as u32 {
                if let Some(v) = cube.get(GroupId(g), QueryId(q), LocationId(l)) {
                    let e = match dim {
                        Dimension::Group => g,
                        Dimension::Query => q,
                        Dimension::Location => l,
                    } as usize;
                    sums[e].0 += v;
                    sums[e].1 += 1;
                }
            }
        }
    }
    sums.into_iter().map(|(s, n)| if n == 0 { None } else { Some(s / n as f64) }).collect()
}

fn assert_same_values(a: &[(u32, f64)], b: &[(u32, f64)], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: lengths differ: {a:?} vs {b:?}");
    for (x, y) in a.iter().zip(b) {
        assert!((x.1 - y.1).abs() < 1e-9, "{context}: {a:?} vs {b:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TA, NRA, and the naive scan agree on degraded cubes under random
    /// restrictions, for every dimension and both rank orders.
    #[test]
    fn algorithms_agree_on_degraded_cubes(
        masked in masked_cube(6, 4, 4),
        raw_q in proptest::collection::vec(0u32..4, 1..9),
        raw_l in proptest::collection::vec(0u32..4, 1..9),
        k in 1usize..6,
    ) {
        prop_assume!(masked.present > 0);
        let cube = &masked.cube;
        let queries: Vec<u32> =
            raw_q.into_iter().filter(|&q| (q as usize) < cube.n_queries()).collect();
        let locations: Vec<u32> =
            raw_l.into_iter().filter(|&l| (l as usize) < cube.n_locations()).collect();
        prop_assume!(!queries.is_empty() && !locations.is_empty());
        let restrict =
            Restriction { groups: None, queries: Some(queries), locations: Some(locations) };
        let idx = IndexSet::build(cube);
        for dim in [Dimension::Group, Dimension::Query, Dimension::Location] {
            for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
                let ta = top_k(&idx, dim, k, order, &restrict);
                let nra = nra_top_k(&idx, dim, k, order, &restrict);
                let nv = naive_top_k(cube, dim, k, order, &restrict);
                assert_same_values(&ta.entries, &nv.entries, &format!("ta vs naive, {dim:?} {order:?}"));
                assert_same_values(&nra.entries, &nv.entries, &format!("nra vs naive, {dim:?} {order:?}"));
            }
        }
    }

    /// The unrestricted ranking scores each entity by the average of its
    /// *present* cells, and omits entities with none — checked against a
    /// from-scratch computation, full ranking (k = number of entities).
    #[test]
    fn aggregates_average_present_cells_only(masked in masked_cube(6, 4, 4)) {
        prop_assume!(masked.present > 0);
        let cube = &masked.cube;
        let idx = IndexSet::build(cube);
        for dim in [Dimension::Group, Dimension::Query, Dimension::Location] {
            let expected = hand_averages(cube, dim);
            let n_scored = expected.iter().filter(|e| e.is_some()).count();
            let k = expected.len();
            for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
                for (name, result) in [
                    ("naive", naive_top_k(cube, dim, k, order, &Restriction::none())),
                    ("ta", top_k(&idx, dim, k, order, &Restriction::none())),
                    ("nra", nra_top_k(&idx, dim, k, order, &Restriction::none())),
                ] {
                    prop_assert_eq!(
                        result.entries.len(),
                        n_scored,
                        "{} {:?} {:?}: entities with no present cells must be omitted",
                        name, dim, order
                    );
                    for &(e, v) in &result.entries {
                        let want = expected[e as usize].unwrap_or_else(|| {
                            panic!("{name} {dim:?} {order:?}: ranked cell-less entity {e}")
                        });
                        prop_assert!(
                            (v - want).abs() < 1e-9,
                            "{} {:?} {:?}: entity {} scored {} want {}",
                            name, dim, order, e, v, want
                        );
                    }
                    // Ranked order must follow the sign of the order.
                    for w in result.entries.windows(2) {
                        match order {
                            RankOrder::MostUnfair => prop_assert!(w[0].1 >= w[1].1 - 1e-9),
                            RankOrder::LeastUnfair => prop_assert!(w[0].1 <= w[1].1 + 1e-9),
                        }
                    }
                }
            }
        }
    }

    /// `coverage` is exactly present / total for the injected mask.
    #[test]
    fn coverage_matches_injected_mask_rate(masked in masked_cube(6, 4, 4)) {
        let expected = masked.present as f64 / masked.total as f64;
        prop_assert!(
            (masked.cube.coverage() - expected).abs() < 1e-12,
            "coverage {} vs mask rate {} ({} of {} present)",
            masked.cube.coverage(), expected, masked.present, masked.total
        );
        prop_assert_eq!(masked.cube.is_complete(), masked.present == masked.total);
    }
}
