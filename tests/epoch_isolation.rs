//! Epoch-isolation contracts of the incremental cube store (`fbox-store`).
//!
//! Readers pin an [`EpochSnapshot`] and must see a frozen, byte-stable
//! cube — top-k and compare answers included — no matter how much
//! ingestion and publishing happens concurrently. And the incremental
//! path itself must be invisible in the output: a cube grown cell by cell
//! through delta updates is bit-equal to one batch-built from the same
//! observations.

use fbox::core::algo::{Entity, RankOrder, Restriction};
use fbox::core::model::{GroupId, LocationId, QueryId};
use fbox::core::{Dimension, UnfairnessCube};
use fbox::marketplace::{crawl, BiasProfile, Marketplace, Population, ScoringModel};
use fbox::store::EpochStore;
use fbox::{FBox, MarketMeasure};
use std::sync::Arc;

fn marketplace() -> Marketplace {
    Marketplace::new(Population::paper(5), ScoringModel::default(), BiasProfile::neutral(), 5)
}

fn assert_cubes_bit_identical(a: &UnfairnessCube, b: &UnfairnessCube, context: &str) {
    let bits =
        |c: &UnfairnessCube| c.raw_data().iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>();
    assert_eq!(bits(a), bits(b), "{context}: cube cells diverged");
}

/// Renders every read-side answer the store serves — top-k on all three
/// dimensions in both orders, plus a breakdown comparison — into one
/// string, so "byte-identical" is checked across the whole read surface.
fn read_surface(fbox: &FBox) -> String {
    let mut out = String::new();
    let restrict = Restriction::none();
    for dim in [Dimension::Group, Dimension::Query, Dimension::Location] {
        for order in [RankOrder::MostUnfair, RankOrder::LeastUnfair] {
            let result = fbox.top_k(dim, 5, order, &restrict);
            out.push_str(&format!("{dim:?} {order:?}:"));
            for (id, v) in &result.entries {
                out.push_str(&format!(" {id}={:016x}", v.to_bits()));
            }
            out.push('\n');
        }
    }
    let cmp = fbox.compare(
        Entity::Group(GroupId(0)),
        Entity::Group(GroupId(1)),
        Dimension::Location,
        None,
        &restrict,
    );
    out.push_str(&format!("{cmp:?}\n"));
    out
}

#[test]
fn pinned_epoch_reads_are_byte_stable_under_concurrent_ingestion() {
    let m = marketplace();
    let (universe, observations, _) = crawl(&m);
    let cells: Vec<_> =
        observations.cells().map(|((q, l), ranking)| (q, l, ranking.clone())).collect();
    let split = cells.len() / 3;

    let store = Arc::new(EpochStore::new(universe));
    for (q, l, ranking) in &cells[..split] {
        store.ingest_market(*q, *l, Some(ranking), MarketMeasure::exposure());
    }
    let pinned = store.publish();
    assert_eq!(pinned.epoch(), 1);

    let before = read_surface(pinned.fbox());
    let cube_before: Vec<_> =
        pinned.fbox().cube().raw_data().iter().map(|v| v.map(f64::to_bits)).collect();

    // Later epochs ingest and publish concurrently while the pin is held.
    let writer = {
        let store = Arc::clone(&store);
        let rest: Vec<_> = cells[split..].to_vec();
        std::thread::spawn(move || {
            for (i, (q, l, ranking)) in rest.iter().enumerate() {
                store.ingest_market(*q, *l, Some(ranking), MarketMeasure::exposure());
                if i % 500 == 0 {
                    let _ = store.publish();
                }
            }
            store.publish()
        })
    };
    // Interleave reads with the writer's publishes.
    for _ in 0..10 {
        assert_eq!(read_surface(pinned.fbox()), before, "pinned read surface drifted mid-write");
    }
    let last = writer.join().expect("writer thread");

    assert!(last.epoch() > pinned.epoch(), "publishing must advance the epoch");
    assert_eq!(store.latest().epoch(), last.epoch());
    let cube_after: Vec<_> =
        pinned.fbox().cube().raw_data().iter().map(|v| v.map(f64::to_bits)).collect();
    assert_eq!(cube_before, cube_after, "pinned cube bytes drifted");
    assert_eq!(read_surface(pinned.fbox()), before, "pinned read surface drifted after writes");
}

#[test]
fn incremental_ingestion_matches_batch_build_bit_for_bit() {
    let m = marketplace();
    let (universe, observations, _) = crawl(&m);
    let batch = FBox::from_market(universe.clone(), &observations, MarketMeasure::exposure());

    // Stream the same observations through the store in an order that is
    // *not* grid order (reversed), to prove order-independence of the
    // delta updates.
    let store = EpochStore::new(universe);
    let cells: Vec<_> = observations.cells().collect();
    for ((q, l), ranking) in cells.into_iter().rev() {
        store.ingest_market(q, l, Some(ranking), MarketMeasure::exposure());
    }
    let published = store.publish();

    assert_cubes_bit_identical(batch.cube(), published.fbox().cube(), "incremental vs batch");
    // The delta-maintained indices answer identically to freshly built
    // ones; spot-check the full read surface.
    assert_eq!(read_surface(&batch), read_surface(published.fbox()));
    // Sanity: the cube really has data.
    assert!(
        published.fbox().cube().get(GroupId(0), QueryId(0), LocationId(0)).is_some()
            || published.fbox().cube().coverage() > 0.0
    );
}
