//! End-to-end reproduction tests: build both calibrated scenarios and
//! assert every shape check the experiment harness makes. This is the
//! repository's core claim — the paper's findings emerge from the
//! simulators through the framework — enforced in CI.

use fbox::repro::{experiments, scenario};

fn assert_all(checks: &[(String, bool)]) {
    let failed: Vec<&str> =
        checks.iter().filter(|(_, ok)| !ok).map(|(name, _)| name.as_str()).collect();
    assert!(failed.is_empty(), "shape checks failed: {failed:#?}");
}

#[test]
fn figures_and_setup_reproduce() {
    let s = scenario::taskrabbit();
    let r = experiments::figures::run(&s);
    assert_all(&r.checks);
}

#[test]
fn taskrabbit_quantification_reproduces() {
    let s = scenario::taskrabbit();
    let r = experiments::taskrabbit_quant::run(&s);
    assert_all(&r.checks);
}

#[test]
fn taskrabbit_comparison_reproduces() {
    let s = scenario::taskrabbit();
    let r = experiments::taskrabbit_compare::run(&s);
    assert_all(&r.checks);
}

#[test]
fn google_quantification_reproduces() {
    let s = scenario::google();
    let r = experiments::google_quant::run(&s);
    assert_all(&r.checks);
}

#[test]
fn google_comparison_reproduces() {
    let s = scenario::google();
    let r = experiments::google_compare::run(&s);
    assert_all(&r.checks);
}

#[test]
fn cross_platform_hypotheses_transfer() {
    let tr = scenario::taskrabbit();
    let gg = scenario::google();
    let r = experiments::hypotheses::run(&tr, &gg);
    assert_all(&r.checks);
}

#[test]
fn scenarios_are_reproducible() {
    // Same seed → identical cubes (spot-checked on a handful of cells).
    let a = scenario::taskrabbit();
    let b = scenario::taskrabbit();
    let u = a.emd.universe();
    let q = u.query_id("Lawn Mowing").unwrap();
    for city in ["Chicago, IL", "Birmingham, UK", "Boston, MA"] {
        let l = u.location_id(city).unwrap();
        for g in u.group_ids() {
            assert_eq!(a.emd.unfairness(g, q, l), b.emd.unfairness(g, q, l));
        }
    }
}

#[test]
fn neutral_marketplace_is_nearly_fair() {
    // The null model: no injected bias → unfairness sits at the sampling
    // floor, well below the calibrated scenario's signal. EMD carries a
    // high small-sample floor (sparse histograms of 2–3-member groups per
    // page), so the cleaner null check uses the exposure measure, whose
    // floor is low.
    use fbox::core::algo::{RankOrder, Restriction};
    use fbox::marketplace::{crawl, BiasProfile, Marketplace, Population, ScoringModel};
    use fbox::{FBox, MarketMeasure};

    let m =
        Marketplace::new(Population::paper(3), ScoringModel::default(), BiasProfile::neutral(), 3);
    let (universe, obs, _) = crawl(&m);
    let fb = FBox::from_market(universe, &obs, MarketMeasure::exposure());
    let calibrated = scenario::taskrabbit();
    let mean = |fb: &FBox| {
        let all = fb.top_k_groups(11, RankOrder::MostUnfair, &Restriction::none());
        all.iter().map(|(_, v)| v).sum::<f64>() / all.len() as f64
    };
    let neutral_worst = fb.top_k_groups(1, RankOrder::MostUnfair, &Restriction::none());
    let calibrated_worst =
        calibrated.exposure.top_k_groups(1, RankOrder::MostUnfair, &Restriction::none());
    assert!(
        neutral_worst[0].1 < calibrated_worst[0].1,
        "neutral worst {} should sit below calibrated worst {}",
        neutral_worst[0].1,
        calibrated_worst[0].1
    );
    assert!(
        mean(&fb) < mean(&calibrated.exposure),
        "neutral mean should sit below calibrated mean"
    );
    // And under EMD the calibrated top group still clears the neutral
    // worst group, floor notwithstanding.
    let fb_emd = FBox::from_market(fb.universe().clone(), &obs, MarketMeasure::emd());
    let worst_emd = fb_emd.top_k_groups(1, RankOrder::MostUnfair, &Restriction::none());
    let calibrated_emd =
        calibrated.emd.top_k_groups(1, RankOrder::MostUnfair, &Restriction::none());
    assert!(worst_emd[0].1 < calibrated_emd[0].1);
}
