//! Determinism contracts of `fbox-trace`.
//!
//! In logical-clock mode a trace is part of the pipeline's deterministic
//! output: the canonical Chrome JSON must be *byte-identical* at any
//! `FBOX_THREADS`, because span identity and ordering derive from causal
//! position (parent id + fan-out slot), never from scheduling or time.
//!
//! The tracer is a process-wide singleton, so every test here serializes
//! on [`SESSION_LOCK`] and this file must contain only such tests.

use std::sync::Mutex;

use fbox::core::algo::{RankOrder, Restriction};
use fbox::marketplace::{
    crawl_resilient, BiasProfile, CrawlJournal, Marketplace, Population, ScoringModel,
};
use fbox::par::with_threads;
use fbox::resilience::{FaultPlan, FaultProfile, Resilience};
use fbox::search::extension::ExtensionRunner;
use fbox::search::noise::NoiseModel;
use fbox::search::personalize::PersonalizationProfile;
use fbox::search::study::{run_study, StudyDesign};
use fbox::search::SearchEngine;
use fbox::trace;
use fbox::{Dimension, FBox, SearchMeasure};

/// One tracer per process: tests take this lock around start()/finish().
static SESSION_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    SESSION_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` under a fresh logical-clock trace session and returns the
/// canonical Chrome JSON.
fn logical_trace_of(f: impl FnOnce()) -> String {
    trace::start(trace::Clock::Logical);
    f();
    trace::finish().to_chrome_json()
}

#[test]
fn cube_build_logical_trace_is_identical_across_thread_counts() {
    let _lock = locked();
    let design = StudyDesign { participants_per_group: 2, seed: 0xF0CA };
    let engine = SearchEngine::new(PersonalizationProfile::uniform(0.2), NoiseModel::none(), 3);
    let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
    let (universe, obs, _) = run_study(&design, &engine, &runner);

    let reference = logical_trace_of(|| {
        with_threads(1, || {
            let _ = FBox::from_search(universe.clone(), &obs, SearchMeasure::kendall());
        })
    });
    assert!(reference.contains("\"cube.cell\""), "cell spans recorded");
    assert!(reference.contains("\"index.build\""), "index span recorded");
    for threads in [2usize, 8] {
        let json = logical_trace_of(|| {
            with_threads(threads, || {
                let _ = FBox::from_search(universe.clone(), &obs, SearchMeasure::kendall());
            })
        });
        assert_eq!(reference, json, "FBOX_THREADS={threads}: logical trace must be bit-identical");
    }
}

#[test]
fn faulted_crawl_logical_trace_is_identical_and_round_trips() {
    let _lock = locked();
    let m =
        Marketplace::new(Population::paper(5), ScoringModel::default(), BiasProfile::neutral(), 5);
    let resilience = Resilience::with_plan(FaultPlan::new(7, FaultProfile::mild()));

    let run_crawl = || {
        let mut journal = CrawlJournal::new();
        let _ = crawl_resilient(&m, &resilience, &mut journal);
    };

    let reference = logical_trace_of(|| with_threads(1, run_crawl));
    for threads in [2usize, 8] {
        let json = logical_trace_of(|| with_threads(threads, run_crawl));
        assert_eq!(reference, json, "FBOX_THREADS={threads}: logical trace must be bit-identical");
    }

    // Round-trip through the serde shim: the export is well-formed JSON
    // whose resilience instants nest under the owning cell spans.
    let doc = serde::json::parse(&reference).expect("chrome export parses");
    let serde::Value::Array(events) = doc else { panic!("chrome export is a JSON array") };
    let text = |v: &serde::Value, key: &str| match v.get(key) {
        Some(serde::Value::String(s)) => s.clone(),
        other => panic!("event field {key} missing or not a string: {other:?}"),
    };
    let mut cell_spans = std::collections::BTreeSet::new();
    let mut fault_parents = Vec::new();
    let mut phases = std::collections::BTreeMap::<(String, String), usize>::new();
    for ev in &events {
        let name = text(ev, "name");
        let ph = text(ev, "ph");
        *phases.entry((ph.clone(), name.clone())).or_default() += 1;
        let Some(args) = ev.get("args") else { continue };
        if name == "crawl.cell" && ph == "B" {
            cell_spans.insert(text(args, "span"));
        }
        if name == "resilience.fault" || name == "resilience.retry" {
            assert_eq!(ph, "i", "resilience events are instants");
            fault_parents.push(text(args, "parent"));
        }
    }
    assert!(!fault_parents.is_empty(), "seed 7 mild injects faults");
    for parent in &fault_parents {
        assert!(
            cell_spans.contains(parent),
            "resilience instant must nest under a crawl.cell span, got parent {parent}"
        );
    }
    // Every Begin has a matching End in a canonical logical trace.
    for ((ph, name), n) in &phases {
        if ph == "B" {
            assert_eq!(
                phases.get(&("E".to_string(), name.clone())),
                Some(n),
                "unbalanced span {name}"
            );
        }
    }
}

#[test]
fn top_k_trace_records_threshold_and_early_termination() {
    let _lock = locked();
    let design = StudyDesign { participants_per_group: 2, seed: 0xF0CA };
    let engine = SearchEngine::new(PersonalizationProfile::uniform(0.2), NoiseModel::none(), 3);
    let runner = ExtensionRunner { repeats: 1, max_extra_runs: 0, ..Default::default() };
    let (universe, obs, _) = run_study(&design, &engine, &runner);
    let fb = FBox::from_search(universe, &obs, SearchMeasure::kendall());

    let reference = logical_trace_of(|| {
        let _ = fb.top_k(Dimension::Group, 2, RankOrder::MostUnfair, &Restriction::none());
    });
    assert!(reference.contains("\"algo.ta\""), "TA span recorded");
    assert!(reference.contains("\"ta.threshold\""), "threshold instants recorded");
    for threads in [2usize, 8] {
        let json = logical_trace_of(|| {
            with_threads(threads, || {
                let _ = fb.top_k(Dimension::Group, 2, RankOrder::MostUnfair, &Restriction::none());
            })
        });
        assert_eq!(reference, json, "FBOX_THREADS={threads}: top-k trace must be bit-identical");
    }
}
