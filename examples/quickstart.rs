//! Quickstart: the paper's §3 toy example end to end.
//!
//! Builds the ten-worker "Home Cleaning in San Francisco" ranking of
//! Tables 2–3, computes the unfairness of Black Females under both
//! marketplace measures (reproducing Figure 5's 0.04), and then asks the
//! framework's two generic questions on the one-cell study.
//!
//! Run with: `cargo run --example quickstart`

use fbox::core::algo::{RankOrder, Restriction};
use fbox::core::observations::MarketObservations;
use fbox::core::paper_toy;
use fbox::core::unfairness::{market_cell_unfairness, MarketMeasure};
use fbox::FBox;

fn main() {
    // Table 3's ranking over the gender × ethnicity universe.
    let (mut universe, ranking) = paper_toy::table3_ranking();

    println!(
        "Toy marketplace: {} workers ranked for \"Home Cleaning\" in San Francisco\n",
        ranking.len()
    );

    // Per-group unfairness under both measures (Eq. 2 and §3.3.2).
    println!("{:<28} {:>8} {:>10}", "group", "EMD", "exposure");
    for g in universe.group_ids() {
        let emd = market_cell_unfairness(&universe, &ranking, g, MarketMeasure::emd());
        let exposure = market_cell_unfairness(&universe, &ranking, g, MarketMeasure::exposure());
        println!(
            "{:<28} {:>8} {:>10}",
            universe.group_name(g),
            emd.map_or("-".into(), |v| format!("{v:.3}")),
            exposure.map_or("-".into(), |v| format!("{v:.3}")),
        );
    }

    // Figure 5's headline number.
    let bf =
        universe.group_id_by_text("gender=Female & ethnicity=Black").expect("group registered");
    let fig5 = market_cell_unfairness(&universe, &ranking, bf, MarketMeasure::exposure())
        .expect("toy data complete");
    println!("\nFigure 5 check: exposure unfairness of Black Females = {fig5:.3} (paper: ≈0.04)");

    // Wrap the single ranking as a full study and ask the two generic
    // questions.
    let q = universe.add_query("Home Cleaning", Some("General Cleaning"));
    let l = universe.add_location("San Francisco, CA", Some("West Coast"));
    let mut observations = MarketObservations::new();
    observations.insert(q, l, ranking);
    let fbox = FBox::from_market(universe, &observations, MarketMeasure::exposure());

    println!("\nProblem 1 — the 3 most unfair groups here:");
    for (name, v) in fbox.top_k_groups(3, RankOrder::MostUnfair, &Restriction::none()) {
        println!("  {name:<24} {v:.3}");
    }
    println!("Problem 1 — the 3 least unfair groups here:");
    for (name, v) in fbox.top_k_groups(3, RankOrder::LeastUnfair, &Restriction::none()) {
        println!("  {name:<24} {v:.3}");
    }
}
