//! Observability walkthrough: run a small TaskRabbit-style study with
//! telemetry enabled, print the metrics table, and diff two snapshots to
//! see exactly what one extra query cost.
//!
//! The same counters power the `--metrics` mode of every `repro-*` binary
//! (or set `FBOX_TELEMETRY=1`), and the `BENCH_*.json` trajectory files of
//! the bench harness.
//!
//! Run with: `cargo run --example telemetry_report`

use fbox::core::algo::{RankOrder, Restriction};
use fbox::marketplace::{
    crawl, BiasProfile, Marketplace, Population, PopulationMarginals, ScoringModel,
};
use fbox::{Dimension, FBox, MarketMeasure};
use fbox_telemetry::{Report, Snapshot, Subscriber, TableSink};

fn main() {
    // 1. Turn the global registry on. Every instrumented layer — crawl,
    //    cube build, index build, top-k — starts recording; when this is
    //    off (the default) the same code paths cost one atomic load.
    fbox_telemetry::set_enabled(true);

    // 2. A small marketplace: 600 workers over the full 56-city grid.
    let population = Population::generate(600, 56, PopulationMarginals::default(), 42);
    let bias = BiasProfile::neutral().with_penalty(
        fbox::marketplace::Gender::Female,
        fbox::marketplace::Ethnicity::Black,
        0.25,
    );
    let marketplace = Marketplace::new(population, ScoringModel::default(), bias, 42);
    let (universe, observations, stats) = crawl(&marketplace);
    println!("crawled {} rankings over {} workers\n", stats.n_queries, stats.n_workers);

    let fbox = FBox::from_market(universe, &observations, MarketMeasure::exposure());
    let top = fbox.top_k_groups(3, RankOrder::MostUnfair, &Restriction::none());
    println!("most unfair groups: {top:?}\n");

    // 3. Snapshots are cheap, serializable value types. Diffing two of
    //    them isolates the cost of whatever ran in between.
    let before = fbox_telemetry::global().snapshot();
    fbox.top_k(Dimension::Query, 5, RankOrder::MostUnfair, &Restriction::none());
    let after = fbox_telemetry::global().snapshot();

    println!("--- cost of one top-5 query run (snapshot diff) ---");
    print!("{}", Report::diff(&before, &after));

    // 4. The full registry, as the `--metrics` flag renders it.
    println!("\n--- full metrics table ---");
    TableSink::stdout().export(&after).expect("stdout export");

    // 5. Snapshots round-trip through JSON (the bench harness stores them
    //    as BENCH_<label>.json files and diffs runs across commits).
    let json = after.to_json();
    let back = Snapshot::from_json(&json).expect("parses");
    assert!(Report::diff(&after, &back).is_zero());
    println!("\nJSON round-trip: {} bytes, self-diff is zero", json.len());
}
