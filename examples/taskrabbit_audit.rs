//! Auditing a simulated marketplace: inject a bias profile, crawl every
//! (job, city) page, and let the F-Box quantify and compare — the paper's
//! Figure 6 pipeline on a custom scenario.
//!
//! The scenario here penalizes Black Females platform-wide, amplifies the
//! bias in two cities, and *exempts* one job category (Delivery), then
//! shows all three effects emerging in the framework's answers.
//!
//! Run with: `cargo run --release --example taskrabbit_audit`

use fbox::core::algo::{compare, Entity, RankOrder, Restriction};
use fbox::core::Dimension;
use fbox::marketplace::{
    crawl, BiasOverride, BiasProfile, Ethnicity, Gender, Marketplace, OverrideAction, Population,
    ScoringModel,
};
use fbox::{FBox, MarketMeasure};

fn main() {
    // 1. A bias profile: Black Females penalized everywhere, doubly so in
    //    two cities, but *favored* for Delivery work.
    let bias = BiasProfile::neutral()
        .with_penalty(Gender::Female, Ethnicity::Black, 0.12)
        .with_penalty(Gender::Female, Ethnicity::White, 0.06)
        .with_location_amp("Oklahoma City, OK", 2.2)
        .with_location_amp("Birmingham, UK", 2.2)
        .with_override(BiasOverride {
            location: None,
            query: None,
            category: Some("Delivery".to_string()),
            gender: Some(Gender::Female),
            ethnicity: Some(Ethnicity::Black),
            action: OverrideAction::Scale(0.0), // Delivery hires blind
        });

    // 2. Assemble the marketplace and crawl the full 5,361-query grid.
    let marketplace = Marketplace::new(Population::paper(7), ScoringModel::default(), bias, 7);
    let (universe, observations, stats) = crawl(&marketplace);
    println!(
        "crawled {} result pages over {} workers ({:.0}% male, {:.0}% white)\n",
        stats.n_queries,
        stats.n_workers,
        100.0 * stats.male_share,
        100.0 * stats.ethnicity_shares[2]
    );

    // 3. Quantify.
    let fbox = FBox::from_market(universe, &observations, MarketMeasure::emd());
    println!("Most unfair groups (EMD):");
    for (name, v) in fbox.top_k_groups(3, RankOrder::MostUnfair, &Restriction::none()) {
        println!("  {name:<24} {v:.3}");
    }
    // City-level aggregates average over all 11 groups, so a bias against
    // one small group is easiest to see by restricting the question to it:
    // "at which locations are Black Females treated most unfairly?"
    let u = fbox.universe();
    let bf = u.group_id_by_text("gender=Female & ethnicity=Black").expect("group registered");
    let bf_only = Restriction { groups: Some(vec![bf.0]), ..Default::default() };
    println!("Cities where Black Females fare worst:");
    for (name, v) in fbox.top_k_locations(3, RankOrder::MostUnfair, &bf_only) {
        println!("  {name:<28} {v:.3}");
    }

    // 4. Compare: is the Delivery exemption visible? Break the Black
    //    Female group's treatment down by query.
    let wf = u.group_id_by_text("gender=Female & ethnicity=White").expect("group registered");
    let delivery: Vec<u32> = u.queries_in_category("Delivery").iter().map(|q| q.0).collect();
    let errands: Vec<u32> = u.queries_in_category("Run Errands").iter().map(|q| q.0).collect();
    let breakdown: Vec<u32> = delivery.iter().chain(&errands).copied().collect();

    let out = compare(
        fbox.indices(),
        Entity::Group(bf),
        Entity::Group(wf),
        Dimension::Query,
        Some(&breakdown),
        &Restriction::none(),
    )
    .expect("data present");
    println!(
        "\nBlack Females vs White Females — overall d = {:.3} vs {:.3}",
        out.overall1, out.overall2
    );
    println!("Queries where the comparison reverses (the Delivery exemption):");
    for r in out.reversed_rows() {
        println!(
            "  {:<28} BF={:.3} WF={:.3}",
            u.query(fbox::core::model::QueryId(r.entity)).name,
            r.d1,
            r.d2
        );
    }
}
