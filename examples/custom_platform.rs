//! Bring your own platform: the F-Box consumes plain observations, so any
//! site that ranks people can be audited — here a tiny Qapa-style
//! marketplace described as literal data, with an extra protected
//! attribute (neighborhood) beyond the paper's gender/ethnicity pair.
//!
//! Run with: `cargo run --example custom_platform`

use fbox::core::algo::{RankOrder, Restriction};
use fbox::core::model::{Attribute, GroupLabel, ValueId};
use fbox::core::observations::{MarketObservations, MarketRanking, RankedWorker};
use fbox::{FBox, MarketMeasure, Schema, Universe};

fn main() {
    // 1. Declare the protected attributes — any finite domains work.
    let schema = Schema::new(vec![
        Attribute::new("gender", ["Male", "Female"]),
        Attribute::new("neighborhood", ["North", "South", "East"]),
    ]);

    // 2. Register every group expressible over the schema (2 + 3 + 6 = 11).
    let mut universe = Universe::with_all_groups(schema);
    let q = universe.add_query("logo design", Some("Design"));
    let paris = universe.add_location("Paris", None);
    let lyon = universe.add_location("Lyon", None);

    // 3. Feed observed rankings. Assignments are [gender, neighborhood].
    let page = |rows: &[(u16, u16)]| {
        MarketRanking::new(
            rows.iter()
                .enumerate()
                .map(|(i, &(g, n))| RankedWorker {
                    assignment: vec![ValueId(g), ValueId(n)],
                    rank: i + 1,
                    score: None,
                })
                .collect(),
        )
    };
    let mut observations = MarketObservations::new();
    // Paris: southern workers stuck at the bottom of the page.
    observations.insert(
        q,
        paris,
        page(&[(0, 0), (1, 0), (0, 2), (1, 2), (0, 0), (1, 2), (0, 1), (1, 1), (0, 1), (1, 1)]),
    );
    // Lyon: neighborhoods interleaved — roughly fair.
    observations.insert(
        q,
        lyon,
        page(&[(0, 1), (1, 0), (0, 2), (1, 1), (0, 0), (1, 2), (0, 1), (1, 0), (0, 2), (1, 1)]),
    );

    let fbox = FBox::from_market(universe, &observations, MarketMeasure::emd());

    // 4. Ask the framework's questions.
    println!("Most unfair groups across both cities (EMD):");
    for (name, v) in fbox.top_k_groups(4, RankOrder::MostUnfair, &Restriction::none()) {
        println!("  {name:<24} {v:.3}");
    }

    let south = fbox
        .universe()
        .group_id(
            &GroupLabel::parse(fbox.universe().schema(), "neighborhood=South")
                .expect("label parses"),
        )
        .expect("group registered");
    println!("\nUnfairness toward the South neighborhood per city:");
    for l in [paris, lyon] {
        let d = fbox.unfairness(south, q, l);
        println!(
            "  {:<8} {}",
            fbox.universe().location(l).name,
            d.map_or("-".into(), |v| format!("{v:.3}"))
        );
    }
    println!("\n(The comparable groups of \"South\" are \"North\" and \"East\" — one attribute flip away.)");
}
