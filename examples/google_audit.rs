//! Auditing a personalized search engine: run the Prolific-style study
//! protocol against a simulated engine and measure which groups see the
//! most divergent results — including a demonstration of why the paper's
//! noise-control protocol (12-minute spacing, repeated runs, fixed proxy)
//! matters.
//!
//! Run with: `cargo run --release --example google_audit`

use fbox::core::algo::{RankOrder, Restriction};
use fbox::marketplace::{Ethnicity, Gender};
use fbox::search::{
    run_study, ExtensionRunner, NoiseModel, PersonalizationProfile, SearchEngine, StudyDesign,
};
use fbox::{FBox, SearchMeasure};

fn main() {
    // Personalization that singles out White Females' profiles, strongest
    // in London.
    let personalization = PersonalizationProfile::uniform(0.2)
        .with_distinctiveness(Gender::Female, Ethnicity::White, 2.0)
        .with_distinctiveness(Gender::Male, Ethnicity::Black, 0.1)
        .with_location_amp("London, UK", 1.6)
        .with_location_amp("Washington, DC", 0.1);

    let design = StudyDesign { participants_per_group: 3, seed: 99 };

    for (label, runner) in [
        ("paper protocol (spaced, repeated, proxied)", ExtensionRunner::default()),
        ("naive protocol (back-to-back, unproxied)", ExtensionRunner::naive()),
    ] {
        let engine = SearchEngine::new(personalization.clone(), NoiseModel::default(), 99);
        let (universe, observations, stats) = run_study(&design, &engine, &runner);
        let fbox = FBox::from_search(universe, &observations, SearchMeasure::kendall());

        println!("== {label}");
        println!("   ({} participants, {} queries each)", stats.n_participants, stats.n_queries);
        println!("   most unfair groups (Kendall Tau):");
        for (name, v) in fbox.top_k_groups(3, RankOrder::MostUnfair, &Restriction::none()) {
            println!("     {name:<24} {v:.3}");
        }
        let fairest = fbox.top_k_locations(1, RankOrder::LeastUnfair, &Restriction::none());
        let unfairest = fbox.top_k_locations(1, RankOrder::MostUnfair, &Restriction::none());
        println!(
            "   unfairest location: {} ({:.3}); fairest: {} ({:.3})",
            unfairest[0].0, unfairest[0].1, fairest[0].0, fairest[0].1
        );
        // The naive protocol lets carry-over / A/B / geolocation noise
        // leak into every list, inflating all unfairness values — the
        // floor rises and the signal blurs.
        let dc = fairest.first().map(|(n, _)| n == "Washington, DC").unwrap_or(false);
        println!("   DC (no personalization) measured fairest: {dc}\n");
    }
}
